//! Finite-difference gradient checking.
//!
//! Every op's analytic backward rule is validated against central finite
//! differences; the property tests in `tests/grad_properties.rs` run the
//! checker over randomly composed graphs.

use crate::store::VarStore;
use crate::tape::{Tape, Var};
use targad_linalg::Matrix;

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numeric gradients across all parameters.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference.
    pub max_abs_err: f64,
    /// Largest relative difference `|a − n| / max(1, |a|, |n|)`.
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// True when the relative error is within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compares analytic gradients against central finite differences.
///
/// `build` must construct the full forward graph on the given tape, using
/// parameters from the store, and return the scalar loss node. It is invoked
/// `1 + 2·P` times for `P` scalar parameters, so keep test graphs small.
pub fn gradient_check(
    store: &mut VarStore,
    mut build: impl FnMut(&mut Tape, &VarStore) -> Var,
    eps: f64,
) -> GradCheckReport {
    // Analytic pass. A single pooled tape serves every evaluation below —
    // the checker is also an incidental stress test of buffer recycling.
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = build(&mut tape, store);
    tape.backward(loss, store);
    let analytic: Vec<Matrix> = store.ids().map(|id| store.grad(id).clone()).collect();

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };

    let ids: Vec<_> = store.ids().collect();
    for (pi, &id) in ids.iter().enumerate() {
        let (rows, cols) = store.value(id).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(id)[(r, c)];

                store.value_mut(id)[(r, c)] = orig + eps;
                tape.reset();
                let lp = build(&mut tape, store);
                let fp = tape.value(lp)[(0, 0)];

                store.value_mut(id)[(r, c)] = orig - eps;
                tape.reset();
                let lm = build(&mut tape, store);
                let fm = tape.value(lm)[(0, 0)];

                store.value_mut(id)[(r, c)] = orig;

                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic[pi][(r, c)];
                let abs = (a - numeric).abs();
                let rel = abs / a.abs().max(numeric.abs()).max(1.0);
                if abs > report.max_abs_err {
                    report.max_abs_err = abs;
                }
                if rel > report.max_rel_err {
                    report.max_rel_err = rel;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_linalg::rng;

    #[test]
    fn mlp_with_all_activations_passes() {
        let mut r = rng::seeded(17);
        let mut vs = VarStore::new();
        let w1 = vs.add(rng::normal_matrix(&mut r, 3, 4, 0.0, 0.5));
        let b1 = vs.add(rng::normal_matrix(&mut r, 1, 4, 0.0, 0.1));
        let w2 = vs.add(rng::normal_matrix(&mut r, 4, 2, 0.0, 0.5));
        let x = rng::normal_matrix(&mut r, 5, 3, 0.0, 1.0);
        let y = rng::uniform_matrix(&mut r, 5, 2, 0.0, 1.0);

        let report = gradient_check(
            &mut vs,
            |t, vs| {
                let xv = t.input(x.clone());
                let yv = t.input(y.clone());
                let w1v = t.param(vs, w1);
                let b1v = t.param(vs, b1);
                let w2v = t.param(vs, w2);
                let h = t.matmul(xv, w1v);
                let h = t.add_row_broadcast(h, b1v);
                let h = t.tanh(h);
                let z = t.matmul(h, w2v);
                let lp = t.log_softmax_rows(z);
                let prod = t.mul(yv, lp);
                let s = t.sum_all(prod);
                t.scale(s, -1.0 / 5.0)
            },
            1e-5,
        );
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn recip_penalty_passes() {
        // The DeepSAD-style inverse reconstruction error penalty from Eq. 1.
        let mut r = rng::seeded(3);
        let mut vs = VarStore::new();
        let w = vs.add(rng::normal_matrix(&mut r, 3, 3, 0.0, 0.4));
        let x = rng::normal_matrix(&mut r, 4, 3, 1.0, 0.5);

        let report = gradient_check(
            &mut vs,
            |t, vs| {
                let xv = t.input(x.clone());
                let wv = t.param(vs, w);
                let recon = t.matmul(xv, wv);
                let d = t.sub(xv, recon);
                let errs = t.row_sq_norm(d);
                let inv = t.recip(errs);
                t.mean_all(inv)
            },
            1e-5,
        );
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn weighted_col_broadcast_passes() {
        let mut r = rng::seeded(5);
        let mut vs = VarStore::new();
        let w = vs.add(rng::normal_matrix(&mut r, 2, 3, 0.0, 0.5));
        let x = rng::normal_matrix(&mut r, 4, 2, 0.0, 1.0);
        let weights = Matrix::col_vector(&[0.1, 0.9, 0.5, 0.0]);

        let report = gradient_check(
            &mut vs,
            |t, vs| {
                let xv = t.input(x.clone());
                let wv = t.param(vs, w);
                let cw = t.input(weights.clone());
                let z = t.matmul(xv, wv);
                let p = t.softmax_rows(z);
                let lp = t.ln(p);
                let per_row = t.row_sum(lp);
                let weighted = t.mul_col_broadcast(per_row, cw);
                let s = t.sum_all(weighted);
                t.scale(s, -0.25)
            },
            1e-5,
        );
        assert!(report.passes(1e-5), "{report:?}");
    }
}
