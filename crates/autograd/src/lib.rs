//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! The TargAD paper trains several small networks with *custom* losses —
//! the DeepSAD-modified autoencoder loss (Eq. 1), the three-term classifier
//! loss `L_CE + λ₁·L_OE + λ₂·L_RE` (Eq. 8) with per-instance weights, the
//! deviation loss of DevNet, GAN losses for PIA-WAL / Dual-MGAN, and so on.
//! Rather than hand-deriving each gradient, this crate provides a small
//! reverse-mode autodiff engine:
//!
//! - a [`Tape`] records operations as they execute (define-by-run, one tape
//!   per mini-batch);
//! - [`Var`] handles index nodes on the tape;
//! - [`VarStore`] owns trainable parameters and their accumulated gradients,
//!   decoupled from any single tape so optimizers (in `targad-nn`) can step
//!   them;
//! - [`check::gradient_check`] verifies analytic gradients against central
//!   finite differences — used extensively in tests, including property
//!   tests over random graphs.
//!
//! The op vocabulary is deliberately small: exactly what dense tabular MLPs,
//! autoencoders, and the paper's losses need.

pub mod check;
pub mod prune;
pub mod store;
pub mod tape;

pub use prune::{force_grad_prune, grad_prune_enabled, GradPruneGuard};
pub use store::{GradSet, ParamId, VarStore};
pub use tape::{Tape, Var};
