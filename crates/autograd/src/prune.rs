//! The process-wide gate for dead-gradient pruning in the backward sweep.
//!
//! Nothing in the crate exposes gradients of non-[`crate::tape::Tape`]
//! parameter nodes: the only gradient sinks are `Param` leaves flushing
//! into a [`crate::VarStore`] / [`crate::GradSet`]. Gradients that flow
//! *only* toward constant `Input` leaves (the mini-batch matrix, label
//! matrices, loss-weight columns) are therefore dead work — most
//! prominently the first layer's input gradient `dX₁ = dZ₁ · W₁ᵀ`, a full
//! GEMM per step whose result is dropped on the floor. When the gate is
//! open, [`crate::Tape::backward`] computes a needs-gradient reachability
//! mask first and skips every dead branch; the gradients that *are*
//! computed run the identical kernels in the identical order, so fitted
//! weights are bit-identical with the gate open or closed.
//!
//! Resolution order:
//! 1. a live [`force_grad_prune`] override (benchmarks reproducing the
//!    pre-pruning step cost in-process), otherwise
//! 2. the `TARGAD_GRAD_PRUNE` environment variable — `off`, `0`, or
//!    `false` (case-insensitive) closes the gate, anything else (or
//!    unset) leaves it open. Read once and cached for the process
//!    lifetime, like `TARGAD_FUSED_BACKWARD`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// `true` when `TARGAD_GRAD_PRUNE` requests the prune-free reference
/// sweep (`off`, `0`, or `false`, case-insensitively). Resolved on first
/// use and cached: a stable answer keeps every step of a run on one path.
fn env_forced_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| {
        std::env::var("TARGAD_GRAD_PRUNE")
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
    })
}

/// In-process override: 0 = follow the environment, 1 = forced on,
/// 2 = forced off. Only [`force_grad_prune`] writes non-zero values,
/// under [`FORCE_LOCK`], so overrides never interleave.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Serializes [`force_grad_prune`] holders (the override is process
/// global — pool workers must see the same answer as the driving thread,
/// so a thread-local would not do).
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Should the backward sweep skip dead gradient branches right now?
#[inline]
pub fn grad_prune_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !env_forced_off(),
    }
}

/// Holds the pruning override; dropping it restores environment
/// resolution. Hold it for the whole comparison when benchmarking the
/// pruned sweep against the full one — it also serializes such
/// comparisons against each other.
pub struct GradPruneGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for GradPruneGuard {
    fn drop(&mut self) {
        OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Forces dead-gradient pruning on or off for the whole process until the
/// returned guard drops. Concurrent callers queue on an internal lock, so
/// overrides never overlap.
pub fn force_grad_prune(on: bool) -> GradPruneGuard {
    let lock = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    GradPruneGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        {
            let _g = force_grad_prune(false);
            assert!(!grad_prune_enabled());
        }
        {
            let _g = force_grad_prune(true);
            assert!(grad_prune_enabled());
        }
        // Back to environment resolution (unset in the test harness →
        // enabled).
        assert_eq!(grad_prune_enabled(), !env_forced_off());
    }
}
