//! Trainable-parameter storage, decoupled from any single [`crate::Tape`].

use targad_linalg::Matrix;

/// Handle to a parameter inside a [`VarStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone)]
struct ParamEntry {
    value: Matrix,
    grad: Matrix,
}

/// Owns all trainable parameters of one or more models together with their
/// accumulated gradients.
///
/// A fresh [`crate::Tape`] is built per mini-batch; parameters enter the
/// tape through [`crate::Tape::param`], and [`crate::Tape::backward`] flushes
/// the resulting gradients back here, where an optimizer consumes them.
#[derive(Clone, Default)]
pub struct VarStore {
    params: Vec<ParamEntry>,
}

impl VarStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` as a trainable parameter, returning its handle.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(ParamEntry { value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Registers `value` as an *inference-only* parameter: a 0×0
    /// placeholder sits where the gradient accumulator would be, so
    /// registering a matrix that borrows shared storage (e.g. an
    /// `mmap`ed model snapshot) allocates nothing weight-sized. Running
    /// a backward pass over such a parameter is a logic error (it
    /// panics on the accumulator shape mismatch); scoring paths never
    /// touch gradients.
    pub fn add_frozen(&mut self, value: Matrix) -> ParamId {
        self.params.push(ParamEntry {
            value,
            grad: Matrix::zeros(0, 0),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the parameter's gradient accumulator.
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.params[id.0].grad.add_scaled_inplace(delta, 1.0);
    }

    /// Resets all gradients to zero. Call once per optimizer step.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// All parameter handles, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Applies `f(value, grad)` to every parameter (optimizer steps).
    pub fn update_each(&mut self, mut f: impl FnMut(&mut Matrix, &Matrix)) {
        for p in &mut self.params {
            f(&mut p.value, &p.grad);
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.grad.sq_norm())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every gradient by `s` (gradient clipping).
    pub fn scale_grads(&mut self, s: f64) {
        for p in &mut self.params {
            p.grad.map_inplace(|v| v * s);
        }
    }
}

/// A detached set of gradient accumulators mirroring a [`VarStore`]'s
/// parameters, one buffer per parameter in registration order.
///
/// This is the per-shard gradient buffer of data-parallel training: each
/// shard's [`crate::Tape::backward_into`] flushes into its own `GradSet`
/// (disjoint from every other shard's), and the training driver then
/// [`GradSet::flush_into`]s the sets into the store **in ascending shard
/// order** — a fixed floating-point reduction order, so accumulated
/// gradients are bit-identical at any worker count.
#[derive(Clone, Default)]
pub struct GradSet {
    grads: Vec<Matrix>,
}

impl GradSet {
    /// An empty set; shape it against a store with [`GradSet::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Matches this set's buffers to `store`'s parameter shapes and zeroes
    /// them. Allocation-free once shapes match (steady-state training).
    pub fn reset(&mut self, store: &VarStore) {
        self.grads.truncate(store.len());
        for (i, p) in store.params.iter().enumerate() {
            match self.grads.get_mut(i) {
                Some(g) if g.shape() == p.value.shape() => g.fill(0.0),
                Some(g) => *g = Matrix::zeros(p.value.rows(), p.value.cols()),
                None => self
                    .grads
                    .push(Matrix::zeros(p.value.rows(), p.value.cols())),
            }
        }
    }

    /// Number of gradient buffers.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the set holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// The accumulated gradient for `id`.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Adds `delta` into the accumulator for `id` (the
    /// [`crate::Tape::backward_into`] flush target).
    pub(crate) fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        self.grads[id.0].add_scaled_inplace(delta, 1.0);
    }

    /// Adds every accumulator into `store`'s gradients.
    ///
    /// # Panics
    /// Panics if the set was not [`GradSet::reset`] against a store of the
    /// same layout.
    pub fn flush_into(&self, store: &mut VarStore) {
        assert_eq!(
            self.grads.len(),
            store.len(),
            "flush_into: GradSet does not match the store"
        );
        for (i, g) in self.grads.iter().enumerate() {
            store.accumulate_grad(ParamId(i), g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_value_grad_lifecycle() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(vs.len(), 1);
        assert_eq!(vs.num_scalars(), 2);
        assert_eq!(vs.grad(id).as_slice(), &[0.0, 0.0]);

        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 1.5]));
        assert_eq!(vs.grad(id).as_slice(), &[1.0, 2.0]);

        vs.zero_grads();
        assert_eq!(vs.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn update_each_steps_values() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.25, 0.5]));
        vs.update_each(|v, g| v.add_scaled_inplace(g, -1.0));
        assert_eq!(vs.value(id).as_slice(), &[0.75, 0.5]);
    }

    #[test]
    fn grad_set_reset_accumulate_flush() {
        let mut vs = VarStore::new();
        let a = vs.add(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = vs.add(Matrix::zeros(2, 1));

        let mut set = GradSet::new();
        set.reset(&vs);
        assert_eq!(set.len(), 2);
        set.accumulate(a, &Matrix::from_vec(1, 2, vec![0.5, 1.0]));
        set.accumulate(b, &Matrix::from_vec(2, 1, vec![1.0, -1.0]));
        set.accumulate(b, &Matrix::from_vec(2, 1, vec![1.0, 1.0]));
        assert_eq!(set.grad(b).as_slice(), &[2.0, 0.0]);

        set.flush_into(&mut vs);
        set.flush_into(&mut vs);
        assert_eq!(vs.grad(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(vs.grad(b).as_slice(), &[4.0, 0.0]);

        // Reset zeroes without reallocating or changing layout.
        set.reset(&vs);
        assert_eq!(set.grad(a).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn grad_set_flush_rejects_layout_mismatch() {
        let mut vs = VarStore::new();
        vs.add(Matrix::zeros(1, 1));
        let set = GradSet::new();
        set.flush_into(&mut vs);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::zeros(1, 2));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        assert!((vs.grad_norm() - 5.0).abs() < 1e-12);
        vs.scale_grads(0.5);
        assert_eq!(vs.grad(id).as_slice(), &[1.5, 2.0]);
    }
}
