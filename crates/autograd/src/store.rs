//! Trainable-parameter storage, decoupled from any single [`crate::Tape`].

use targad_linalg::Matrix;

/// Handle to a parameter inside a [`VarStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone)]
struct ParamEntry {
    value: Matrix,
    grad: Matrix,
}

/// Owns all trainable parameters of one or more models together with their
/// accumulated gradients.
///
/// A fresh [`crate::Tape`] is built per mini-batch; parameters enter the
/// tape through [`crate::Tape::param`], and [`crate::Tape::backward`] flushes
/// the resulting gradients back here, where an optimizer consumes them.
#[derive(Clone, Default)]
pub struct VarStore {
    params: Vec<ParamEntry>,
}

impl VarStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` as a trainable parameter, returning its handle.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(ParamEntry { value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the parameter's gradient accumulator.
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.params[id.0].grad.add_scaled_inplace(delta, 1.0);
    }

    /// Resets all gradients to zero. Call once per optimizer step.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// All parameter handles, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Applies `f(value, grad)` to every parameter (optimizer steps).
    pub fn update_each(&mut self, mut f: impl FnMut(&mut Matrix, &Matrix)) {
        for p in &mut self.params {
            f(&mut p.value, &p.grad);
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.grad.sq_norm())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales every gradient by `s` (gradient clipping).
    pub fn scale_grads(&mut self, s: f64) {
        for p in &mut self.params {
            p.grad.map_inplace(|v| v * s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_value_grad_lifecycle() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(vs.len(), 1);
        assert_eq!(vs.num_scalars(), 2);
        assert_eq!(vs.grad(id).as_slice(), &[0.0, 0.0]);

        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 0.5]));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.5, 1.5]));
        assert_eq!(vs.grad(id).as_slice(), &[1.0, 2.0]);

        vs.zero_grads();
        assert_eq!(vs.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn update_each_steps_values() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![0.25, 0.5]));
        vs.update_each(|v, g| v.add_scaled_inplace(g, -1.0));
        assert_eq!(vs.value(id).as_slice(), &[0.75, 0.5]);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut vs = VarStore::new();
        let id = vs.add(Matrix::zeros(1, 2));
        vs.accumulate_grad(id, &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        assert!((vs.grad_norm() - 5.0).abs() < 1e-12);
        vs.scale_grads(0.5);
        assert_eq!(vs.grad(id).as_slice(), &[1.5, 2.0]);
    }
}
