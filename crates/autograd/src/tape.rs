//! The computation tape: define-by-run forward ops and reverse-mode backward.
//!
//! The tape owns a shape-keyed buffer pool so that steady-state training
//! performs **zero heap allocations**: call [`Tape::reset`] between steps
//! instead of building a fresh tape, and every forward value, gradient
//! buffer, and backward temporary is recycled from the previous step. The
//! pooled path computes exactly the same floating-point operations in the
//! same order as a freshly constructed tape — results are bit-identical
//! (`crates/bench/tests/alloc_zero.rs` asserts the allocation count,
//! the autograd test suite asserts the bit-identity).

use crate::store::{GradSet, ParamId, VarStore};
use std::collections::HashMap;
use std::time::Instant;
use targad_linalg::{
    dense_backward_bias_into, dense_backward_data_into, dense_backward_weights_into,
    matmul_bias_act_rows_into, stable_sigmoid, EpiAct, Matrix,
};

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Guard used by [`Op::Ln`] and [`Op::Recip`] so gradients stay finite when
/// an activation touches zero.
const EPS: f64 = 1e-12;

#[derive(Clone, Copy)]
enum Op {
    /// Constant leaf (mini-batch inputs, pseudo-label matrices, weights).
    Input,
    /// Trainable leaf; gradients flush into the [`VarStore`].
    Param(ParamId),
    MatMul(Var, Var),
    /// Fused dense layer `act(x·W + b)` recorded as one node: forward runs
    /// the fused GEMM bias+activation epilogue, backward fuses the
    /// activation-derivative product into the gradient GEMMs' read path —
    /// both bit-identical to the unfused
    /// `MatMul → AddRowBroadcast → activation` triplet.
    Dense(Var, Var, Var, EpiAct),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    /// `(n x c) + (1 x c)` broadcast: the bias add of a linear layer.
    AddRowBroadcast(Var, Var),
    /// `(n x c) * (n x 1)` broadcast: per-instance loss weights (Eq. 6).
    MulColBroadcast(Var, Var),
    Scale(Var, f64),
    /// The shift itself is applied at record time and has zero derivative,
    /// so only the operand is stored.
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    /// `ln(max(x, EPS))` — guarded to keep log-loss gradients finite.
    Ln(Var),
    Abs(Var),
    Square(Var),
    Sqrt(Var),
    /// `1 / max(x, EPS)` — the inverse-reconstruction-error penalty (Eq. 1).
    Recip(Var),
    Neg(Var),
    Transpose(Var),
    /// Sum of all entries, producing a `1 x 1` matrix.
    SumAll(Var),
    /// Mean of all entries, producing a `1 x 1` matrix.
    MeanAll(Var),
    /// Sum of all entries divided by an explicit count, producing a
    /// `1 x 1` matrix — the shard-local slice of a global mean.
    SumDiv(Var, f64),
    /// Row sums, producing an `n x 1` column vector.
    RowSum(Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Shape-keyed free list of recycled matrices.
///
/// Buffers come back dirty: every consumer must fully overwrite what it
/// takes (all `Matrix::*_into` kernels do).
#[derive(Default)]
struct Pool {
    free: HashMap<(usize, usize), Vec<Matrix>>,
}

impl Pool {
    /// A `rows x cols` buffer with arbitrary contents — recycled when one of
    /// that shape is free, freshly allocated otherwise (warm-up only).
    fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.free.get_mut(&(rows, cols)).and_then(Vec::pop) {
            Some(m) => {
                targad_obs::metrics::TAPE_POOL_HITS.inc();
                m
            }
            None => {
                targad_obs::metrics::TAPE_POOL_MISSES.inc();
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a buffer to the free list for its shape.
    fn put(&mut self, m: Matrix) {
        self.free.entry(m.shape()).or_default().push(m);
    }
}

/// A reusable computation graph. Build the forward pass, call
/// [`Tape::backward`] once, then either drop the tape or — in a training
/// loop — call [`Tape::reset`] and record the next step into the same
/// storage. After one warm-up step every buffer the step needs lives in the
/// tape's pool, so subsequent steps allocate nothing.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    /// Per-node needs-gradient mask, recomputed by each backward sweep
    /// (capacity retained across steps, so steady state stays
    /// allocation-free). `needs[i]` is `true` when node `i`'s gradient can
    /// reach a `Param` leaf; with dead-gradient pruning enabled
    /// ([`crate::prune`]), branches where it cannot are skipped entirely.
    needs: Vec<bool>,
    pool: Pool,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the recorded graph, recycling every node value (and any
    /// leftover gradient buffer) into the pool. Call between training steps:
    /// the next forward pass reuses the freed buffers instead of allocating.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.put(node.value);
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by a tape op");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// A pooled buffer shaped like the value of `v`.
    fn take_like(&mut self, v: Var) -> Matrix {
        let (r, c) = self.nodes[v.0].value.shape();
        self.pool.take(r, c)
    }

    /// Registers a constant (non-trainable) leaf, taking ownership.
    ///
    /// The buffer joins the pool on [`Tape::reset`]. In steady-state loops
    /// prefer [`Tape::input_from`] / [`Tape::input_rows_from`], which copy
    /// into pooled storage instead of allocating per step.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Input)
    }

    /// Registers a constant leaf as a pooled copy of `src`.
    pub fn input_from(&mut self, src: &Matrix) -> Var {
        let mut value = self.pool.take(src.rows(), src.cols());
        value.copy_from(src);
        self.push(value, Op::Input)
    }

    /// Registers a constant leaf holding the listed rows of `src` (the
    /// pooled equivalent of `input(src.take_rows(rows))` — the mini-batch
    /// gather of every epoch loop).
    pub fn input_rows_from(&mut self, src: &Matrix, rows: &[usize]) -> Var {
        let mut value = self.pool.take(rows.len(), src.cols());
        src.take_rows_into(rows, &mut value);
        self.push(value, Op::Input)
    }

    /// Registers a constant leaf holding the contiguous rows `lo..hi` of
    /// `src` (the pooled shard gather of data-parallel training over a
    /// pre-built batch matrix).
    pub fn input_row_slice_from(&mut self, src: &Matrix, lo: usize, hi: usize) -> Var {
        assert!(
            lo <= hi && hi <= src.rows(),
            "input_row_slice_from: bad row range {lo}..{hi} for {} rows",
            src.rows()
        );
        let cols = src.cols();
        let mut value = self.pool.take(hi - lo, cols);
        value
            .as_mut_slice()
            .copy_from_slice(&src.as_slice()[lo * cols..hi * cols]);
        self.push(value, Op::Input)
    }

    /// Registers a constant `idx.len() x 1` leaf with entries
    /// `values[idx[i]]` — the pooled equivalent of
    /// `input(Matrix::col_vector(&gathered))` for per-instance loss
    /// weights gathered by batch index (Eq. 6).
    pub fn input_gather_col(&mut self, values: &[f64], idx: &[usize]) -> Var {
        let mut value = self.pool.take(idx.len(), 1);
        for (slot, &i) in value.as_mut_slice().iter_mut().zip(idx) {
            *slot = values[i];
        }
        self.push(value, Op::Input)
    }

    /// Registers a trainable parameter from `store` as a leaf.
    pub fn param(&mut self, store: &VarStore, id: ParamId) -> Var {
        let src = store.value(id);
        let mut value = self.pool.take(src.rows(), src.cols());
        value.copy_from(src);
        self.push(value, Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut out = self.pool.take(r, c);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Fused dense layer `act(x·W + b)` as a single tape node.
    ///
    /// Forward runs the fused-epilogue GEMM
    /// ([`matmul_bias_act_rows_into`], the inference-engine kernel), and
    /// backward fuses the activation-derivative product `dZ = dA ⊙
    /// act'(Z)` into the gradient GEMMs instead of materializing it —
    /// values and gradients are bit-identical to the unfused `matmul` →
    /// `add_row_broadcast` → activation sequence (the retained reference
    /// arm). `w` must be a `d_in x n` node, `b` a `1 x n` node; either may
    /// be a parameter or a frozen input.
    pub fn dense(&mut self, x: Var, w: Var, b: Var, act: EpiAct) -> Var {
        let (rows, d_in) = self.nodes[x.0].value.shape();
        let n = self.nodes[w.0].value.cols();
        let mut out = self.pool.take(rows, n);
        matmul_bias_act_rows_into(
            self.nodes[x.0].value.as_slice(),
            d_in,
            &self.nodes[w.0].value,
            self.nodes[b.0].value.as_slice(),
            act,
            out.as_mut_slice(),
        );
        self.push(out, Op::Dense(x, w, b, act))
    }

    /// Elementwise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x + y, &mut out);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x - y, &mut out);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x * y, &mut out);
        self.push(out, Op::MulElem(a, b))
    }

    /// Adds a `1 x c` row vector to every row of an `n x c` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0]
            .value
            .add_row_broadcast_into(&self.nodes[row.0].value, &mut out);
        self.push(out, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies each row of an `n x c` matrix by the matching entry of an
    /// `n x 1` column vector.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0]
            .value
            .mul_col_broadcast_into(&self.nodes[col.0].value, &mut out);
        self.push(out, Op::MulColBroadcast(a, col))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, Op::Scale(a, s), move |x| x * s)
    }

    /// Addition of a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        self.unary(a, Op::AddScalar(a), move |x| x + s)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        self.unary(a, Op::LeakyRelu(a, alpha), move |x| {
            if x > 0.0 {
                x
            } else {
                alpha * x
            }
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sigmoid(a), stable_sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, Op::Tanh(a), f64::tanh)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, Op::Exp(a), f64::exp)
    }

    /// Elementwise `ln(max(x, 1e-12))` (guarded natural log).
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, Op::Ln(a), |x| x.max(EPS).ln())
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, Op::Abs(a), f64::abs)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        self.unary(a, Op::Square(a), |x| x * x)
    }

    /// Elementwise square root (input must be non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sqrt(a), f64::sqrt)
    }

    /// Elementwise `1 / max(x, 1e-12)` (guarded reciprocal).
    pub fn recip(&mut self, a: Var) -> Var {
        self.unary(a, Op::Recip(a), |x| 1.0 / x.max(EPS))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, Op::Neg(a), |x| -x)
    }

    /// Records a unary elementwise op into a pooled output buffer.
    fn unary(&mut self, a: Var, op: Op, f: impl Fn(f64) -> f64) -> Var {
        let mut out = self.take_like(a);
        self.nodes[a.0].value.map_into(f, &mut out);
        self.push(out, op)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut out = self.pool.take(c, r);
        self.nodes[a.0].value.transpose_into(&mut out);
        self.push(out, Op::Transpose(a))
    }

    /// Sum of all entries as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let mut out = self.pool.take(1, 1);
        out.as_mut_slice()[0] = self.nodes[a.0].value.sum();
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all entries as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let mut out = self.pool.take(1, 1);
        out.as_mut_slice()[0] = self.nodes[a.0].value.mean();
        self.push(out, Op::MeanAll(a))
    }

    /// Sum of all entries divided by the explicit count `denom`, as
    /// `1 x 1`.
    ///
    /// This is the shard-local slice of a global mean: adding
    /// `sum_div(shard, n)` over all shards of a batch of `n` elements
    /// equals the batch mean, and on a single shard covering the whole
    /// batch both the forward value and the backward fill (`g / denom`)
    /// are bit-identical to [`Tape::mean_all`].
    pub fn sum_div(&mut self, a: Var, denom: f64) -> Var {
        let mut out = self.pool.take(1, 1);
        out.as_mut_slice()[0] = self.nodes[a.0].value.sum() / denom;
        self.push(out, Op::SumDiv(a, denom))
    }

    /// Row sums as an `n x 1` column vector.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let mut out = self.pool.take(self.nodes[a.0].value.rows(), 1);
        self.nodes[a.0].value.row_sums_into(&mut out);
        self.push(out, Op::RowSum(a))
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        out.copy_from(&self.nodes[a.0].value);
        out.softmax_rows_inplace();
        self.push(out, Op::SoftmaxRows(a))
    }

    /// Numerically stable row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let mut out = self.take_like(a);
        out.copy_from(&self.nodes[a.0].value);
        out.log_softmax_rows_inplace();
        self.push(out, Op::LogSoftmaxRows(a))
    }

    // ---- composite convenience ops -------------------------------------

    /// Mean squared error between two same-shape matrices, as `1 x 1`.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.square(d);
        self.mean_all(sq)
    }

    /// Per-row squared Euclidean norms: `n x 1`.
    pub fn row_sq_norm(&mut self, a: Var) -> Var {
        let sq = self.square(a);
        self.row_sum(sq)
    }

    /// `a + b * s` — fused scale-and-add used when composing loss terms.
    pub fn add_scaled(&mut self, a: Var, b: Var, s: f64) -> Var {
        let sb = self.scale(b, s);
        self.add(a, sb)
    }

    /// Reverse-mode sweep from `loss` (must be `1 x 1`), flushing parameter
    /// gradients into `store`.
    ///
    /// Gradients **accumulate** in the store; call [`VarStore::zero_grads`]
    /// between optimizer steps. Every gradient buffer and temporary comes
    /// from (and returns to) the tape's pool, so after the warm-up step the
    /// sweep is allocation-free.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` matrix.
    pub fn backward(&mut self, loss: Var, store: &mut VarStore) {
        self.backward_sink(loss, &mut GradSink::Store(store));
    }

    /// [`Tape::backward`], but flushing parameter gradients into a
    /// detached [`GradSet`] instead of the store.
    ///
    /// This is the per-shard backward of data-parallel training: each
    /// shard sweeps into its own set (the same floating-point operations
    /// in the same order as [`Tape::backward`]), and the caller reduces
    /// the sets into the store in fixed shard order afterwards. `grads`
    /// must have been [`GradSet::reset`] against the store the graph's
    /// [`Tape::param`] leaves came from.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` matrix.
    pub fn backward_into(&mut self, loss: Var, grads: &mut GradSet) {
        self.backward_sink(loss, &mut GradSink::Set(grads));
    }

    fn backward_sink(&mut self, loss: Var, sink: &mut GradSink) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be a 1x1 matrix"
        );
        let Tape {
            nodes,
            grads,
            needs,
            pool,
        } = self;
        for g in grads.drain(..).flatten() {
            pool.put(g);
        }
        grads.resize_with(nodes.len(), || None);

        // Needs-gradient reachability: a node's gradient matters only if it
        // can flow into a `Param` leaf. Nothing in the crate exposes
        // non-param gradients, so when pruning is enabled the sweep skips
        // every branch that only feeds constant `Input` leaves (the first
        // layer's `dX`, label-matrix gradients, …). Operands always precede
        // their consumers on the tape, so one forward pass suffices. With
        // pruning disabled every node "needs" its gradient and the sweep is
        // exactly the historical full sweep.
        let prune = crate::prune::grad_prune_enabled();
        needs.clear();
        for node in nodes.iter() {
            let nd = !prune
                || match node.op {
                    Op::Input => false,
                    Op::Param(_) => true,
                    Op::MatMul(a, b)
                    | Op::Add(a, b)
                    | Op::Sub(a, b)
                    | Op::MulElem(a, b)
                    | Op::AddRowBroadcast(a, b)
                    | Op::MulColBroadcast(a, b) => needs[a.0] || needs[b.0],
                    Op::Dense(x, w, b, _) => needs[x.0] || needs[w.0] || needs[b.0],
                    Op::Scale(a, _)
                    | Op::AddScalar(a)
                    | Op::Relu(a)
                    | Op::LeakyRelu(a, _)
                    | Op::Sigmoid(a)
                    | Op::Tanh(a)
                    | Op::Exp(a)
                    | Op::Ln(a)
                    | Op::Abs(a)
                    | Op::Square(a)
                    | Op::Sqrt(a)
                    | Op::Recip(a)
                    | Op::Neg(a)
                    | Op::Transpose(a)
                    | Op::SumAll(a)
                    | Op::MeanAll(a)
                    | Op::SumDiv(a, _)
                    | Op::RowSum(a)
                    | Op::SoftmaxRows(a)
                    | Op::LogSoftmaxRows(a) => needs[a.0],
                };
            needs.push(nd);
        }

        if needs[loss.0] {
            let mut seed = pool.take(1, 1);
            seed.fill(1.0);
            grads[loss.0] = Some(seed);
        }

        // When telemetry is hot, bucket per-node time into the GEMM /
        // elementwise sub-phases of `step.backward` (one clock read pair
        // per node, two `record_ns` calls per sweep). Disabled: no clock
        // reads at all.
        let timing = targad_obs::enabled();
        let mut gemm_ns: u64 = 0;
        let mut elem_ns: u64 = 0;

        for i in (0..nodes.len()).rev() {
            let mut g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node_start = timing.then(Instant::now);
            let is_gemm = matches!(nodes[i].op, Op::MatMul(..) | Op::Dense(..));
            match nodes[i].op {
                Op::Input => pool.put(g),
                Op::Param(id) => {
                    sink.accumulate(id, &g);
                    pool.put(g);
                }
                Op::MatMul(a, b) => {
                    let va = &nodes[a.0].value;
                    let vb = &nodes[b.0].value;
                    if needs[a.0] {
                        let mut da = pool.take(va.rows(), va.cols());
                        g.matmul_nt_into(vb, &mut da);
                        accumulate(grads, pool, a.0, da);
                    }
                    if needs[b.0] {
                        let mut db = pool.take(vb.rows(), vb.cols());
                        va.matmul_tn_into(&g, &mut db);
                        accumulate(grads, pool, b.0, db);
                    }
                    pool.put(g);
                }
                Op::Dense(x, w, b, act) => {
                    // Same accumulation order as the unfused triplet:
                    // bias (the AddRowBroadcast arm), then data, then
                    // weights (the MatMul arm's `a` before `b`). `dZ` is
                    // never materialized — each kernel computes it on its
                    // read path from `g` and the stored output.
                    let vy = &nodes[i].value;
                    let vx = &nodes[x.0].value;
                    let vw = &nodes[w.0].value;
                    if needs[b.0] {
                        let mut db = pool.take(1, g.cols());
                        dense_backward_bias_into(&g, vy, act, &mut db);
                        accumulate(grads, pool, b.0, db);
                    }
                    if needs[x.0] {
                        let mut dx = pool.take(vx.rows(), vx.cols());
                        dense_backward_data_into(&g, vy, act, vw, &mut dx);
                        accumulate(grads, pool, x.0, dx);
                    }
                    if needs[w.0] {
                        let mut dw = pool.take(vw.rows(), vw.cols());
                        dense_backward_weights_into(vx, &g, vy, act, &mut dw);
                        accumulate(grads, pool, w.0, dw);
                    }
                    pool.put(g);
                }
                Op::Add(a, b) => {
                    if needs[a.0] && needs[b.0] {
                        let mut da = pool.take(g.rows(), g.cols());
                        da.copy_from(&g);
                        accumulate(grads, pool, a.0, da);
                        accumulate(grads, pool, b.0, g);
                    } else if needs[a.0] {
                        accumulate(grads, pool, a.0, g);
                    } else {
                        accumulate(grads, pool, b.0, g);
                    }
                }
                Op::Sub(a, b) => {
                    if needs[a.0] && needs[b.0] {
                        let mut da = pool.take(g.rows(), g.cols());
                        da.copy_from(&g);
                        accumulate(grads, pool, a.0, da);
                        g.map_inplace(|x| -x);
                        accumulate(grads, pool, b.0, g);
                    } else if needs[a.0] {
                        accumulate(grads, pool, a.0, g);
                    } else {
                        g.map_inplace(|x| -x);
                        accumulate(grads, pool, b.0, g);
                    }
                }
                Op::MulElem(a, b) => {
                    if needs[a.0] && needs[b.0] {
                        let mut da = pool.take(g.rows(), g.cols());
                        g.zip_map_into(&nodes[b.0].value, |gv, y| gv * y, &mut da);
                        g.zip_map_inplace(&nodes[a.0].value, |gv, x| gv * x);
                        accumulate(grads, pool, a.0, da);
                        accumulate(grads, pool, b.0, g);
                    } else if needs[a.0] {
                        g.zip_map_inplace(&nodes[b.0].value, |gv, y| gv * y);
                        accumulate(grads, pool, a.0, g);
                    } else {
                        g.zip_map_inplace(&nodes[a.0].value, |gv, x| gv * x);
                        accumulate(grads, pool, b.0, g);
                    }
                }
                Op::AddRowBroadcast(a, row) => {
                    if needs[row.0] {
                        let mut drow = pool.take(1, g.cols());
                        g.col_sums_into(&mut drow);
                        accumulate(grads, pool, row.0, drow);
                    }
                    if needs[a.0] {
                        accumulate(grads, pool, a.0, g);
                    } else {
                        pool.put(g);
                    }
                }
                Op::MulColBroadcast(a, col) => {
                    if needs[col.0] {
                        let mut gx = pool.take(g.rows(), g.cols());
                        g.zip_map_into(&nodes[a.0].value, |gv, x| gv * x, &mut gx);
                        let mut dcol = pool.take(g.rows(), 1);
                        gx.row_sums_into(&mut dcol);
                        pool.put(gx);
                        if needs[a.0] {
                            g.mul_col_broadcast_inplace(&nodes[col.0].value);
                            accumulate(grads, pool, a.0, g);
                        } else {
                            pool.put(g);
                        }
                        accumulate(grads, pool, col.0, dcol);
                    } else {
                        g.mul_col_broadcast_inplace(&nodes[col.0].value);
                        accumulate(grads, pool, a.0, g);
                    }
                }
                Op::Scale(a, s) => {
                    g.map_inplace(|x| x * s);
                    accumulate(grads, pool, a.0, g);
                }
                Op::AddScalar(a) => accumulate(grads, pool, a.0, g),
                Op::Relu(a) => {
                    g.zip_map_inplace(&nodes[a.0].value, |gv, x| if x > 0.0 { gv } else { 0.0 });
                    accumulate(grads, pool, a.0, g);
                }
                Op::LeakyRelu(a, alpha) => {
                    g.zip_map_inplace(
                        &nodes[a.0].value,
                        |gv, x| if x > 0.0 { gv } else { alpha * gv },
                    );
                    accumulate(grads, pool, a.0, g);
                }
                Op::Sigmoid(a) => {
                    g.zip_map_inplace(&nodes[i].value, |gv, y| gv * (y * (1.0 - y)));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Tanh(a) => {
                    g.zip_map_inplace(&nodes[i].value, |gv, y| gv * (1.0 - y * y));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Exp(a) => {
                    g.zip_map_inplace(&nodes[i].value, |gv, y| gv * y);
                    accumulate(grads, pool, a.0, g);
                }
                Op::Ln(a) => {
                    g.zip_map_inplace(&nodes[a.0].value, |gv, x| gv * (1.0 / x.max(EPS)));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Abs(a) => {
                    g.zip_map_inplace(&nodes[a.0].value, |gv, x| {
                        gv * if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    });
                    accumulate(grads, pool, a.0, g);
                }
                Op::Square(a) => {
                    g.zip_map_inplace(&nodes[a.0].value, |gv, x| gv * (2.0 * x));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Sqrt(a) => {
                    g.zip_map_inplace(&nodes[i].value, |gv, y| gv * (0.5 / y.max(EPS)));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Recip(a) => {
                    // d(1/x)/dx = -1/x^2 = -y^2 on the guarded domain.
                    g.zip_map_inplace(&nodes[i].value, |gv, y| gv * (-y * y));
                    accumulate(grads, pool, a.0, g);
                }
                Op::Neg(a) => {
                    g.map_inplace(|x| -x);
                    accumulate(grads, pool, a.0, g);
                }
                Op::Transpose(a) => {
                    let mut da = pool.take(g.cols(), g.rows());
                    g.transpose_into(&mut da);
                    pool.put(g);
                    accumulate(grads, pool, a.0, da);
                }
                Op::SumAll(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut da = pool.take(r, c);
                    da.fill(g[(0, 0)]);
                    pool.put(g);
                    accumulate(grads, pool, a.0, da);
                }
                Op::MeanAll(a) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let n = (r * c) as f64;
                    let mut da = pool.take(r, c);
                    da.fill(g[(0, 0)] / n);
                    pool.put(g);
                    accumulate(grads, pool, a.0, da);
                }
                Op::SumDiv(a, denom) => {
                    let (r, c) = nodes[a.0].value.shape();
                    let mut da = pool.take(r, c);
                    da.fill(g[(0, 0)] / denom);
                    pool.put(g);
                    accumulate(grads, pool, a.0, da);
                }
                Op::RowSum(a) => {
                    // Each row of da is the row's scalar gradient, broadcast.
                    let (r, c) = nodes[a.0].value.shape();
                    let mut da = pool.take(r, c);
                    for (row, &gv) in da.as_mut_slice().chunks_mut(c.max(1)).zip(g.as_slice()) {
                        row.fill(gv);
                    }
                    pool.put(g);
                    accumulate(grads, pool, a.0, da);
                }
                Op::SoftmaxRows(a) => {
                    // dx = y ⊙ (g − rowsum(g ⊙ y)).
                    let y = &nodes[i].value;
                    let mut dx = pool.take(g.rows(), g.cols());
                    g.zip_map_into(y, |gv, yv| gv * yv, &mut dx);
                    let mut dot = pool.take(g.rows(), 1);
                    dx.row_sums_into(&mut dot);
                    let cols = g.cols().max(1);
                    for ((dx_row, g_row), (y_row, &d)) in dx
                        .as_mut_slice()
                        .chunks_mut(cols)
                        .zip(g.as_slice().chunks(cols))
                        .zip(y.as_slice().chunks(cols).zip(dot.as_slice()))
                    {
                        for ((o, &gv), &yv) in dx_row.iter_mut().zip(g_row).zip(y_row) {
                            *o = (gv - d) * yv;
                        }
                    }
                    pool.put(g);
                    pool.put(dot);
                    accumulate(grads, pool, a.0, dx);
                }
                Op::LogSoftmaxRows(a) => {
                    // dx = g − softmax(x) ⊙ rowsum(g) broadcast.
                    let mut soft = pool.take(g.rows(), g.cols());
                    soft.copy_from(&nodes[a.0].value);
                    soft.softmax_rows_inplace();
                    let mut rs = pool.take(g.rows(), 1);
                    g.row_sums_into(&mut rs);
                    let cols = g.cols().max(1);
                    for ((g_row, s_row), &r) in g
                        .as_mut_slice()
                        .chunks_mut(cols)
                        .zip(soft.as_slice().chunks(cols))
                        .zip(rs.as_slice())
                    {
                        for (o, &s) in g_row.iter_mut().zip(s_row) {
                            *o -= s * r;
                        }
                    }
                    pool.put(soft);
                    pool.put(rs);
                    accumulate(grads, pool, a.0, g);
                }
            }
            if let Some(start) = node_start {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if is_gemm {
                    gemm_ns += ns;
                } else {
                    elem_ns += ns;
                }
            }
        }
        if timing {
            targad_obs::profile::PHASE_STEP_BACKWARD_GEMM.record_ns(gemm_ns);
            targad_obs::profile::PHASE_STEP_BACKWARD_ELEM.record_ns(elem_ns);
        }
    }
}

/// Where a backward sweep flushes parameter gradients: straight into the
/// store ([`Tape::backward`]) or into a detached per-shard set
/// ([`Tape::backward_into`]).
enum GradSink<'a> {
    Store(&'a mut VarStore),
    Set(&'a mut GradSet),
}

impl GradSink<'_> {
    fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        match self {
            GradSink::Store(store) => store.accumulate_grad(id, delta),
            GradSink::Set(set) => set.accumulate(id, delta),
        }
    }
}

/// Adds `delta` into the gradient slot for node `idx`, recycling `delta`
/// when the slot already holds a buffer.
fn accumulate(grads: &mut [Option<Matrix>], pool: &mut Pool, idx: usize, delta: Matrix) {
    match &mut grads[idx] {
        Some(existing) => {
            existing.add_scaled_inplace(&delta, 1.0);
            pool.put(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[Matrix]) -> (VarStore, Vec<ParamId>) {
        let mut vs = VarStore::new();
        let ids = values.iter().map(|m| vs.add(m.clone())).collect();
        (vs, ids)
    }

    #[test]
    fn forward_values_compose() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.input(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c)[(0, 0)], 11.0);
        let d = t.scale(c, 2.0);
        let e = t.add_scalar(d, 1.0);
        assert_eq!(t.value(e)[(0, 0)], 23.0);
    }

    #[test]
    fn backward_linear_chain() {
        // loss = mean((x*w - y)^2); check dL/dw analytically.
        let (mut vs, ids) = store_with(&[Matrix::from_vec(1, 1, vec![3.0])]);
        let mut t = Tape::new();
        let x = t.input(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let y = t.input(Matrix::from_vec(2, 1, vec![2.0, 4.5]));
        let w = t.param(&vs, ids[0]);
        let pred = t.matmul(x, w);
        let loss = t.mse(pred, y);
        // residuals: (3-2)=1, (6-4.5)=1.5 -> loss = (1 + 2.25)/2
        assert!((t.value(loss)[(0, 0)] - 1.625).abs() < 1e-12);
        t.backward(loss, &mut vs);
        // dL/dw = mean over i of 2*(x_i*w - y_i)*x_i = (2*1*1 + 2*1.5*2)/2 = 4
        assert!((vs.grad(ids[0])[(0, 0)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn backward_accumulates_for_shared_nodes() {
        // loss = sum(w + w) -> dL/dw = 2 per element.
        let (mut vs, ids) = store_with(&[Matrix::from_vec(1, 2, vec![1.0, -1.0])]);
        let mut t = Tape::new();
        let w = t.param(&vs, ids[0]);
        let s = t.add(w, w);
        let loss = t.sum_all(s);
        t.backward(loss, &mut vs);
        assert_eq!(vs.grad(ids[0]).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1")]
    fn backward_rejects_non_scalar_loss() {
        let mut vs = VarStore::new();
        let mut t = Tape::new();
        let a = t.input(Matrix::zeros(2, 2));
        t.backward(a, &mut vs);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![1000.0, -1000.0]));
        let s = t.sigmoid(a);
        assert_eq!(t.value(s)[(0, 0)], 1.0);
        assert_eq!(t.value(s)[(0, 1)], 0.0);
    }

    #[test]
    fn softmax_rows_forward_matches_linalg() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, -1.0, 0.5, 0.25]);
        let mut t = Tape::new();
        let a = t.input(m.clone());
        let s = t.softmax_rows(a);
        assert_eq!(t.value(s), &m.softmax_rows());
    }

    #[test]
    fn weighted_ce_against_hand_computed() {
        // A 2-instance, 2-class weighted CE:
        //   L = (1/2) Σ_i w_i Σ_j −y_ij log p_ij
        let logits = Matrix::from_vec(2, 2, vec![0.0, 0.0, 2.0, 0.0]);
        let targets = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let weights = Matrix::col_vector(&[1.0, 2.0]);
        let mut t = Tape::new();
        let z = t.input(logits);
        let y = t.input(targets);
        let wv = t.input(weights);
        let logp = t.log_softmax_rows(z);
        let prod = t.mul(y, logp);
        let per_row = t.row_sum(prod);
        let weighted = t.mul(per_row, wv);
        let sum = t.sum_all(weighted);
        let loss = t.scale(sum, -0.5);
        // row0: log p = log 0.5 -> contributes -log 0.5 * 1
        // row1: p_1 = e^0/(e^2+e^0); -log p_1 = log(1+e^2) * 2
        let expected = 0.5 * (-(0.5f64.ln()) + 2.0 * (1.0 + 2.0f64.exp()).ln());
        assert!((t.value(loss)[(0, 0)] - expected).abs() < 1e-10);
    }

    #[test]
    fn input_from_variants_match_input() {
        let data = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f64 * 0.5);
        let mut t = Tape::new();
        let a = t.input(data.clone());
        let b = t.input_from(&data);
        assert_eq!(t.value(a), t.value(b));
        let rows = [4, 0, 2];
        let c = t.input_rows_from(&data, &rows);
        assert_eq!(t.value(c), &data.take_rows(&rows));
    }

    /// One gradient-descent step on `loss = mean((x*w + b - y)^2)` built on
    /// `tape`; returns (loss, grad_w, grad_b) for bit-level comparison.
    fn lsq_step(tape: &mut Tape, vs: &mut VarStore, ids: &[ParamId]) -> (f64, Matrix, Matrix) {
        vs.zero_grads();
        let x = tape.input(Matrix::from_fn(8, 3, |r, c| {
            ((r * 3 + c) % 7) as f64 * 0.25 - 0.5
        }));
        let y = tape.input(Matrix::from_fn(8, 2, |r, c| {
            ((r * 2 + c) % 5) as f64 * 0.3 - 0.4
        }));
        let w = tape.param(vs, ids[0]);
        let b = tape.param(vs, ids[1]);
        let xw = tape.matmul(x, w);
        let pred = tape.add_row_broadcast(xw, b);
        let sm = tape.softmax_rows(pred);
        let loss = tape.mse(sm, y);
        tape.backward(loss, vs);
        (
            tape.value(loss)[(0, 0)],
            vs.grad(ids[0]).clone(),
            vs.grad(ids[1]).clone(),
        )
    }

    #[test]
    fn reset_tape_is_bit_identical_to_fresh_tape() {
        let params = [
            Matrix::from_fn(3, 2, |r, c| (r as f64 - c as f64) * 0.21),
            Matrix::from_fn(1, 2, |_, c| c as f64 * 0.11 - 0.05),
        ];
        let (mut vs_fresh, ids_fresh) = store_with(&params);
        let (mut vs_pooled, ids_pooled) = store_with(&params);

        let mut pooled = Tape::new();
        for step in 0..5 {
            let mut fresh = Tape::new();
            let a = lsq_step(&mut fresh, &mut vs_fresh, &ids_fresh);
            pooled.reset();
            let b = lsq_step(&mut pooled, &mut vs_pooled, &ids_pooled);
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "loss at step {step}");
            assert_eq!(a.1, b.1, "grad_w at step {step}");
            assert_eq!(a.2, b.2, "grad_b at step {step}");
            // Apply identical updates so later steps see identical params.
            for (&idf, &idp) in ids_fresh.iter().zip(&ids_pooled) {
                let gf = vs_fresh.grad(idf).clone();
                vs_fresh.value_mut(idf).add_scaled_inplace(&gf, -0.1);
                let gp = vs_pooled.grad(idp).clone();
                vs_pooled.value_mut(idp).add_scaled_inplace(&gp, -0.1);
            }
        }
    }

    #[test]
    fn sum_div_over_the_whole_matrix_is_bit_identical_to_mean_all() {
        let data = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f64).sin());
        let (mut vs_a, ids_a) = store_with(std::slice::from_ref(&data));
        let (mut vs_b, ids_b) = store_with(std::slice::from_ref(&data));

        let mut ta = Tape::new();
        let wa = ta.param(&vs_a, ids_a[0]);
        let sq_a = ta.square(wa);
        let la = ta.mean_all(sq_a);
        ta.backward(la, &mut vs_a);

        let mut tb = Tape::new();
        let wb = tb.param(&vs_b, ids_b[0]);
        let sq_b = tb.square(wb);
        let lb = tb.sum_div(sq_b, (7 * 3) as f64);
        tb.backward(lb, &mut vs_b);

        assert_eq!(
            ta.value(la)[(0, 0)].to_bits(),
            tb.value(lb)[(0, 0)].to_bits()
        );
        assert_eq!(vs_a.grad(ids_a[0]), vs_b.grad(ids_b[0]));
    }

    #[test]
    fn sum_div_shards_reduce_to_the_whole_batch_gradient() {
        // mean over 10 rows == sum of two sum_div(…, 10) shard partials;
        // gradients agree to fp-roundoff (exactly, for the fill pattern).
        let data = Matrix::from_fn(10, 2, |r, c| (r * 2 + c) as f64 * 0.25 - 1.0);
        let (mut vs, ids) = store_with(&[Matrix::from_vec(2, 1, vec![0.7, -0.3])]);

        let mut t = Tape::new();
        let w = t.param(&vs, ids[0]);
        let x = t.input_from(&data);
        let p = t.matmul(x, w);
        let sq = t.square(p);
        let loss = t.mean_all(sq);
        t.backward(loss, &mut vs);
        let whole = vs.grad(ids[0]).clone();
        let whole_loss = t.value(loss)[(0, 0)];

        vs.zero_grads();
        let mut partials = 0.0;
        for (lo, hi) in [(0usize, 6usize), (6, 10)] {
            let mut ts = Tape::new();
            let w = ts.param(&vs, ids[0]);
            let x = ts.input_row_slice_from(&data, lo, hi);
            let p = ts.matmul(x, w);
            let sq = ts.square(p);
            let part = ts.sum_div(sq, 10.0);
            partials += ts.value(part)[(0, 0)];
            ts.backward(part, &mut vs);
        }
        assert!((whole_loss - partials).abs() < 1e-12);
        let sharded = vs.grad(ids[0]);
        for (a, b) in whole.as_slice().iter().zip(sharded.as_slice()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_into_matches_backward_bit_for_bit() {
        let params = [
            Matrix::from_fn(3, 2, |r, c| (r as f64 - c as f64) * 0.21),
            Matrix::from_fn(1, 2, |_, c| c as f64 * 0.11 - 0.05),
        ];
        let (mut vs_direct, ids_direct) = store_with(&params);
        let (mut vs_set, ids_set) = store_with(&params);

        let mut t = Tape::new();
        let (_, gw, gb) = lsq_step(&mut t, &mut vs_direct, &ids_direct);

        let mut t2 = Tape::new();
        vs_set.zero_grads();
        let x = t2.input(Matrix::from_fn(8, 3, |r, c| {
            ((r * 3 + c) % 7) as f64 * 0.25 - 0.5
        }));
        let y = t2.input(Matrix::from_fn(8, 2, |r, c| {
            ((r * 2 + c) % 5) as f64 * 0.3 - 0.4
        }));
        let w = t2.param(&vs_set, ids_set[0]);
        let b = t2.param(&vs_set, ids_set[1]);
        let xw = t2.matmul(x, w);
        let pred = t2.add_row_broadcast(xw, b);
        let sm = t2.softmax_rows(pred);
        let loss = t2.mse(sm, y);
        let mut set = GradSet::new();
        set.reset(&vs_set);
        t2.backward_into(loss, &mut set);
        assert_eq!(set.grad(ids_set[0]), &gw);
        assert_eq!(set.grad(ids_set[1]), &gb);
        set.flush_into(&mut vs_set);
        assert_eq!(vs_set.grad(ids_set[0]), &gw);
        assert_eq!(vs_set.grad(ids_set[1]), &gb);
    }

    #[test]
    fn pooled_input_variants_gather_correctly() {
        let data = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f64);
        let mut t = Tape::new();
        let slice = t.input_row_slice_from(&data, 2, 5);
        assert_eq!(t.value(slice), &data.take_rows(&[2, 3, 4]));
        let weights = [0.5, 1.5, 2.5, 3.5];
        let col = t.input_gather_col(&weights, &[3, 0, 2]);
        assert_eq!(t.value(col), &Matrix::col_vector(&[3.5, 0.5, 2.5]));
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn input_row_slice_rejects_out_of_bounds() {
        let data = Matrix::zeros(3, 2);
        let mut t = Tape::new();
        t.input_row_slice_from(&data, 1, 4);
    }

    #[test]
    fn reset_recycles_buffers() {
        let mut t = Tape::new();
        for _ in 0..3 {
            t.reset();
            let a = t.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
            let b = t.square(a);
            let loss = t.mean_all(b);
            let mut vs = VarStore::new();
            t.backward(loss, &mut vs);
            assert_eq!(t.len(), 3);
        }
    }
}
