//! The computation tape: define-by-run forward ops and reverse-mode backward.

use crate::store::{ParamId, VarStore};
use targad_linalg::Matrix;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Guard used by [`Op::Ln`] and [`Op::Recip`] so gradients stay finite when
/// an activation touches zero.
const EPS: f64 = 1e-12;

#[derive(Clone, Copy)]
enum Op {
    /// Constant leaf (mini-batch inputs, pseudo-label matrices, weights).
    Input,
    /// Trainable leaf; gradients flush into the [`VarStore`].
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    /// `(n x c) + (1 x c)` broadcast: the bias add of a linear layer.
    AddRowBroadcast(Var, Var),
    /// `(n x c) * (n x 1)` broadcast: per-instance loss weights (Eq. 6).
    MulColBroadcast(Var, Var),
    Scale(Var, f64),
    /// The shift itself is applied at record time and has zero derivative,
    /// so only the operand is stored.
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    /// `ln(max(x, EPS))` — guarded to keep log-loss gradients finite.
    Ln(Var),
    Abs(Var),
    Square(Var),
    Sqrt(Var),
    /// `1 / max(x, EPS)` — the inverse-reconstruction-error penalty (Eq. 1).
    Recip(Var),
    Neg(Var),
    Transpose(Var),
    /// Sum of all entries, producing a `1 x 1` matrix.
    SumAll(Var),
    /// Mean of all entries, producing a `1 x 1` matrix.
    MeanAll(Var),
    /// Row sums, producing an `n x 1` column vector.
    RowSum(Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A single-use computation graph. Build one per forward pass, call
/// [`Tape::backward`] once, then drop it.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by a tape op");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a constant (non-trainable) leaf.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Input)
    }

    /// Registers a trainable parameter from `store` as a leaf.
    pub fn param(&mut self, store: &VarStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::MulElem(a, b))
    }

    /// Adds a `1 x c` row vector to every row of an `n x c` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[row.0].value);
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies each row of an `n x c` matrix by the matching entry of an
    /// `n x 1` column vector.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .mul_col_broadcast(&self.nodes[col.0].value);
        self.push(v, Op::MulColBroadcast(a, col))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Addition of a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.add_scalar(s);
        self.push(v, Op::AddScalar(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(v, Op::LeakyRelu(a, alpha))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(stable_sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::exp);
        self.push(v, Op::Exp(a))
    }

    /// Elementwise `ln(max(x, 1e-12))` (guarded natural log).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(EPS).ln());
        self.push(v, Op::Ln(a))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::abs);
        self.push(v, Op::Abs(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Elementwise square root (input must be non-negative).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::sqrt);
        self.push(v, Op::Sqrt(a))
    }

    /// Elementwise `1 / max(x, 1e-12)` (guarded reciprocal).
    pub fn recip(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / x.max(EPS));
        self.push(v, Op::Recip(a))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -&self.nodes[a.0].value;
        self.push(v, Op::Neg(a))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Sum of all entries as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all entries as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        self.push(v, Op::MeanAll(a))
    }

    /// Row sums as an `n x 1` column vector.
    pub fn row_sum(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.row_sums();
        self.push(v, Op::RowSum(a))
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.softmax_rows();
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Numerically stable row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.log_softmax_rows();
        self.push(v, Op::LogSoftmaxRows(a))
    }

    // ---- composite convenience ops -------------------------------------

    /// Mean squared error between two same-shape matrices, as `1 x 1`.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.square(d);
        self.mean_all(sq)
    }

    /// Per-row squared Euclidean norms: `n x 1`.
    pub fn row_sq_norm(&mut self, a: Var) -> Var {
        let sq = self.square(a);
        self.row_sum(sq)
    }

    /// `a + b * s` — fused scale-and-add used when composing loss terms.
    pub fn add_scaled(&mut self, a: Var, b: Var, s: f64) -> Var {
        let sb = self.scale(b, s);
        self.add(a, sb)
    }

    /// Reverse-mode sweep from `loss` (must be `1 x 1`), flushing parameter
    /// gradients into `store`.
    ///
    /// Gradients **accumulate** in the store; call [`VarStore::zero_grads`]
    /// between optimizer steps.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` matrix.
    pub fn backward(&self, loss: Var, store: &mut VarStore) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be a 1x1 matrix"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::ones(1, 1));

        for i in (0..self.nodes.len()).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            match self.nodes[i].op {
                Op::Input => {}
                Op::Param(id) => store.accumulate_grad(id, &g),
                Op::MatMul(a, b) => {
                    let da = g.matmul_nt(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.matmul_tn(&g);
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, -&g);
                }
                Op::MulElem(a, b) => {
                    let da = g.hadamard(&self.nodes[b.0].value);
                    let db = g.hadamard(&self.nodes[a.0].value);
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::AddRowBroadcast(a, row) => {
                    accumulate(&mut grads, row.0, g.col_sums());
                    accumulate(&mut grads, a.0, g);
                }
                Op::MulColBroadcast(a, col) => {
                    let da = g.mul_col_broadcast(&self.nodes[col.0].value);
                    let dcol = g.hadamard(&self.nodes[a.0].value).row_sums();
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, col.0, dcol);
                }
                Op::Scale(a, s) => accumulate(&mut grads, a.0, g.scale(s)),
                Op::AddScalar(a) => accumulate(&mut grads, a.0, g),
                Op::Relu(a) => {
                    let mask = self.nodes[a.0]
                        .value
                        .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, a.0, g.hadamard(&mask));
                }
                Op::LeakyRelu(a, alpha) => {
                    let mask = self.nodes[a.0]
                        .value
                        .map(|x| if x > 0.0 { 1.0 } else { alpha });
                    accumulate(&mut grads, a.0, g.hadamard(&mask));
                }
                Op::Sigmoid(a) => {
                    let dy = self.nodes[i].value.map(|y| y * (1.0 - y));
                    accumulate(&mut grads, a.0, g.hadamard(&dy));
                }
                Op::Tanh(a) => {
                    let dy = self.nodes[i].value.map(|y| 1.0 - y * y);
                    accumulate(&mut grads, a.0, g.hadamard(&dy));
                }
                Op::Exp(a) => {
                    accumulate(&mut grads, a.0, g.hadamard(&self.nodes[i].value));
                }
                Op::Ln(a) => {
                    let dx = self.nodes[a.0].value.map(|x| 1.0 / x.max(EPS));
                    accumulate(&mut grads, a.0, g.hadamard(&dx));
                }
                Op::Abs(a) => {
                    let sign = self.nodes[a.0].value.map(|x| {
                        if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut grads, a.0, g.hadamard(&sign));
                }
                Op::Square(a) => {
                    let dx = self.nodes[a.0].value.scale(2.0);
                    accumulate(&mut grads, a.0, g.hadamard(&dx));
                }
                Op::Sqrt(a) => {
                    let dy = self.nodes[i].value.map(|y| 0.5 / y.max(EPS));
                    accumulate(&mut grads, a.0, g.hadamard(&dy));
                }
                Op::Recip(a) => {
                    // d(1/x)/dx = -1/x^2 = -y^2 on the guarded domain.
                    let dy = self.nodes[i].value.map(|y| -y * y);
                    accumulate(&mut grads, a.0, g.hadamard(&dy));
                }
                Op::Neg(a) => accumulate(&mut grads, a.0, -&g),
                Op::Transpose(a) => accumulate(&mut grads, a.0, g.transpose()),
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    accumulate(&mut grads, a.0, Matrix::full(r, c, g[(0, 0)]));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let n = (r * c) as f64;
                    accumulate(&mut grads, a.0, Matrix::full(r, c, g[(0, 0)] / n));
                }
                Op::RowSum(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    accumulate(&mut grads, a.0, Matrix::ones(r, c).mul_col_broadcast(&g));
                }
                Op::SoftmaxRows(a) => {
                    // dx = y ⊙ (g − rowsum(g ⊙ y)).
                    let y = &self.nodes[i].value;
                    let gy = g.hadamard(y);
                    let dot = gy.row_sums();
                    let centered = &g - &Matrix::ones(g.rows(), g.cols()).mul_col_broadcast(&dot);
                    accumulate(&mut grads, a.0, centered.hadamard(y));
                }
                Op::LogSoftmaxRows(a) => {
                    // dx = g − softmax(x) ⊙ rowsum(g) broadcast.
                    let soft = self.nodes[a.0].value.softmax_rows();
                    let rs = g.row_sums();
                    let dx = &g - &soft.mul_col_broadcast(&rs);
                    accumulate(&mut grads, a.0, dx);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, delta: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.add_scaled_inplace(&delta, 1.0),
        slot @ None => *slot = Some(delta),
    }
}

/// Overflow-safe logistic sigmoid.
fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(values: &[Matrix]) -> (VarStore, Vec<ParamId>) {
        let mut vs = VarStore::new();
        let ids = values.iter().map(|m| vs.add(m.clone())).collect();
        (vs, ids)
    }

    #[test]
    fn forward_values_compose() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.input(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c)[(0, 0)], 11.0);
        let d = t.scale(c, 2.0);
        let e = t.add_scalar(d, 1.0);
        assert_eq!(t.value(e)[(0, 0)], 23.0);
    }

    #[test]
    fn backward_linear_chain() {
        // loss = mean((x*w - y)^2); check dL/dw analytically.
        let (mut vs, ids) = store_with(&[Matrix::from_vec(1, 1, vec![3.0])]);
        let mut t = Tape::new();
        let x = t.input(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let y = t.input(Matrix::from_vec(2, 1, vec![2.0, 4.5]));
        let w = t.param(&vs, ids[0]);
        let pred = t.matmul(x, w);
        let loss = t.mse(pred, y);
        // residuals: (3-2)=1, (6-4.5)=1.5 -> loss = (1 + 2.25)/2
        assert!((t.value(loss)[(0, 0)] - 1.625).abs() < 1e-12);
        t.backward(loss, &mut vs);
        // dL/dw = mean over i of 2*(x_i*w - y_i)*x_i = (2*1*1 + 2*1.5*2)/2 = 4
        assert!((vs.grad(ids[0])[(0, 0)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn backward_accumulates_for_shared_nodes() {
        // loss = sum(w + w) -> dL/dw = 2 per element.
        let (mut vs, ids) = store_with(&[Matrix::from_vec(1, 2, vec![1.0, -1.0])]);
        let mut t = Tape::new();
        let w = t.param(&vs, ids[0]);
        let s = t.add(w, w);
        let loss = t.sum_all(s);
        t.backward(loss, &mut vs);
        assert_eq!(vs.grad(ids[0]).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1")]
    fn backward_rejects_non_scalar_loss() {
        let mut vs = VarStore::new();
        let mut t = Tape::new();
        let a = t.input(Matrix::zeros(2, 2));
        t.backward(a, &mut vs);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_vec(1, 2, vec![1000.0, -1000.0]));
        let s = t.sigmoid(a);
        assert_eq!(t.value(s)[(0, 0)], 1.0);
        assert_eq!(t.value(s)[(0, 1)], 0.0);
    }

    #[test]
    fn softmax_rows_forward_matches_linalg() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, -1.0, 0.5, 0.25]);
        let mut t = Tape::new();
        let a = t.input(m.clone());
        let s = t.softmax_rows(a);
        assert_eq!(t.value(s), &m.softmax_rows());
    }

    #[test]
    fn weighted_ce_against_hand_computed() {
        // A 2-instance, 2-class weighted CE:
        //   L = (1/2) Σ_i w_i Σ_j −y_ij log p_ij
        let logits = Matrix::from_vec(2, 2, vec![0.0, 0.0, 2.0, 0.0]);
        let targets = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let weights = Matrix::col_vector(&[1.0, 2.0]);
        let mut t = Tape::new();
        let z = t.input(logits);
        let y = t.input(targets);
        let wv = t.input(weights);
        let logp = t.log_softmax_rows(z);
        let prod = t.mul(y, logp);
        let per_row = t.row_sum(prod);
        let weighted = t.mul(per_row, wv);
        let sum = t.sum_all(weighted);
        let loss = t.scale(sum, -0.5);
        // row0: log p = log 0.5 -> contributes -log 0.5 * 1
        // row1: p_1 = e^0/(e^2+e^0); -log p_1 = log(1+e^2) * 2
        let expected = 0.5 * (-(0.5f64.ln()) + 2.0 * (1.0 + 2.0f64.exp()).ln());
        assert!((t.value(loss)[(0, 0)] - expected).abs() < 1e-10);
    }
}
