//! Property tests: analytic gradients of randomly composed graphs must agree
//! with central finite differences.

use proptest::prelude::*;
use targad_autograd::check::gradient_check;
use targad_autograd::{Tape, Var, VarStore};
use targad_linalg::{rng, Matrix};

/// The unary ops we compose randomly. `Ln`, `Sqrt`, and `Recip` are applied
/// after a softening transform that keeps inputs strictly positive and away
/// from the finite-difference kink at the guard epsilon.
#[derive(Clone, Copy, Debug)]
enum Unary {
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Exp,
    Square,
    Neg,
    Abs,
    SoftplusLn,
    SqrtOfSquarePlusOne,
    RecipOfExp,
}

fn apply(t: &mut Tape, op: Unary, v: Var) -> Var {
    match op {
        Unary::Relu => t.relu(v),
        Unary::LeakyRelu => t.leaky_relu(v, 0.1),
        Unary::Sigmoid => t.sigmoid(v),
        Unary::Tanh => t.tanh(v),
        Unary::Exp => {
            // keep magnitudes bounded before exponentiation
            let s = t.tanh(v);
            t.exp(s)
        }
        Unary::Square => t.square(v),
        Unary::Neg => t.neg(v),
        Unary::Abs => t.abs(v),
        Unary::SoftplusLn => {
            // ln(1 + e^x): positive domain for the guarded ln
            let s = t.tanh(v);
            let e = t.exp(s);
            let p = t.add_scalar(e, 1.0);
            t.ln(p)
        }
        Unary::SqrtOfSquarePlusOne => {
            let sq = t.square(v);
            let p = t.add_scalar(sq, 1.0);
            t.sqrt(p)
        }
        Unary::RecipOfExp => {
            let s = t.tanh(v);
            let e = t.exp(s);
            t.recip(e)
        }
    }
}

fn unary_strategy() -> impl Strategy<Value = Unary> {
    prop_oneof![
        Just(Unary::Relu),
        Just(Unary::LeakyRelu),
        Just(Unary::Sigmoid),
        Just(Unary::Tanh),
        Just(Unary::Exp),
        Just(Unary::Square),
        Just(Unary::Neg),
        Just(Unary::Abs),
        Just(Unary::SoftplusLn),
        Just(Unary::SqrtOfSquarePlusOne),
        Just(Unary::RecipOfExp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-layer nets with random activation chains gradient-check.
    #[test]
    fn random_activation_chains_gradcheck(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(unary_strategy(), 1..4),
        rows in 2usize..5,
        hidden in 2usize..5,
    ) {
        let mut r = rng::seeded(seed);
        let cols = 3;
        let mut vs = VarStore::new();
        let w1 = vs.add(rng::normal_matrix(&mut r, cols, hidden, 0.0, 0.4));
        let b1 = vs.add(rng::normal_matrix(&mut r, 1, hidden, 0.0, 0.1));
        let w2 = vs.add(rng::normal_matrix(&mut r, hidden, 2, 0.0, 0.4));
        let x = rng::normal_matrix(&mut r, rows, cols, 0.0, 1.0);

        let report = gradient_check(&mut vs, |t, vs| {
            let xv = t.input(x.clone());
            let w1v = t.param(vs, w1);
            let b1v = t.param(vs, b1);
            let w2v = t.param(vs, w2);
            let mut h = t.matmul(xv, w1v);
            h = t.add_row_broadcast(h, b1v);
            for &op in &ops {
                h = apply(t, op, h);
            }
            let z = t.matmul(h, w2v);
            let sq = t.square(z);
            t.mean_all(sq)
        }, 1e-5);
        // Relu/Abs kinks can inflate the error if an activation sits within
        // eps of zero; tolerate rare moderate deviations but catch real bugs.
        prop_assert!(report.max_rel_err < 1e-3, "report {report:?} ops {ops:?}");
    }

    /// Softmax/log-softmax losses gradient-check.
    #[test]
    fn softmax_losses_gradcheck(seed in 0u64..1_000_000, rows in 2usize..6, classes in 2usize..5) {
        let mut r = rng::seeded(seed);
        let mut vs = VarStore::new();
        let w = vs.add(rng::normal_matrix(&mut r, 3, classes, 0.0, 0.5));
        let x = rng::normal_matrix(&mut r, rows, 3, 0.0, 1.0);
        // random soft targets normalized per row (covers TargAD pseudo-labels)
        let mut y = rng::uniform_matrix(&mut r, rows, classes, 0.05, 1.0);
        for i in 0..rows {
            let s: f64 = y.row(i).iter().sum();
            for v in y.row_mut(i) { *v /= s; }
        }

        let report = gradient_check(&mut vs, |t, vs| {
            let xv = t.input(x.clone());
            let yv = t.input(y.clone());
            let wv = t.param(vs, w);
            let z = t.matmul(xv, wv);
            let lp = t.log_softmax_rows(z);
            let ce = t.mul(yv, lp);
            let ce_sum = t.sum_all(ce);
            let ce_loss = t.scale(ce_sum, -1.0 / rows as f64);
            // plus an entropy regularizer (Eq. 7 shape): Σ p log p
            let p = t.softmax_rows(z);
            let lp2 = t.log_softmax_rows(z);
            let ent = t.mul(p, lp2);
            let ent_mean = t.mean_all(ent);
            t.add_scaled(ce_loss, ent_mean, 0.5)
        }, 1e-5);
        prop_assert!(report.max_rel_err < 1e-5, "report {report:?}");
    }

    /// Matrix calculus identities: gradient of sum(A*B) w.r.t. A is B^T-ish.
    #[test]
    fn matmul_gradient_identity(seed in 0u64..1_000_000) {
        let mut r = rng::seeded(seed);
        let mut vs = VarStore::new();
        let a = vs.add(rng::normal_matrix(&mut r, 3, 4, 0.0, 1.0));
        let b = rng::normal_matrix(&mut r, 4, 2, 0.0, 1.0);

        let mut tape = Tape::new();
        let av = tape.param(&vs, a);
        let bv = tape.input(b.clone());
        let prod = tape.matmul(av, bv);
        let loss = tape.sum_all(prod);
        tape.backward(loss, &mut vs);

        // d/dA sum(AB) = ones(3,2) * B^T => each entry (i,k) = Σ_j B[k,j]
        let expected = Matrix::ones(3, 2).matmul_nt(&b);
        let got = vs.grad(a);
        for i in 0..3 {
            for k in 0..4 {
                prop_assert!((got[(i, k)] - expected[(i, k)]).abs() < 1e-9);
            }
        }
    }
}
