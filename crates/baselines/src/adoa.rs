//! ADOA (Zhang et al., WWW 2018) — anomaly detection with partially
//! observed anomalies.
//!
//! The observed (labeled) anomalies are clustered; each unlabeled instance
//! receives a combined score `θ(x) = λ·iso(x) + (1−λ)·sim(x)` from an
//! isolation score and its similarity to the nearest anomaly-cluster
//! center. High-θ instances become *reliable anomalies*, low-θ instances
//! *reliable normals*, each carrying a confidence weight, and a weighted
//! binary classifier is trained on them.
//!
//! Simplification vs the original: the final model is a weighted-BCE MLP
//! rather than a tree ensemble.

use targad_autograd::VarStore;
use targad_cluster::{KMeans, KMeansConfig};
use targad_linalg::{rng as lrng, stable_sigmoid, stats, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::{observe_epoch, sq_dist};
use crate::iforest::IForest;
use crate::{Detector, TargAdError, TrainView};

/// ADOA with the defaults used in the reproduction.
pub struct Adoa {
    /// Number of anomaly clusters.
    pub anomaly_clusters: usize,
    /// Mixing factor λ between isolation and similarity scores.
    pub lambda: f64,
    /// Fraction of unlabeled data taken as reliable anomalies.
    pub anomaly_frac: f64,
    /// Fraction taken as reliable normals.
    pub normal_frac: f64,
    /// Classifier epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batch size.
    pub batch: usize,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    clf: Mlp,
}

impl Default for Adoa {
    fn default() -> Self {
        Self {
            anomaly_clusters: 3,
            lambda: 0.5,
            anomaly_frac: 0.05,
            normal_frac: 0.40,
            epochs: 60,
            lr: 2e-3,
            batch: 64,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl Adoa {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("ADOA: score before fit");
        let logits = f.clf.eval(&f.store, x);
        (0..logits.rows())
            .map(|r| stable_sigmoid(logits[(r, 0)]))
            .collect()
    }
}

impl Detector for Adoa {
    fn name(&self) -> &'static str {
        "ADOA"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let mut rng = lrng::seeded(seed);

        // Isolation scores over the unlabeled pool.
        let mut forest = IForest::default();
        forest.fit(train, seed ^ 0xAD0A)?;
        let iso = normalize(&forest.score(xu));

        // Cluster the observed anomalies; similarity = Gaussian kernel on
        // the distance to the nearest anomaly centroid.
        let sim = if xl.rows() > 0 {
            let k = self.anomaly_clusters.min(xl.rows());
            let km = KMeans::fit(xl, KMeansConfig::new(k), seed ^ 0x51D);
            let dists: Vec<f64> = (0..xu.rows())
                .map(|i| {
                    (0..km.k())
                        .map(|c| sq_dist(xu.row(i), km.centroids().row(c)))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let bandwidth = stats::mean(&dists).max(1e-9);
            dists.iter().map(|&d| (-d / bandwidth).exp()).collect()
        } else {
            vec![0.0; xu.rows()]
        };

        // Combined score θ and reliable-set selection.
        let theta: Vec<f64> = iso
            .iter()
            .zip(&sim)
            .map(|(&i, &s)| self.lambda * i + (1.0 - self.lambda) * s)
            .collect();
        let n_anom =
            ((xu.rows() as f64 * self.anomaly_frac).round() as usize).clamp(1, xu.rows() / 2);
        let n_norm =
            ((xu.rows() as f64 * self.normal_frac).round() as usize).clamp(1, xu.rows() / 2);
        let mut order: Vec<usize> = (0..xu.rows()).collect();
        order.sort_by(|&a, &b| theta[b].partial_cmp(&theta[a]).expect("NaN θ"));
        let reliable_anoms = &order[..n_anom];
        let reliable_norms = &order[order.len() - n_norm..];

        // Weighted training set: labeled anomalies (weight 1), reliable
        // anomalies (weight θ), reliable normals (weight 1 − θ).
        let mut features = xl.clone();
        let mut labels = vec![1.0; xl.rows()];
        let mut weights = vec![1.0; xl.rows()];
        if xl.rows() == 0 {
            features = Matrix::zeros(0, xu.cols());
        }
        for &i in reliable_anoms {
            features = features.vstack(&xu.take_rows(&[i]));
            labels.push(1.0);
            weights.push(theta[i]);
        }
        for &i in reliable_norms {
            features = features.vstack(&xu.take_rows(&[i]));
            labels.push(0.0);
            weights.push(1.0 - theta[i]);
        }

        // Weighted-BCE MLP.
        let mut store = VarStore::new();
        let clf = Mlp::new(
            &mut store,
            &mut rng,
            &[train.dims(), 64, 1],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);
        let y = Matrix::col_vector(&labels);
        let w = Matrix::col_vector(&weights);
        let rt = self.runtime;
        let mut step = ShardedStep::new();
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in shuffled_batches(&mut rng, features.rows(), self.batch) {
                store.zero_grads();
                let n = batch.len();
                let clf = &clf;
                let (features, y, w) = (&features, &y, &w);
                let loss = step.accumulate(&rt, &mut store, n, |tape, store, range| {
                    let rows = &batch[range];
                    let xb = tape.input_rows_from(features, rows);
                    let yb = tape.input_rows_from(y, rows);
                    let wb = tape.input_rows_from(w, rows);
                    let logit = clf.forward(tape, store, xb);
                    let p = tape.sigmoid(logit);
                    // weighted BCE: −w·(y ln p + (1−y) ln(1−p))
                    let lp = tape.ln(p);
                    let term1 = tape.mul(yb, lp);
                    let one_minus_p = tape.neg(p);
                    let one_minus_p = tape.add_scalar(one_minus_p, 1.0);
                    let lq = tape.ln(one_minus_p);
                    let one_minus_y = tape.neg(yb);
                    let one_minus_y = tape.add_scalar(one_minus_y, 1.0);
                    let term2 = tape.mul(one_minus_y, lq);
                    let sum_terms = tape.add(term1, term2);
                    let weighted = tape.mul(sum_terms, wb);
                    let total = tape.sum_div(weighted, n as f64);
                    tape.scale(total, -1.0)
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
            }
            observe_epoch("adoa", epoch, epoch_loss / batches.max(1) as f64);
        }

        self.fitted = Some(Fitted { store, clf });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("ADOA: score before fit");
        self.engine.with(|e| {
            e.score(&[(&f.clf, &f.store)], x, &self.runtime, |_, row| {
                stable_sigmoid(row[0])
            })
        })
    }
}

fn normalize(v: &[f64]) -> Vec<f64> {
    let lo = stats::min(v);
    let hi = stats::max(v);
    v.iter().map(|&x| stats::min_max_scale(x, lo, hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn detects_anomalies_with_partial_labels() {
        let bundle = GeneratorSpec::quick_demo().generate(51);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Adoa::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        // The anomaly-cluster similarity term biases ADOA toward the
        // labeled (target) anomaly pattern; target ranking is the strong
        // signal, all-anomaly ranking is weaker.
        let troc = auroc(&scores, &bundle.test.target_labels());
        assert!(troc > 0.7, "target AUROC {troc}");
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.5, "anomaly AUROC {roc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let bundle = GeneratorSpec::quick_demo().generate(52);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Adoa {
            epochs: 5,
            ..Adoa::default()
        };
        model.fit(&view, 2).unwrap();
        assert!(model
            .score(&bundle.test.features)
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn works_without_labeled_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(53);
        let mut train = bundle.train.clone();
        train.labeled.iter_mut().for_each(|l| *l = false);
        let view = TrainView::from_dataset(&train);
        assert_eq!(view.labeled.rows(), 0);
        let mut model = Adoa {
            epochs: 5,
            ..Adoa::default()
        };
        model.fit(&view, 3).unwrap();
        let scores = model.score(&bundle.test.features);
        assert_eq!(scores.len(), bundle.test.len());
    }
}
