//! Shared helpers for the baseline implementations.

use rand::rngs::StdRng;
use rand::RngExt;
use targad_linalg::{rng as lrng, Matrix};

/// Reports one training-epoch loss for a baseline to the telemetry hub.
///
/// Always bumps the `train.epochs` counter; when telemetry is enabled and
/// a JSONL sink is installed (see [`targad_obs::hub`]), also emits a
/// `model_epoch` event line. A no-op otherwise — baselines stay
/// observer-free and pay nothing when telemetry is off.
pub fn observe_epoch(model: &'static str, epoch: usize, loss: f64) {
    targad_obs::hub::training_epoch(model, epoch, loss);
}

/// Squared Euclidean distance between two feature rows.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Mean row of a matrix (`1 x D`).
///
/// # Panics
/// Panics on an empty matrix.
pub fn mean_row(x: &Matrix) -> Vec<f64> {
    assert!(x.rows() > 0, "mean_row: empty matrix");
    let mut mean = vec![0.0; x.cols()];
    for row in x.iter_rows() {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    let inv = 1.0 / x.rows() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    mean
}

/// LeSiNN-style outlierness: the average distance to the nearest neighbour
/// within each of `ensembles` random subsamples of size `psi`. Cheap,
/// parameter-light, and good enough to seed candidate sets (used by REPEN
/// and ADOA's filtering stage).
pub fn lesinn_scores(
    x: &Matrix,
    reference: &Matrix,
    ensembles: usize,
    psi: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let n_ref = reference.rows();
    let psi = psi.min(n_ref).max(1);
    let mut scores = vec![0.0; x.rows()];
    for _ in 0..ensembles {
        let sample = lrng::sample_indices(rng, n_ref, psi);
        for (i, score) in scores.iter_mut().enumerate() {
            let row = x.row(i);
            let nn = sample
                .iter()
                .map(|&j| sq_dist(row, reference.row(j)))
                .fold(f64::INFINITY, f64::min);
            *score += nn.sqrt();
        }
    }
    for s in &mut scores {
        *s /= ensembles as f64;
    }
    scores
}

/// Indices of the `count` smallest values (ascending by value).
pub fn smallest_indices(values: &[f64], count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN in ranking"));
    idx.truncate(count.min(values.len()));
    idx
}

/// Indices of the `count` largest values (descending by value).
pub fn largest_indices(values: &[f64], count: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("NaN in ranking"));
    idx.truncate(count.min(values.len()));
    idx
}

/// Draws `count` random rows (with replacement) as a new matrix.
pub fn sample_rows_with_replacement(x: &Matrix, count: usize, rng: &mut StdRng) -> Matrix {
    let idx: Vec<usize> = (0..count).map(|_| rng.random_range(0..x.rows())).collect();
    x.take_rows(&idx)
}

/// Standard-normal noise matrix (GAN latent input).
pub fn latent_noise(rows: usize, dims: usize, rng: &mut StdRng) -> Matrix {
    lrng::normal_matrix(rng, rows, dims, 0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn mean_row_is_columnwise() {
        let x = Matrix::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(mean_row(&x), vec![2.0, 4.0]);
    }

    #[test]
    fn lesinn_ranks_outliers_above_inliers() {
        let mut rng = lrng::seeded(1);
        let mut rows = vec![];
        for i in 0..50 {
            rows.push(vec![0.5 + 0.01 * (i as f64 % 5.0), 0.5]);
        }
        rows.push(vec![0.95, 0.05]); // clear outlier
        let x = Matrix::from_rows(&rows);
        let scores = lesinn_scores(&x, &x, 10, 8, &mut rng);
        let outlier = scores[50];
        let max_inlier = scores[..50]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(outlier > max_inlier);
    }

    #[test]
    fn index_rankers() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(smallest_indices(&v, 2), vec![1, 2]);
        assert_eq!(largest_indices(&v, 2), vec![0, 2]);
        assert_eq!(smallest_indices(&v, 10).len(), 3);
    }
}
