//! DeepSAD (Ruff et al., ICLR 2020) — deep semi-supervised one-class
//! classification.
//!
//! An encoder is pretrained as part of an autoencoder, the hypersphere
//! center `c` is fixed to the mean embedding of the unlabeled data, and the
//! encoder is fine-tuned to pull unlabeled points toward `c` while pushing
//! labeled anomalies away via the inverse-distance penalty
//! `(‖z − c‖²)⁻¹`. The anomaly score is `‖z − c‖²`.
//!
//! Simplification vs the original: pretraining epochs are merged into the
//! same budget and no weight-decay schedule is used.

use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Adam, AutoEncoder, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::{mean_row, observe_epoch};
use crate::{Detector, TargAdError, TrainView};

/// DeepSAD with the defaults used in the reproduction.
pub struct DeepSad {
    /// Autoencoder pretraining epochs.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight `η` on the labeled-anomaly inverse-distance term.
    pub eta: f64,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    encoder: Mlp,
    center: Vec<f64>,
}

impl Default for DeepSad {
    fn default() -> Self {
        Self {
            pretrain_epochs: 10,
            epochs: 20,
            lr: 1e-3,
            batch: 128,
            eta: 1.0,
            embed_dim: 16,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl DeepSad {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    fn sq_dists_to_center(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DeepSAD: score before fit");
        let center = &f.center;
        self.engine.with(|e| {
            e.score(&[(&f.encoder, &f.store)], x, &self.runtime, |_, z| {
                z.iter().zip(center).map(|(&a, &b)| (a - b) * (a - b)).sum()
            })
        })
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DeepSAD: score before fit");
        let z = f.encoder.eval(&f.store, x);
        (0..z.rows()).map(|r| z.row_sq_dist(r, &f.center)).collect()
    }
}

impl Detector for DeepSad {
    fn name(&self) -> &'static str {
        "DeepSAD"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_traced(train, seed, &Matrix::zeros(0, train.dims()), &mut |_, _| {})
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        self.sq_dists_to_center(x)
    }

    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let mut rng = lrng::seeded(seed);
        let mut store = VarStore::new();
        let d = train.dims();
        let hidden = (d / 2).max(self.embed_dim).max(2);
        let dims = [d, hidden, self.embed_dim.min(hidden)];
        let ae = AutoEncoder::new(&mut store, &mut rng, &dims);
        let mut opt = Adam::new(self.lr);

        // Stage 1: reconstruction pretraining, sharded deterministically
        // across the runtime's workers.
        let rt = self.runtime;
        let mut step = ShardedStep::new();
        for _ in 0..self.pretrain_epochs {
            for batch in shuffled_batches(&mut rng, xu.rows(), self.batch) {
                store.zero_grads();
                let n = batch.len();
                step.accumulate(&rt, &mut store, n, |tape, store, range| {
                    let xb = tape.input_rows_from(xu, &batch[range]);
                    let err = ae.recon_error_rows(tape, store, xb);
                    tape.sum_div(err, n as f64)
                });
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
            }
        }

        // Fix the center from the pretrained embeddings.
        let center = mean_row(&ae.encoder().eval(&store, xu));
        let center_row = Matrix::row_vector(&center);
        let encoder = ae.encoder().clone();

        // Stage 2: one-class fine-tuning with labeled anomalies.
        let mut opt2 = Adam::new(self.lr);
        let neg_center = -&center_row;
        let use_push = xl.rows() > 0 && self.eta > 0.0;
        let eta = self.eta;
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in shuffled_batches(&mut rng, xu.rows(), self.batch) {
                store.zero_grads();
                let n = batch.len();
                let encoder = &encoder;
                let neg_center = &neg_center;
                let loss = step.accumulate(&rt, &mut store, n, |tape, store, range| {
                    let neg_c = tape.input_from(neg_center);
                    let xb = tape.input_rows_from(xu, &batch[range.clone()]);
                    let z = encoder.forward(tape, store, xb);
                    let centered = tape.add_row_broadcast(z, neg_c);
                    let dist = tape.row_sq_norm(centered);
                    let pull = tape.sum_div(dist, n as f64);
                    // Whole-set push-away term: built once, on shard 0.
                    if use_push && range.start == 0 {
                        let xlv = tape.input_from(xl);
                        let zl = encoder.forward(tape, store, xlv);
                        let cl = tape.add_row_broadcast(zl, neg_c);
                        let dl = tape.row_sq_norm(cl);
                        let inv = tape.recip(dl);
                        let push = tape.mean_all(inv);
                        tape.add_scaled(pull, push, eta)
                    } else {
                        pull
                    }
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut store, 5.0);
                opt2.step(&mut store);
            }
            observe_epoch("deepsad", epoch, epoch_loss / batches.max(1) as f64);
            if probe.rows() > 0 {
                let snapshot = Fitted {
                    store: store.clone(),
                    encoder: encoder.clone(),
                    center: center.clone(),
                };
                let prev = self.fitted.replace(snapshot);
                trace(epoch, self.sq_dists_to_center(probe));
                if epoch + 1 < self.epochs {
                    self.fitted = prev;
                }
            }
        }

        self.fitted = Some(Fitted {
            store,
            encoder,
            center,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn separates_anomalies_from_normals() {
        let bundle = GeneratorSpec::quick_demo().generate(17);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DeepSad::default();
        model.fit(&view, 3).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.8, "anomaly AUROC {roc}");
    }

    #[test]
    fn labeled_anomalies_score_high() {
        let bundle = GeneratorSpec::quick_demo().generate(18);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DeepSad::default();
        model.fit(&view, 4).unwrap();
        let anomaly_scores = model.score(&view.labeled);
        let normal_scores = model.score(&view.unlabeled);
        let mean_a = anomaly_scores.iter().sum::<f64>() / anomaly_scores.len() as f64;
        let mean_u = normal_scores.iter().sum::<f64>() / normal_scores.len() as f64;
        assert!(mean_a > mean_u, "labeled {mean_a} vs unlabeled {mean_u}");
    }

    #[test]
    fn traced_fit_reports_each_epoch() {
        let bundle = GeneratorSpec::quick_demo().generate(19);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DeepSad {
            epochs: 5,
            pretrain_epochs: 2,
            ..DeepSad::default()
        };
        let mut epochs_seen = Vec::new();
        model
            .fit_traced(&view, 5, &bundle.test.features, &mut |e, scores| {
                assert_eq!(scores.len(), bundle.test.len());
                epochs_seen.push(e);
            })
            .unwrap();
        assert_eq!(epochs_seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "score before fit")]
    fn scoring_unfitted_panics() {
        let model = DeepSad::default();
        let _ = model.score(&Matrix::ones(1, 4));
    }
}
