//! DevNet (Pang, Shen & van den Hengel, KDD 2019) — end-to-end deviation
//! learning of anomaly scores.
//!
//! A scoring network `φ(x)` is trained so that unlabeled data matches a
//! Gaussian score prior while labeled anomalies deviate by at least `a`
//! standard deviations:
//!
//! ```text
//! dev(x) = (φ(x) − μ_R) / σ_R          (μ_R, σ_R from 5000 N(0,1) draws)
//! L = (1 − y)·|dev(x)| + y·max(0, a − dev(x))
//! ```
//!
//! with `a = 5`, exactly as in the original.

use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, stats, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::{Detector, TargAdError, TrainView};

/// DevNet with the original hyper-parameters.
pub struct DevNet {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batch size (split half unlabeled / half labeled-oversampled).
    pub batch: usize,
    /// Deviation margin `a`.
    pub margin: f64,
    /// Hidden layer sizes of the scorer.
    pub hidden: Vec<usize>,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    scorer: Mlp,
    mu: f64,
    sigma: f64,
}

impl Default for DevNet {
    fn default() -> Self {
        Self {
            epochs: 25,
            lr: 1e-3,
            batch: 128,
            margin: 5.0,
            hidden: vec![64, 32],
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl DevNet {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    fn deviations(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DevNet: score before fit");
        let (mu, sigma) = (f.mu, f.sigma);
        self.engine.with(|e| {
            e.score(&[(&f.scorer, &f.store)], x, &self.runtime, move |_, row| {
                (row[0] - mu) / sigma
            })
        })
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DevNet: score before fit");
        let phi = f.scorer.eval(&f.store, x);
        (0..phi.rows())
            .map(|r| (phi[(r, 0)] - f.mu) / f.sigma)
            .collect()
    }
}

impl Detector for DevNet {
    fn name(&self) -> &'static str {
        "DevNet"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_traced(train, seed, &Matrix::zeros(0, train.dims()), &mut |_, _| {})
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        self.deviations(x)
    }

    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        let mut rng = lrng::seeded(seed);

        // Gaussian reference scores.
        let draws: Vec<f64> = (0..5000).map(|_| lrng::standard_normal(&mut rng)).collect();
        let mu = stats::mean(&draws);
        let sigma = stats::std_dev(&draws).max(1e-6);

        let mut store = VarStore::new();
        let mut dims = vec![train.dims()];
        dims.extend_from_slice(&self.hidden);
        dims.push(1);
        let scorer = Mlp::new(
            &mut store,
            &mut rng,
            &dims,
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);

        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let half = (self.batch / 2).max(1);

        let rt = self.runtime;
        let margin = self.margin;
        let mut step = ShardedStep::new();
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for u_batch in shuffled_batches(&mut rng, xu.rows(), half) {
                store.zero_grads();
                let n = u_batch.len();
                // Oversampled labeled indices are drawn before dispatch so
                // the RNG stream never depends on shard execution order.
                let idx: Vec<usize> = if xl.rows() > 0 {
                    (0..half).map(|_| rng.random_range(0..xl.rows())).collect()
                } else {
                    Vec::new()
                };
                let scorer = &scorer;
                let loss = step.accumulate(&rt, &mut store, n, |tape, store, range| {
                    // Unlabeled term: |dev| → 0.
                    let xb = tape.input_rows_from(xu, &u_batch[range.clone()]);
                    let phi_u = scorer.forward(tape, store, xb);
                    let dev_u = tape.add_scalar(phi_u, -mu);
                    let dev_u = tape.scale(dev_u, 1.0 / sigma);
                    let abs_u = tape.abs(dev_u);
                    let term_u = tape.sum_div(abs_u, n as f64);

                    // Labeled term: hinge pushing dev ≥ margin (labeled
                    // anomalies oversampled to half the batch). Built once,
                    // on shard 0.
                    if !idx.is_empty() && range.start == 0 {
                        let xa = tape.input_rows_from(xl, &idx);
                        let phi_a = scorer.forward(tape, store, xa);
                        let dev_a = tape.add_scalar(phi_a, -mu);
                        let dev_a = tape.scale(dev_a, -1.0 / sigma);
                        let hinge = tape.add_scalar(dev_a, margin);
                        let hinge = tape.relu(hinge);
                        let term_a = tape.mean_all(hinge);
                        tape.add(term_u, term_a)
                    } else {
                        term_u
                    }
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
            }
            crate::common::observe_epoch("devnet", epoch, epoch_loss / batches.max(1) as f64);
            if probe.rows() > 0 {
                let snapshot = Fitted {
                    store: store.clone(),
                    scorer: scorer.clone(),
                    mu,
                    sigma,
                };
                let prev = self.fitted.replace(snapshot);
                trace(epoch, self.deviations(probe));
                if epoch + 1 < self.epochs {
                    self.fitted = prev;
                }
            }
        }

        self.fitted = Some(Fitted {
            store,
            scorer,
            mu,
            sigma,
        });
        Ok(())
    }
}

use rand::RngExt;

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn labeled_guidance_separates_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(23);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DevNet::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        // DevNet generalizes from the labeled *target* anomalies, so its
        // target ranking is strong while non-target anomalies drag the
        // all-anomaly ranking down — the Table II phenomenon.
        let troc = auroc(&scores, &bundle.test.target_labels());
        assert!(troc > 0.85, "target AUROC {troc}");
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.65, "anomaly AUROC {roc}");
    }

    #[test]
    fn anomaly_deviations_exceed_unlabeled() {
        let bundle = GeneratorSpec::quick_demo().generate(24);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DevNet {
            epochs: 15,
            ..DevNet::default()
        };
        model.fit(&view, 0).unwrap();
        let dev_a = stats_mean(&model.score(&view.labeled));
        let dev_u = stats_mean(&model.score(&view.unlabeled));
        assert!(
            dev_a > dev_u + 1.0,
            "labeled dev {dev_a} vs unlabeled {dev_u}"
        );
    }

    fn stats_mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn traced_fit_counts_epochs() {
        let bundle = GeneratorSpec::quick_demo().generate(25);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DevNet {
            epochs: 4,
            ..DevNet::default()
        };
        let mut count = 0;
        model
            .fit_traced(&view, 3, &bundle.test.features, &mut |_, _| count += 1)
            .unwrap();
        assert_eq!(count, 4);
    }
}
