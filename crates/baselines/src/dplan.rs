//! DPLAN (Pang et al., KDD 2021) — deep reinforcement learning from
//! partially labeled anomaly data.
//!
//! A DQN agent observes one instance at a time and chooses between
//! `a₀ = "normal"` and `a₁ = "anomaly"`. The extrinsic reward comes from
//! the labeled anomalies (`+1` for flagging one, `−1` for missing one);
//! unlabeled instances provide an intrinsic, unsupervised reward from an
//! isolation-forest score so the agent can extend the learned anomaly
//! patterns to unseen anomalies. Standard DQN machinery: ε-greedy
//! exploration with decay, a replay buffer, and a periodically synced
//! target network. The anomaly score is `Q(x, a₁)`.
//!
//! Simplification vs the original: the environment's next-observation
//! sampler is uniform over the pools rather than distance-biased toward
//! the current observation.

use rand::rngs::StdRng;
use rand::RngExt;
use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, stats, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::iforest::IForest;
use crate::{Detector, TargAdError, TrainView};

/// DPLAN with compact defaults.
pub struct Dplan {
    /// Total environment steps.
    pub steps: usize,
    /// Replay buffer capacity.
    pub buffer_capacity: usize,
    /// DQN minibatch size.
    pub batch: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Target-network sync interval (steps).
    pub sync_every: usize,
    /// Initial exploration rate (linearly decayed to 0.05).
    pub epsilon_start: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Probability of sampling the next observation from the labeled pool.
    pub labeled_sample_prob: f64,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    qnet: Mlp,
}

struct Transition {
    state: Vec<f64>,
    action: usize,
    reward: f64,
    next_state: Vec<f64>,
}

impl Default for Dplan {
    fn default() -> Self {
        Self {
            steps: 1500,
            buffer_capacity: 2000,
            batch: 64,
            gamma: 0.9,
            sync_every: 100,
            epsilon_start: 1.0,
            lr: 1e-3,
            labeled_sample_prob: 0.5,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl Dplan {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DPLAN: score before fit");
        let q = f.qnet.eval(&f.store, x);
        (0..q.rows()).map(|r| q[(r, 1)] - q[(r, 0)]).collect()
    }
}

impl Detector for Dplan {
    fn name(&self) -> &'static str {
        "DPLAN"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let mut rng = lrng::seeded(seed);

        // Intrinsic reward: normalized isolation scores for unlabeled data.
        let mut forest = IForest::default();
        forest.fit(train, seed ^ 0xD91A)?;
        let iso_raw = forest.score(xu);
        let (lo, hi) = (stats::min(&iso_raw), stats::max(&iso_raw));
        let iso: Vec<f64> = iso_raw
            .iter()
            .map(|&v| stats::min_max_scale(v, lo, hi))
            .collect();

        let mut store = VarStore::new();
        let qnet = Mlp::new(
            &mut store,
            &mut rng,
            &[train.dims(), 64, 2],
            Activation::Relu,
            Activation::None,
        );
        let mut target_store = store.clone();
        let mut opt = Adam::new(self.lr);
        let mut buffer: Vec<Transition> = Vec::with_capacity(self.buffer_capacity);
        let mut buffer_pos = 0usize;

        // (is_labeled, index) observation sampler.
        let sample_obs = |rng: &mut StdRng, prob_labeled: f64| -> (bool, usize) {
            if xl.rows() > 0 && rng.random::<f64>() < prob_labeled {
                (true, rng.random_range(0..xl.rows()))
            } else {
                (false, rng.random_range(0..xu.rows()))
            }
        };

        let (mut cur_labeled, mut cur_idx) = sample_obs(&mut rng, self.labeled_sample_prob);
        let rt = self.runtime;
        let mut sharded = ShardedStep::new();
        for step in 0..self.steps {
            let epsilon =
                (self.epsilon_start * (1.0 - step as f64 / (self.steps as f64 * 0.8))).max(0.05);
            let state: Vec<f64> = if cur_labeled {
                xl.row(cur_idx).to_vec()
            } else {
                xu.row(cur_idx).to_vec()
            };

            let action = if rng.random::<f64>() < epsilon {
                rng.random_range(0..2)
            } else {
                let q = qnet.eval(&store, &Matrix::row_vector(&state));
                q.argmax_row(0)
            };

            // Reward: extrinsic from labels, intrinsic from iForest.
            let reward = if cur_labeled {
                if action == 1 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                let intrinsic = iso[cur_idx];
                if action == 1 {
                    intrinsic - 0.5
                } else {
                    0.5 - intrinsic
                }
            };

            let (next_labeled, next_idx) = sample_obs(&mut rng, self.labeled_sample_prob);
            let next_state: Vec<f64> = if next_labeled {
                xl.row(next_idx).to_vec()
            } else {
                xu.row(next_idx).to_vec()
            };

            let t = Transition {
                state,
                action,
                reward,
                next_state: next_state.clone(),
            };
            if buffer.len() < self.buffer_capacity {
                buffer.push(t);
            } else {
                buffer[buffer_pos] = t;
                buffer_pos = (buffer_pos + 1) % self.buffer_capacity;
            }
            cur_labeled = next_labeled;
            cur_idx = next_idx;

            // Learn from a replay minibatch.
            if buffer.len() >= self.batch {
                let idx: Vec<usize> = (0..self.batch)
                    .map(|_| rng.random_range(0..buffer.len()))
                    .collect();
                let states = Matrix::from_rows(
                    &idx.iter()
                        .map(|&i| buffer[i].state.clone())
                        .collect::<Vec<_>>(),
                );
                let next_states = Matrix::from_rows(
                    &idx.iter()
                        .map(|&i| buffer[i].next_state.clone())
                        .collect::<Vec<_>>(),
                );
                // Bellman targets from the frozen network.
                let q_next = qnet.eval(&target_store, &next_states);
                let q_now = qnet.eval(&store, &states);
                let mut target = q_now.clone();
                for (row, &i) in idx.iter().enumerate() {
                    let max_next = q_next.max_row(row);
                    target[(row, buffer[i].action)] = buffer[i].reward + self.gamma * max_next;
                }

                store.zero_grads();
                let n = idx.len();
                let qnet = &qnet;
                let (states, target) = (&states, &target);
                let td_loss = sharded.accumulate(&rt, &mut store, n, |tape, store, range| {
                    let sb = tape.input_row_slice_from(states, range.start, range.end);
                    let tb = tape.input_row_slice_from(target, range.start, range.end);
                    let q = qnet.forward(tape, store, sb);
                    // MSE partial over the full batch: the serial `mse`
                    // averages over rows*cols (2 Q-values per row).
                    let diff = tape.sub(q, tb);
                    let sq = tape.square(diff);
                    tape.sum_div(sq, (n * 2) as f64)
                });
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
                // DPLAN has no epoch notion; report the TD loss once per
                // target-network sync instead.
                if (step + 1) % self.sync_every == 0 {
                    crate::common::observe_epoch("dplan", step + 1, td_loss);
                }
            }

            if (step + 1) % self.sync_every == 0 {
                target_store = store.clone();
            }
        }

        self.fitted = Some(Fitted { store, qnet });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("DPLAN: score before fit");
        self.engine
            .with(|e| e.score(&[(&f.qnet, &f.store)], x, &self.runtime, |_, q| q[1] - q[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn agent_learns_to_flag_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(71);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Dplan::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.7, "anomaly AUROC {roc}");
    }

    #[test]
    fn labeled_anomalies_get_positive_advantage() {
        let bundle = GeneratorSpec::quick_demo().generate(72);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Dplan::default();
        model.fit(&view, 2).unwrap();
        let adv = model.score(&view.labeled);
        let mean_adv = adv.iter().sum::<f64>() / adv.len() as f64;
        assert!(mean_adv > 0.0, "mean advantage {mean_adv}");
    }
}
