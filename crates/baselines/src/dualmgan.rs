//! Dual-MGAN (Li et al., TKDD 2022) — dual multiple GANs for
//! semi-supervised outlier detection with few identified anomalies.
//!
//! Two sub-GAN roles are reproduced:
//!
//! 1. an **augmentation GAN** learns the distribution of the identified
//!    anomalies (plus the most-anomalous unlabeled instances, standing in
//!    for the original's active-learning queries) and synthesizes extra
//!    anomalies;
//! 2. a **normality GAN** models the unlabeled (mostly normal) data and
//!    its discriminator supplies a normality signal.
//!
//! The final detector is a binary classifier trained on unlabeled-vs-
//! (labeled ∪ generated) instances; its anomaly probability, averaged with
//! the normality discriminator's complement, is the score.
//!
//! Simplification vs the original: the active-learning loop is replaced by
//! a one-shot top-uncertainty selection via isolation scores.

use targad_autograd::{Tape, Var, VarStore};
use targad_linalg::{rng as lrng, stable_sigmoid, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::{largest_indices, latent_noise};
use crate::iforest::IForest;
use crate::{Detector, TargAdError, TrainView};

/// Dual-MGAN with compact defaults.
pub struct DualMgan {
    /// Latent dimensionality of both generators.
    pub latent_dim: usize,
    /// GAN training epochs.
    pub gan_epochs: usize,
    /// Final classifier epochs.
    pub clf_epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Synthetic anomalies generated per labeled anomaly.
    pub augment_factor: usize,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    clf_store: VarStore,
    clf: Mlp,
    dn_store: VarStore,
    disc_n: Mlp,
}

impl Default for DualMgan {
    fn default() -> Self {
        Self {
            latent_dim: 8,
            gan_epochs: 10,
            clf_epochs: 30,
            batch: 64,
            lr: 1e-3,
            augment_factor: 3,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl DualMgan {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("Dual-MGAN: score before fit");
        let clf_logits = f.clf.eval(&f.clf_store, x);
        let dn_logits = f.disc_n.eval(&f.dn_store, x);
        (0..x.rows())
            .map(|r| {
                let p_anom = stable_sigmoid(clf_logits[(r, 0)]);
                let p_normal = stable_sigmoid(dn_logits[(r, 0)]);
                0.8 * p_anom + 0.2 * (1.0 - p_normal)
            })
            .collect()
    }
}

/// Shard-partial BCE toward 1 (or 0): `−Σ ln target / n`, where `n` is the
/// full batch size so shard partials sum to the serial mean.
fn bce_partial(tape: &mut Tape, logit: Var, toward_one: bool, n: usize) -> Var {
    let p = tape.sigmoid(logit);
    let target = if toward_one {
        p
    } else {
        let q = tape.neg(p);
        tape.add_scalar(q, 1.0)
    };
    let lp = tape.ln(target);
    let s = tape.sum_div(lp, n as f64);
    tape.scale(s, -1.0)
}

/// Trains one GAN on `real`, returning `(generator store, generator,
/// discriminator store, discriminator)`.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn train_gan(
    label: &'static str,
    real: &Matrix,
    latent_dim: usize,
    epochs: usize,
    batch: usize,
    lr: f64,
    seed: u64,
    rt: &Runtime,
) -> (VarStore, Mlp, VarStore, Mlp) {
    let mut rng = lrng::seeded(seed);
    let d = real.cols();
    let mut g_store = VarStore::new();
    let gen = Mlp::new(
        &mut g_store,
        &mut rng,
        &[latent_dim, 32, d],
        Activation::Relu,
        Activation::Sigmoid,
    );
    let mut d_store = VarStore::new();
    let disc = Mlp::new(
        &mut d_store,
        &mut rng,
        &[d, 32, 1],
        Activation::LeakyRelu,
        Activation::None,
    );
    let mut g_opt = Adam::new(lr);
    let mut d_opt = Adam::new(lr);

    let mut step = ShardedStep::new();
    let (gen_ref, disc_ref) = (&gen, &disc);
    for epoch in 0..epochs {
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for b in shuffled_batches(&mut rng, real.rows(), batch) {
            // All RNG draws happen before dispatch: the fake batch and the
            // generator's latent noise are prebuilt matrices that shards
            // slice by row range.
            let n = b.len();
            let fake = gen.eval(&g_store, &latent_noise(n, latent_dim, &mut rng));
            d_store.zero_grads();
            let fake_ref = &fake;
            let d_loss = step.accumulate(rt, &mut d_store, n, |tape, store, range| {
                let real_v = tape.input_rows_from(real, &b[range.clone()]);
                let rl = disc_ref.forward(tape, store, real_v);
                let l_real = bce_partial(tape, rl, true, n);
                let fake_v = tape.input_row_slice_from(fake_ref, range.start, range.end);
                let fl = disc_ref.forward(tape, store, fake_v);
                let l_fake = bce_partial(tape, fl, false, n);
                tape.add(l_real, l_fake)
            });
            clip_grad_norm(&mut d_store, 5.0);
            d_opt.step(&mut d_store);

            let noise = latent_noise(n, latent_dim, &mut rng);
            g_store.zero_grads();
            let (noise_ref, d_store_ref) = (&noise, &d_store);
            step.accumulate(rt, &mut g_store, n, |tape, store, range| {
                let z = tape.input_row_slice_from(noise_ref, range.start, range.end);
                let out = gen_ref.forward(tape, store, z);
                // Frozen discriminator pass — gradients stop at the
                // generator.
                let gl = disc_ref.forward_frozen(tape, d_store_ref, out);
                bce_partial(tape, gl, true, n)
            });
            clip_grad_norm(&mut g_store, 5.0);
            g_opt.step(&mut g_store);
            epoch_loss += d_loss;
            batches += 1;
        }
        crate::common::observe_epoch(label, epoch, epoch_loss / batches.max(1) as f64);
    }
    (g_store, gen, d_store, disc)
}

impl Detector for DualMgan {
    fn name(&self) -> &'static str {
        "Dual-MGAN"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let mut rng = lrng::seeded(seed);

        // Active-learning substitute: augment the anomaly pool with the
        // top-scored unlabeled instances.
        let mut forest = IForest::default();
        forest.fit(train, seed ^ 0xD0A1)?;
        let iso = forest.score(xu);
        let extra = largest_indices(&iso, (xl.rows() / 2).max(2));
        let anomaly_pool = if xl.rows() > 0 {
            xl.vstack(&xu.take_rows(&extra))
        } else {
            xu.take_rows(&extra)
        };

        // Sub-GAN A: anomaly augmentation.
        let (ga_store, gen_a, _, _) = train_gan(
            "dualmgan.gan_a",
            &anomaly_pool,
            self.latent_dim,
            self.gan_epochs,
            self.batch.min(anomaly_pool.rows().max(2)),
            self.lr,
            seed ^ 0xA,
            &self.runtime,
        );
        let n_synth = anomaly_pool.rows() * self.augment_factor;
        let synth = gen_a.eval(&ga_store, &latent_noise(n_synth, self.latent_dim, &mut rng));

        // Sub-GAN N: normality modeling (its discriminator is reused at
        // scoring time).
        let (_, _, dn_store, disc_n) = train_gan(
            "dualmgan.gan_n",
            xu,
            self.latent_dim,
            self.gan_epochs,
            self.batch,
            self.lr,
            seed ^ 0xB,
            &self.runtime,
        );

        // Final binary classifier on unlabeled (0) vs anomalies+synthetic
        // (1). Synthetic positives carry a reduced weight: an under-trained
        // generator emits samples near the data centre, and trusting them
        // fully inverts the classifier.
        let positives = anomaly_pool.vstack(&synth);
        let features = xu.vstack(&positives);
        let mut labels = vec![0.0; xu.rows()];
        labels.extend(std::iter::repeat_n(1.0, positives.rows()));
        let y = Matrix::col_vector(&labels);
        let mut weights = vec![1.0; xu.rows() + anomaly_pool.rows()];
        weights.extend(std::iter::repeat_n(0.25, synth.rows()));
        let w = Matrix::col_vector(&weights);

        let mut clf_store = VarStore::new();
        let clf = Mlp::new(
            &mut clf_store,
            &mut rng,
            &[train.dims(), 64, 1],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);
        let rt = self.runtime;
        let mut step = ShardedStep::new();
        for epoch in 0..self.clf_epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for b in shuffled_batches(&mut rng, features.rows(), self.batch) {
                clf_store.zero_grads();
                let n = b.len();
                let clf = &clf;
                let (features, y, w) = (&features, &y, &w);
                let loss = step.accumulate(&rt, &mut clf_store, n, |tape, store, range| {
                    let rows = &b[range];
                    let xb = tape.input_rows_from(features, rows);
                    let yb = tape.input_rows_from(y, rows);
                    let wb = tape.input_rows_from(w, rows);
                    let logit = clf.forward(tape, store, xb);
                    let p = tape.sigmoid(logit);
                    let lp = tape.ln(p);
                    let t1 = tape.mul(yb, lp);
                    let q = tape.neg(p);
                    let q = tape.add_scalar(q, 1.0);
                    let lq = tape.ln(q);
                    let ny = tape.neg(yb);
                    let ny = tape.add_scalar(ny, 1.0);
                    let t2 = tape.mul(ny, lq);
                    let s = tape.add(t1, t2);
                    let weighted = tape.mul(s, wb);
                    let total = tape.sum_div(weighted, n as f64);
                    tape.scale(total, -1.0)
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut clf_store, 5.0);
                opt.step(&mut clf_store);
            }
            crate::common::observe_epoch("dualmgan.clf", epoch, epoch_loss / batches.max(1) as f64);
        }

        self.fitted = Some(Fitted {
            clf_store,
            clf,
            dn_store,
            disc_n,
        });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("Dual-MGAN: score before fit");
        let rt = &self.runtime;
        let (p_anom, p_normal) = self.engine.with(|e| {
            (
                e.score(&[(&f.clf, &f.clf_store)], x, rt, |_, r| {
                    stable_sigmoid(r[0])
                }),
                e.score(&[(&f.disc_n, &f.dn_store)], x, rt, |_, r| {
                    stable_sigmoid(r[0])
                }),
            )
        });
        // Ensemble of the two sub-detectors; the normality GAN's
        // discriminator is the weaker signal (a converged GAN
        // discriminator is not a density estimate) so it enters with a
        // small weight.
        p_anom
            .iter()
            .zip(&p_normal)
            .map(|(&a, &n)| 0.8 * a + 0.2 * (1.0 - n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn dual_gan_detects_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(91);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DualMgan::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.6, "anomaly AUROC {roc}");
    }

    #[test]
    fn scores_in_unit_interval() {
        let bundle = GeneratorSpec::quick_demo().generate(92);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = DualMgan {
            gan_epochs: 3,
            clf_epochs: 5,
            ..DualMgan::default()
        };
        model.fit(&view, 2).unwrap();
        assert!(model
            .score(&bundle.test.features)
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s)));
    }
}
