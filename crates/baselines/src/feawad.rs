//! FEAWAD (Zhou et al., TNNLS 2021) — feature encoding with autoencoders
//! for weakly supervised anomaly detection.
//!
//! Stage 1 pretrains an autoencoder on the unlabeled data. Stage 2 feeds a
//! scoring network the composite representation
//! `[z, e/‖e‖, ‖e‖]` — bottleneck code, normalized reconstruction residual,
//! and residual norm — and trains it with a deviation-style weakly
//! supervised loss (`|s|` for unlabeled, hinge `max(0, a − s)` for labeled
//! anomalies).
//!
//! Simplification vs the original: the paper alternates/joins the AE and
//! scorer training; we use a clean two-stage schedule, which the authors
//! report performs comparably.

use rand::RngExt;
use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{
    shuffled_batches, Activation, Adam, AutoEncoder, EngineCell, Mlp, Optimizer, ShardedStep,
};
use targad_runtime::Runtime;

use crate::{Detector, TargAdError, TrainView};

/// FEAWAD with the defaults used in the reproduction.
pub struct Feawad {
    /// AE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Scorer training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batch size.
    pub batch: usize,
    /// Deviation margin for labeled anomalies.
    pub margin: f64,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    ae_store: VarStore,
    ae: AutoEncoder,
    scorer_store: VarStore,
    scorer: Mlp,
}

impl Default for Feawad {
    fn default() -> Self {
        Self {
            pretrain_epochs: 10,
            epochs: 20,
            lr: 1e-3,
            batch: 128,
            margin: 5.0,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl Feawad {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("FEAWAD: score before fit");
        let rep = representation(&f.ae, &f.ae_store, x);
        let s = f.scorer.eval(&f.scorer_store, &rep);
        (0..s.rows()).map(|r| s[(r, 0)]).collect()
    }
}

/// `[z, e/‖e‖, ‖e‖]` composite representation (reference forward pass).
fn representation(ae: &AutoEncoder, store: &VarStore, x: &Matrix) -> Matrix {
    let z = ae.encode_eval(store, x);
    let xhat = ae.reconstruct_eval(store, x);
    assemble_representation(&z, &xhat, x)
}

/// [`representation`] with the encoder and decoder run through the pooled
/// inference engine. Bit-identical: the engine reproduces the exact
/// `encode_eval` chains, and feeding that `z` straight into the decoder
/// matches `reconstruct_eval` (which recomputes the same `z` internally).
fn representation_rt(
    ae: &AutoEncoder,
    store: &VarStore,
    engine: &EngineCell,
    x: &Matrix,
    rt: &Runtime,
) -> Matrix {
    let mut z = Matrix::zeros(x.rows(), ae.encoder().out_dim());
    let mut xhat = Matrix::zeros(x.rows(), ae.decoder().out_dim());
    engine.with(|e| {
        e.forward_into(&[(ae.encoder(), store)], x, rt, &mut z);
        e.forward_into(&[(ae.decoder(), store)], &z, rt, &mut xhat);
    });
    assemble_representation(&z, &xhat, x)
}

/// Stacks `[z, e/‖e‖, ‖e‖]` rows from the bottleneck codes and
/// reconstructions.
fn assemble_representation(z: &Matrix, xhat: &Matrix, x: &Matrix) -> Matrix {
    let resid = xhat - x;
    let mut rows = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let e = resid.row(r);
        let norm = e.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut row = Vec::with_capacity(z.cols() + e.len() + 1);
        row.extend_from_slice(z.row(r));
        if norm > 1e-12 {
            row.extend(e.iter().map(|v| v / norm));
        } else {
            row.extend(std::iter::repeat_n(0.0, e.len()));
        }
        row.push(norm);
        rows.push(row);
    }
    Matrix::from_rows(&rows)
}

impl Detector for Feawad {
    fn name(&self) -> &'static str {
        "FEAWAD"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_traced(train, seed, &Matrix::zeros(0, train.dims()), &mut |_, _| {})
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("FEAWAD: score before fit");
        let rep = representation_rt(&f.ae, &f.ae_store, &self.engine, x, &self.runtime);
        self.engine.with(|e| {
            e.score(
                &[(&f.scorer, &f.scorer_store)],
                &rep,
                &self.runtime,
                |_, s| s[0],
            )
        })
    }

    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        let mut rng = lrng::seeded(seed);
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let d = train.dims();

        // Stage 1: autoencoder pretraining.
        let mut ae_store = VarStore::new();
        let dims = [d, (d / 2).max(2), (d / 4).max(2)];
        let ae = AutoEncoder::new(&mut ae_store, &mut rng, &dims);
        let mut ae_opt = Adam::new(self.lr);
        let rt = self.runtime;
        let mut step = ShardedStep::new();
        for _ in 0..self.pretrain_epochs {
            for batch in shuffled_batches(&mut rng, xu.rows(), self.batch) {
                ae_store.zero_grads();
                let n = batch.len();
                let ae = &ae;
                step.accumulate(&rt, &mut ae_store, n, |tape, store, range| {
                    let xb = tape.input_rows_from(xu, &batch[range]);
                    let err = ae.recon_error_rows(tape, store, xb);
                    tape.sum_div(err, n as f64)
                });
                clip_grad_norm(&mut ae_store, 5.0);
                ae_opt.step(&mut ae_store);
            }
        }

        // Stage 2: deviation-style scorer over composite representations.
        let rep_u = representation_rt(&ae, &ae_store, &self.engine, xu, &rt);
        let rep_l = if xl.rows() > 0 {
            representation_rt(&ae, &ae_store, &self.engine, xl, &rt)
        } else {
            Matrix::zeros(0, rep_u.cols())
        };
        let mut scorer_store = VarStore::new();
        let scorer = Mlp::new(
            &mut scorer_store,
            &mut rng,
            &[rep_u.cols(), 64, 1],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);
        let half = (self.batch / 2).max(1);

        let margin = self.margin;
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for u_batch in shuffled_batches(&mut rng, rep_u.rows(), half) {
                scorer_store.zero_grads();
                let n = u_batch.len();
                // Oversampled labeled indices are drawn before dispatch so
                // the RNG stream never depends on shard execution order.
                let idx: Vec<usize> = if rep_l.rows() > 0 {
                    (0..half)
                        .map(|_| rng.random_range(0..rep_l.rows()))
                        .collect()
                } else {
                    Vec::new()
                };
                let scorer = &scorer;
                let (rep_u, rep_l) = (&rep_u, &rep_l);
                let loss = step.accumulate(&rt, &mut scorer_store, n, |tape, store, range| {
                    let xb = tape.input_rows_from(rep_u, &u_batch[range.clone()]);
                    let s_u = scorer.forward(tape, store, xb);
                    let abs_u = tape.abs(s_u);
                    let term_u = tape.sum_div(abs_u, n as f64);
                    // Labeled hinge term: built once, on shard 0.
                    if !idx.is_empty() && range.start == 0 {
                        let xa = tape.input_rows_from(rep_l, &idx);
                        let s_a = scorer.forward(tape, store, xa);
                        let neg = tape.scale(s_a, -1.0);
                        let hinge = tape.add_scalar(neg, margin);
                        let hinge = tape.relu(hinge);
                        let term_a = tape.mean_all(hinge);
                        tape.add(term_u, term_a)
                    } else {
                        term_u
                    }
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut scorer_store, 5.0);
                opt.step(&mut scorer_store);
            }
            crate::common::observe_epoch("feawad", epoch, epoch_loss / batches.max(1) as f64);
            if probe.rows() > 0 {
                let snapshot = Fitted {
                    ae_store: ae_store.clone(),
                    ae: ae.clone(),
                    scorer_store: scorer_store.clone(),
                    scorer: scorer.clone(),
                };
                let prev = self.fitted.replace(snapshot);
                trace(epoch, self.score(probe));
                if epoch + 1 < self.epochs {
                    self.fitted = prev;
                }
            }
        }

        self.fitted = Some(Fitted {
            ae_store,
            ae,
            scorer_store,
            scorer,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn composite_representation_shape() {
        let bundle = GeneratorSpec::quick_demo().generate(33);
        let view = TrainView::from_dataset(&bundle.train);
        let mut rng = lrng::seeded(1);
        let mut store = VarStore::new();
        let ae = AutoEncoder::new(&mut store, &mut rng, &[12, 6, 3]);
        let rep = representation(&ae, &store, &view.unlabeled);
        // z (3) + residual direction (12) + norm (1)
        assert_eq!(rep.cols(), 16);
        assert_eq!(rep.rows(), view.unlabeled.rows());
    }

    #[test]
    fn detects_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(7);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Feawad::default();
        model.fit(&view, 2).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.8, "anomaly AUROC {roc}");
    }

    #[test]
    fn labeled_anomalies_score_near_margin() {
        let bundle = GeneratorSpec::quick_demo().generate(35);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Feawad::default();
        model.fit(&view, 2).unwrap();
        let mean_a = model.score(&view.labeled).iter().sum::<f64>() / view.labeled.rows() as f64;
        let mean_u =
            model.score(&view.unlabeled).iter().sum::<f64>() / view.unlabeled.rows() as f64;
        assert!(
            mean_a > mean_u + 1.0,
            "labeled {mean_a} vs unlabeled {mean_u}"
        );
    }
}
