//! Isolation Forest (Liu, Ting & Zhou, TKDD 2012) — complete
//! implementation: random isolation trees over subsamples of size `ψ`,
//! path-length scoring with the `c(n)` average-path normalization, and the
//! `2^{−E[h(x)]/c(ψ)}` anomaly score.

use rand::rngs::StdRng;
use rand::RngExt;
use targad_linalg::{rng as lrng, Matrix};
use targad_runtime::Runtime;

use crate::{Detector, TargAdError, TrainView};

/// Isolation forest with the paper-standard defaults (100 trees, ψ = 256).
pub struct IForest {
    /// Number of isolation trees.
    pub n_trees: usize,
    /// Subsample size per tree.
    pub psi: usize,
    runtime: Runtime,
    trees: Vec<Tree>,
    c_psi: f64,
}

impl Default for IForest {
    fn default() -> Self {
        Self {
            n_trees: 100,
            psi: 256,
            runtime: Runtime::from_env(),
            trees: Vec::new(),
            c_psi: 1.0,
        }
    }
}

impl IForest {
    /// An isolation forest with explicit tree count and subsample size.
    pub fn new(n_trees: usize, psi: usize) -> Self {
        Self {
            n_trees,
            psi,
            ..Self::default()
        }
    }

    /// Replaces the execution runtime (worker count never affects results:
    /// every tree draws from its own seed-derived RNG stream).
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Expected path length of one instance, averaged over trees.
    pub fn mean_path_length(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "IForest: score before fit");
        self.trees
            .iter()
            .map(|t| t.path_length(row, 0))
            .sum::<f64>()
            / self.trees.len() as f64
    }
}

impl Detector for IForest {
    fn name(&self) -> &'static str {
        "iForest"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        // Unsupervised: labeled anomalies are ignored, as in the paper.
        let data = &train.unlabeled;
        let psi = self.psi.min(data.rows()).max(2);
        let height_limit = (psi as f64).log2().ceil() as usize;
        self.c_psi = c_factor(psi);
        // Each tree owns a seed-derived RNG stream, so the forest is
        // bit-identical at any worker count (and to the serial build).
        self.trees = self.runtime.par_map_indexed(self.n_trees, |t| {
            let mut rng = lrng::seeded(tree_seed(seed, t));
            let idx = lrng::sample_indices(&mut rng, data.rows(), psi);
            Tree::build(&data.take_rows(&idx), height_limit, &mut rng)
        });
        // Tree ensembles have no loss curve; report the build as a single
        // event whose scalar is the mean node count per tree (a proxy for
        // how deeply the subsamples were isolated).
        if targad_obs::enabled() {
            let mean_nodes = self.trees.iter().map(Tree::node_count).sum::<usize>() as f64
                / self.trees.len().max(1) as f64;
            crate::common::observe_epoch("iforest", self.n_trees, mean_nodes);
        }
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        // Score contiguous row blocks into a preallocated buffer rather than
        // dispatching per row: each worker owns one large slice of the
        // output (at least `SCORE_ROW_GRAIN` rows), so there is no per-row
        // scheduling and no per-worker collect/extend pass.
        let rows = x.rows();
        let mut scores = vec![0.0; rows];
        let rt = self.runtime.capped(rows.div_ceil(SCORE_ROW_GRAIN));
        rt.par_rows(&mut scores, 1, |first, chunk| {
            for (k, out) in chunk.iter_mut().enumerate() {
                let e_h = self.mean_path_length(x.row(first + k));
                *out = 2f64.powf(-e_h / self.c_psi);
            }
        });
        scores
    }
}

/// Minimum rows per worker when scoring: one tree traversal costs a couple
/// of microseconds, so finer splits are dominated by dispatch overhead.
const SCORE_ROW_GRAIN: usize = 256;

enum Tree {
    Leaf {
        size: usize,
    },
    Split {
        dim: usize,
        threshold: f64,
        left: Box<Tree>,
        right: Box<Tree>,
    },
}

impl Tree {
    fn build(data: &Matrix, height_left: usize, rng: &mut StdRng) -> Tree {
        let n = data.rows();
        if n <= 1 || height_left == 0 {
            return Tree::Leaf { size: n };
        }
        // Pick a dimension with spread; give up after a few attempts
        // (duplicate-heavy nodes become leaves).
        for _ in 0..8 {
            let dim = rng.random_range(0..data.cols());
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for r in 0..n {
                let v = data[(r, dim)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            let threshold = rng.random_range(lo..hi);
            let left_idx: Vec<usize> = (0..n).filter(|&r| data[(r, dim)] < threshold).collect();
            let right_idx: Vec<usize> = (0..n).filter(|&r| data[(r, dim)] >= threshold).collect();
            if left_idx.is_empty() || right_idx.is_empty() {
                continue;
            }
            return Tree::Split {
                dim,
                threshold,
                left: Box::new(Tree::build(
                    &data.take_rows(&left_idx),
                    height_left - 1,
                    rng,
                )),
                right: Box::new(Tree::build(
                    &data.take_rows(&right_idx),
                    height_left - 1,
                    rng,
                )),
            };
        }
        Tree::Leaf { size: n }
    }

    fn node_count(&self) -> usize {
        match self {
            Tree::Leaf { .. } => 1,
            Tree::Split { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    fn path_length(&self, row: &[f64], depth: usize) -> f64 {
        match self {
            Tree::Leaf { size } => depth as f64 + c_factor(*size),
            Tree::Split {
                dim,
                threshold,
                left,
                right,
            } => {
                if row[*dim] < *threshold {
                    left.path_length(row, depth + 1)
                } else {
                    right.path_length(row, depth + 1)
                }
            }
        }
    }
}

/// Decorrelated per-tree seed: SplitMix64 finalizer over the fit seed and
/// the tree index, so tree `t`'s stream is the same no matter which worker
/// builds it.
fn tree_seed(seed: u64, tree: usize) -> u64 {
    let mut z = seed ^ (tree as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `c(n)`: average path length of an unsuccessful BST search over `n`
/// points — the normalizer from the iForest paper.
fn c_factor(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let n = n as f64;
    let harmonic = (n - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (n - 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    fn cluster_with_outliers() -> (Matrix, Vec<bool>) {
        let mut rng = lrng::seeded(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            rows.push(vec![
                0.5 + lrng::normal(&mut rng, 0.0, 0.03),
                0.5 + lrng::normal(&mut rng, 0.0, 0.03),
            ]);
            labels.push(false);
        }
        for _ in 0..15 {
            rows.push(vec![
                lrng::normal(&mut rng, 0.1, 0.02),
                lrng::normal(&mut rng, 0.9, 0.02),
            ]);
            labels.push(true);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn c_factor_known_values() {
        assert_eq!(c_factor(1), 0.0);
        // c(2) = 2*(ln 1 + γ) − 2*(1/2) = 2γ − 1 ≈ 0.1544
        assert!((c_factor(2) - 0.154_431).abs() < 1e-5);
        assert!(c_factor(256) > c_factor(64));
    }

    #[test]
    fn isolates_obvious_outliers() {
        let (x, labels) = cluster_with_outliers();
        let mut forest = IForest::default();
        forest
            .fit(&TrainView::from_matrices(Matrix::zeros(0, 2), x.clone()), 1)
            .unwrap();
        let scores = forest.score(&x);
        let roc = auroc(&scores, &labels);
        assert!(roc > 0.99, "AUROC {roc}");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (x, _) = cluster_with_outliers();
        let mut forest = IForest::new(25, 64);
        forest
            .fit(&TrainView::from_matrices(Matrix::zeros(0, 2), x.clone()), 2)
            .unwrap();
        assert!(forest.score(&x).iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn outliers_have_shorter_paths() {
        let (x, labels) = cluster_with_outliers();
        let mut forest = IForest::default();
        forest
            .fit(&TrainView::from_matrices(Matrix::zeros(0, 2), x.clone()), 3)
            .unwrap();
        let outlier_path = forest.mean_path_length(x.row(310));
        let inlier_path = forest.mean_path_length(x.row(0));
        assert!(outlier_path < inlier_path);
        let _ = labels;
    }

    #[test]
    fn deterministic_given_seed() {
        let bundle = GeneratorSpec::quick_demo().generate(9);
        let view = TrainView::from_dataset(&bundle.train);
        let mut a = IForest::default();
        a.fit(&view, 7).unwrap();
        let mut b = IForest::default();
        b.fit(&view, 7).unwrap();
        assert_eq!(
            a.score(&bundle.test.features),
            b.score(&bundle.test.features)
        );
    }

    #[test]
    fn parallel_build_and_score_match_serial() {
        let (x, _) = cluster_with_outliers();
        let view = TrainView::from_matrices(Matrix::zeros(0, 2), x.clone());
        let serial = {
            let mut f = IForest::new(40, 64).with_runtime(Runtime::serial());
            f.fit(&view, 11).unwrap();
            f.score(&x)
        };
        for workers in [2usize, 7] {
            let mut f = IForest::new(40, 64).with_runtime(Runtime::new(workers));
            f.fit(&view, 11).unwrap();
            assert_eq!(f.score(&x), serial, "workers = {workers}");
        }
    }

    #[test]
    fn flags_both_anomaly_kinds_on_benchmark() {
        // iForest should detect anomalies in general well, while its
        // *target-only* ranking suffers from non-target false positives —
        // the Table II phenomenon.
        let bundle = GeneratorSpec::quick_demo().generate(11);
        let view = TrainView::from_dataset(&bundle.train);
        let mut forest = IForest::default();
        forest.fit(&view, 5).unwrap();
        let scores = forest.score(&bundle.test.features);
        let anomaly_roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(anomaly_roc > 0.8, "anomaly AUROC {anomaly_roc}");
    }
}
