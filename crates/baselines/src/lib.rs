//! The eleven anomaly-detection baselines of the TargAD evaluation
//! (Table II), reimplemented from scratch on the shared NN substrate.
//!
//! All baselines expose the same [`Detector`] interface: fit on a
//! [`TrainView`] (labeled target anomalies treated as a single "anomaly"
//! class — none of these methods distinguishes target from non-target) and
//! emit a per-instance anomaly score where **higher = more anomalous**.
//! This is precisely how the paper evaluates them: their scores are ranked
//! against the *target-anomaly* ground truth, so non-target anomalies they
//! flag count as false positives — the phenomenon TargAD addresses.
//!
//! Unsupervised: [`IForest`], [`Repen`]. Semi/weakly supervised:
//! [`Adoa`], [`Feawad`], [`Pumad`], [`DevNet`], [`DeepSad`], [`Dplan`],
//! [`PiaWal`], [`DualMgan`], [`PreNet`]. Per-model simplifications relative
//! to the original papers are documented in each module.

pub mod adoa;
pub mod common;
pub mod deepsad;
pub mod devnet;
pub mod dplan;
pub mod dualmgan;
pub mod feawad;
pub mod iforest;
pub mod piawal;
pub mod prenet;
pub mod pumad;
pub mod repen;

pub use adoa::Adoa;
pub use deepsad::DeepSad;
pub use devnet::DevNet;
pub use dplan::Dplan;
pub use dualmgan::DualMgan;
pub use feawad::Feawad;
pub use iforest::IForest;
pub use piawal::PiaWal;
pub use prenet::PreNet;
pub use pumad::Pumad;
pub use repen::Repen;

/// The unified detector interface and its training view now live in
/// `targad-core` (so TargAD itself implements [`Detector`]); re-exported
/// here so existing `targad_baselines::{Detector, TrainView}` paths keep
/// working.
pub use targad_core::{Detector, TargAdError, TrainView};

/// All eleven baselines with their default hyper-parameters, in Table II
/// order.
pub fn all_baselines() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(IForest::default()),
        Box::new(Repen::default()),
        Box::new(Adoa::default()),
        Box::new(Feawad::default()),
        Box::new(Pumad::default()),
        Box::new(DevNet::default()),
        Box::new(DeepSad::default()),
        Box::new(Dplan::default()),
        Box::new(PiaWal::default()),
        Box::new(DualMgan::default()),
        Box::new(PreNet::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;

    #[test]
    fn registry_matches_table_two() {
        let names: Vec<&str> = all_baselines().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "iForest",
                "REPEN",
                "ADOA",
                "FEAWAD",
                "PUMAD",
                "DevNet",
                "DeepSAD",
                "DPLAN",
                "PIA-WAL",
                "Dual-MGAN",
                "PReNet"
            ]
        );
    }

    #[test]
    fn train_view_shapes() {
        let bundle = GeneratorSpec::quick_demo().generate(1);
        let view = TrainView::from_dataset(&bundle.train);
        assert_eq!(view.dims(), 12);
        assert_eq!(view.labeled.rows(), 20);
        assert_eq!(view.unlabeled.rows(), 600);
    }
}
