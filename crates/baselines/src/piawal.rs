//! PIA-WAL (Zong et al., DASFAA 2022) — peripheral instance augmentation
//! with weighted adversarial learning.
//!
//! A generator learns to produce *peripheral* normal instances (points near
//! the boundary of the normal manifold, which vanilla detectors under-fit)
//! while the discriminator is trained with three signals: real unlabeled
//! data (label 1), generated data (label 0), and the labeled anomalies
//! (label 0) guiding the adversarial process away from anomalous regions.
//! The anomaly score is `1 − D(x)`.
//!
//! Simplification vs the original: the peripheral emphasis is a regularizer
//! pulling generated samples toward the discriminator's decision boundary
//! (`(D(G(z)) − 0.5)²`) instead of the full instance-weighting scheme.

use targad_autograd::{Tape, Var, VarStore};
use targad_linalg::{rng as lrng, stable_sigmoid, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::latent_noise;
use crate::{Detector, TargAdError, TrainView};

/// PIA-WAL with compact defaults.
pub struct PiaWal {
    /// Latent dimensionality of the generator.
    pub latent_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate (both networks).
    pub lr: f64,
    /// Weight on the labeled-anomaly discriminator term.
    pub anomaly_weight: f64,
    /// Weight of the peripheral (boundary-seeking) generator term.
    pub peripheral_weight: f64,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    d_store: VarStore,
    disc: Mlp,
}

impl Default for PiaWal {
    fn default() -> Self {
        Self {
            latent_dim: 8,
            epochs: 30,
            batch: 64,
            lr: 1e-3,
            anomaly_weight: 1.0,
            peripheral_weight: 0.5,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl PiaWal {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PIA-WAL: score before fit");
        let logits = f.disc.eval(&f.d_store, x);
        (0..logits.rows())
            .map(|r| 1.0 - stable_sigmoid(logits[(r, 0)]))
            .collect()
    }
}

/// Shard partial of `−mean ln σ(logit)`: sums the shard's rows and divides
/// by the full batch size `n`, so shard partials add up to the batch mean.
fn bce_toward_one_partial(tape: &mut Tape, logit: Var, n: usize) -> Var {
    let p = tape.sigmoid(logit);
    let lp = tape.ln(p);
    let s = tape.sum_div(lp, n as f64);
    tape.scale(s, -1.0)
}

/// `−mean ln (1 − σ(logit))` — BCE toward label 0, over the whole set.
fn bce_toward_zero(tape: &mut Tape, logit: Var) -> Var {
    let p = tape.sigmoid(logit);
    let q = tape.neg(p);
    let q = tape.add_scalar(q, 1.0);
    let lq = tape.ln(q);
    let m = tape.mean_all(lq);
    tape.scale(m, -1.0)
}

/// Shard partial of `−mean ln (1 − σ(logit))` with full-batch denominator.
fn bce_toward_zero_partial(tape: &mut Tape, logit: Var, n: usize) -> Var {
    let p = tape.sigmoid(logit);
    let q = tape.neg(p);
    let q = tape.add_scalar(q, 1.0);
    let lq = tape.ln(q);
    let s = tape.sum_div(lq, n as f64);
    tape.scale(s, -1.0)
}

impl Detector for PiaWal {
    fn name(&self) -> &'static str {
        "PIA-WAL"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let d = train.dims();
        let mut rng = lrng::seeded(seed);

        let mut g_store = VarStore::new();
        let gen = Mlp::new(
            &mut g_store,
            &mut rng,
            &[self.latent_dim, 32, d],
            Activation::Relu,
            Activation::Sigmoid,
        );
        let mut d_store = VarStore::new();
        let disc = Mlp::new(
            &mut d_store,
            &mut rng,
            &[d, 64, 1],
            Activation::LeakyRelu,
            Activation::None,
        );
        let mut g_opt = Adam::new(self.lr);
        let mut d_opt = Adam::new(self.lr);

        let rt = self.runtime;
        let anomaly_weight = self.anomaly_weight;
        let peripheral_weight = self.peripheral_weight;
        let mut step = ShardedStep::new();
        let (gen_ref, disc_ref) = (&gen, &disc);
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in shuffled_batches(&mut rng, xu.rows(), self.batch) {
                // ---- Discriminator step --------------------------------
                // RNG draws happen before dispatch; shards slice the
                // prebuilt fake batch by row range.
                let n = batch.len();
                let fake = gen.eval(&g_store, &latent_noise(n, self.latent_dim, &mut rng));
                d_store.zero_grads();
                let fake_ref = &fake;
                let d_loss = step.accumulate(&rt, &mut d_store, n, |tape, store, range| {
                    let real = tape.input_rows_from(xu, &batch[range.clone()]);
                    let real_logit = disc_ref.forward(tape, store, real);
                    let loss_real = bce_toward_one_partial(tape, real_logit, n);
                    let fake_v = tape.input_row_slice_from(fake_ref, range.start, range.end);
                    let fake_logit = disc_ref.forward(tape, store, fake_v);
                    let loss_fake = bce_toward_zero_partial(tape, fake_logit, n);
                    let d_loss = tape.add(loss_real, loss_fake);
                    // Weighted adversarial guidance from the whole labeled
                    // pool: built once, on shard 0.
                    if xl.rows() > 0 && range.start == 0 {
                        let anoms = tape.input_from(xl);
                        let a_logit = disc_ref.forward(tape, store, anoms);
                        let loss_anom = bce_toward_zero(tape, a_logit);
                        tape.add_scaled(d_loss, loss_anom, anomaly_weight)
                    } else {
                        d_loss
                    }
                });
                clip_grad_norm(&mut d_store, 5.0);
                d_opt.step(&mut d_store);

                // ---- Generator step ------------------------------------
                let noise = latent_noise(n, self.latent_dim, &mut rng);
                g_store.zero_grads();
                let (noise_ref, d_store_ref) = (&noise, &d_store);
                step.accumulate(&rt, &mut g_store, n, |tape, store, range| {
                    let z = tape.input_row_slice_from(noise_ref, range.start, range.end);
                    let gen_out = gen_ref.forward(tape, store, z);
                    // Frozen pass: the generator step must not touch (nor
                    // mis-route gradients into) the discriminator's store.
                    let g_logit = disc_ref.forward_frozen(tape, d_store_ref, gen_out);
                    let fool = bce_toward_one_partial(tape, g_logit, n);
                    // Peripheral emphasis: hold generated instances near the
                    // decision boundary D ≈ 0.5.
                    let p = tape.sigmoid(g_logit);
                    let centered = tape.add_scalar(p, -0.5);
                    let sq = tape.square(centered);
                    let boundary = tape.sum_div(sq, n as f64);
                    tape.add_scaled(fool, boundary, peripheral_weight)
                });
                clip_grad_norm(&mut g_store, 5.0);
                g_opt.step(&mut g_store);
                epoch_loss += d_loss;
                batches += 1;
            }
            crate::common::observe_epoch("piawal", epoch, epoch_loss / batches.max(1) as f64);
        }

        self.fitted = Some(Fitted { d_store, disc });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PIA-WAL: score before fit");
        self.engine.with(|e| {
            e.score(&[(&f.disc, &f.d_store)], x, &self.runtime, |_, row| {
                1.0 - stable_sigmoid(row[0])
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn discriminator_score_separates_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(81);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = PiaWal::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.7, "anomaly AUROC {roc}");
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let bundle = GeneratorSpec::quick_demo().generate(82);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = PiaWal {
            epochs: 5,
            ..PiaWal::default()
        };
        model.fit(&view, 2).unwrap();
        assert!(model
            .score(&bundle.test.features)
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s)));
    }
}
