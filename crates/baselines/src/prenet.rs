//! PReNet (Pang et al., KDD 2023) — deep weakly-supervised anomaly
//! detection via pairwise relation prediction.
//!
//! Instance pairs get ordinal relation labels — `(anomaly, anomaly) → 8`,
//! `(anomaly, unlabeled) → 4`, `(unlabeled, unlabeled) → 0` — and a network
//! `φ([x₁; x₂])` regresses them. At inference, `x` is paired with random
//! labeled anomalies and random unlabeled instances; the mean predicted
//! relation is the anomaly score.

use rand::rngs::StdRng;
use rand::RngExt;
use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::{Detector, TargAdError, TrainView};

/// PReNet with the original relation labels (8 / 4 / 0).
pub struct PreNet {
    /// Training steps (each step draws a fresh pair batch).
    pub steps: usize,
    /// Pairs per step.
    pub batch_pairs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Hidden layers of the relation network.
    pub hidden: Vec<usize>,
    /// Anomaly/unlabeled pairs sampled per instance at scoring time.
    pub score_pairs: usize,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    net: Mlp,
    labeled: Matrix,
    unlabeled_sample: Matrix,
}

impl Default for PreNet {
    fn default() -> Self {
        Self {
            steps: 400,
            batch_pairs: 96,
            lr: 1e-3,
            hidden: vec![64, 32],
            score_pairs: 16,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl PreNet {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PReNet: score before fit");
        let n_a = f.labeled.rows().min(self.score_pairs);
        let n_u = f.unlabeled_sample.rows();
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut pairs = Vec::with_capacity(n_a + n_u);
                for a in 0..n_a {
                    pairs.push(concat_rows(f.labeled.row(a), row));
                }
                for u in 0..n_u {
                    pairs.push(concat_rows(f.unlabeled_sample.row(u), row));
                }
                if pairs.is_empty() {
                    return 0.0;
                }
                let preds = f.net.eval(&f.store, &Matrix::from_rows(&pairs));
                preds.mean()
            })
            .collect()
    }
}

fn concat_rows(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut row = Vec::with_capacity(a.len() + b.len());
    row.extend_from_slice(a);
    row.extend_from_slice(b);
    row
}

impl PreNet {
    fn pair_batch(&self, xl: &Matrix, xu: &Matrix, rng: &mut StdRng) -> (Matrix, Matrix) {
        let mut rows = Vec::with_capacity(self.batch_pairs);
        let mut ys = Vec::with_capacity(self.batch_pairs);
        let has_labeled = xl.rows() > 0;
        for _ in 0..self.batch_pairs {
            let kind = if has_labeled {
                rng.random_range(0..3)
            } else {
                2
            };
            match kind {
                0 => {
                    // (anomaly, anomaly) → 8
                    let a = rng.random_range(0..xl.rows());
                    let b = rng.random_range(0..xl.rows());
                    rows.push(concat_rows(xl.row(a), xl.row(b)));
                    ys.push(8.0);
                }
                1 => {
                    // (anomaly, unlabeled) → 4
                    let a = rng.random_range(0..xl.rows());
                    let u = rng.random_range(0..xu.rows());
                    rows.push(concat_rows(xl.row(a), xu.row(u)));
                    ys.push(4.0);
                }
                _ => {
                    // (unlabeled, unlabeled) → 0
                    let u1 = rng.random_range(0..xu.rows());
                    let u2 = rng.random_range(0..xu.rows());
                    rows.push(concat_rows(xu.row(u1), xu.row(u2)));
                    ys.push(0.0);
                }
            }
        }
        (Matrix::from_rows(&rows), Matrix::col_vector(&ys))
    }
}

impl Detector for PreNet {
    fn name(&self) -> &'static str {
        "PReNet"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let mut rng = lrng::seeded(seed);
        let mut store = VarStore::new();
        let mut dims = vec![train.dims() * 2];
        dims.extend_from_slice(&self.hidden);
        dims.push(1);
        let net = Mlp::new(
            &mut store,
            &mut rng,
            &dims,
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);

        let rt = self.runtime;
        let mut step = ShardedStep::new();
        for train_step in 0..self.steps {
            // The pair batch is drawn up front; shards slice it by row
            // range, so the RNG stream never depends on worker count.
            let (pairs, ys) = self.pair_batch(&train.labeled, &train.unlabeled, &mut rng);
            store.zero_grads();
            let n = pairs.rows();
            let net = &net;
            let (pairs, ys) = (&pairs, &ys);
            let loss = step.accumulate(&rt, &mut store, n, |tape, store, range| {
                let xb = tape.input_row_slice_from(pairs, range.start, range.end);
                let yv = tape.input_row_slice_from(ys, range.start, range.end);
                let pred = net.forward(tape, store, xb);
                // MSE partial with the full-batch denominator (1 output
                // column, so elements == rows).
                let diff = tape.sub(pred, yv);
                let sq = tape.square(diff);
                tape.sum_div(sq, n as f64)
            });
            clip_grad_norm(&mut store, 5.0);
            opt.step(&mut store);
            crate::common::observe_epoch("prenet", train_step, loss);
        }

        // Freeze the scoring reference sets.
        let sample = (0..self.score_pairs.min(train.unlabeled.rows()))
            .map(|_| rng.random_range(0..train.unlabeled.rows()))
            .collect::<Vec<_>>();
        self.fitted = Some(Fitted {
            store,
            net,
            labeled: train.labeled.clone(),
            unlabeled_sample: train.unlabeled.take_rows(&sample),
        });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PReNet: score before fit");
        let n_a = f.labeled.rows().min(self.score_pairs);
        let n_u = f.unlabeled_sample.rows();
        (0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mut pairs = Vec::with_capacity(n_a + n_u);
                for a in 0..n_a {
                    pairs.push(concat_rows(f.labeled.row(a), row));
                }
                for u in 0..n_u {
                    pairs.push(concat_rows(f.unlabeled_sample.row(u), row));
                }
                if pairs.is_empty() {
                    return 0.0;
                }
                let pair_m = Matrix::from_rows(&pairs);
                let preds = self.engine.with(|e| {
                    e.score(&[(&f.net, &f.store)], &pair_m, &self.runtime, |_, row| {
                        row[0]
                    })
                });
                preds.iter().sum::<f64>() / preds.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn relation_scores_rank_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(27);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = PreNet::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.75, "anomaly AUROC {roc}");
    }

    #[test]
    fn pair_labels_are_learned() {
        // After training, an (anomaly, anomaly) pair should predict a larger
        // relation value than an (unlabeled, unlabeled) pair.
        let bundle = GeneratorSpec::quick_demo().generate(28);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = PreNet::default();
        model.fit(&view, 2).unwrap();
        let f = model.fitted.as_ref().unwrap();
        let aa = Matrix::from_rows(&[concat_rows(view.labeled.row(0), view.labeled.row(1))]);
        let uu = Matrix::from_rows(&[concat_rows(view.unlabeled.row(0), view.unlabeled.row(1))]);
        let p_aa = f.net.eval(&f.store, &aa)[(0, 0)];
        let p_uu = f.net.eval(&f.store, &uu)[(0, 0)];
        assert!(p_aa > p_uu + 2.0, "aa {p_aa} vs uu {p_uu}");
    }

    #[test]
    fn deterministic_given_seed() {
        let bundle = GeneratorSpec::quick_demo().generate(29);
        let view = TrainView::from_dataset(&bundle.train);
        let mut a = PreNet {
            steps: 50,
            ..PreNet::default()
        };
        let mut b = PreNet {
            steps: 50,
            ..PreNet::default()
        };
        a.fit(&view, 9).unwrap();
        b.fit(&view, 9).unwrap();
        assert_eq!(
            a.score(&bundle.test.features),
            b.score(&bundle.test.features)
        );
    }
}
