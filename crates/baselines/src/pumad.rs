//! PUMAD (Ju et al., Information Sciences 2020) — PU metric learning for
//! anomaly detection.
//!
//! An embedding network is trained so that *reliable normals* (filtered
//! from the unlabeled pool) collapse around a prototype while labeled
//! anomalies are pushed at least `margin` away; the anomaly score is the
//! embedding distance to the prototype.
//!
//! Simplification vs the original: the distance-hashing filter that
//! identifies reliable negatives is replaced by an embedding-space quantile
//! filter refreshed every epoch, which plays the same role (discarding
//! likely-anomalous unlabeled points from the "normal" side of the metric
//! loss).

use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::{mean_row, smallest_indices};
use crate::{Detector, TargAdError, TrainView};

/// PUMAD with the defaults used in the reproduction.
pub struct Pumad {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batch size.
    pub batch: usize,
    /// Margin pushing labeled anomalies from the prototype.
    pub margin: f64,
    /// Fraction of unlabeled data kept as reliable normals each epoch.
    pub reliable_frac: f64,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    embed: Mlp,
    prototype: Vec<f64>,
}

impl Default for Pumad {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            epochs: 30,
            lr: 1e-3,
            batch: 128,
            margin: 2.0,
            reliable_frac: 0.7,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl Pumad {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PUMAD: score before fit");
        let z = f.embed.eval(&f.store, x);
        (0..z.rows())
            .map(|r| z.row_sq_dist(r, &f.prototype))
            .collect()
    }
}

impl Detector for Pumad {
    fn name(&self) -> &'static str {
        "PUMAD"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let xl = &train.labeled;
        let mut rng = lrng::seeded(seed);
        let mut store = VarStore::new();
        let embed = Mlp::new(
            &mut store,
            &mut rng,
            &[train.dims(), 64, self.embed_dim],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(self.lr);

        let n_reliable =
            ((xu.rows() as f64 * self.reliable_frac).round() as usize).clamp(1, xu.rows());
        let mut prototype = mean_row(&embed.eval(&store, xu));

        let rt = self.runtime;
        let margin = self.margin;
        let mut step = ShardedStep::new();
        for epoch in 0..self.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            // Hashing-substitute filter: keep the unlabeled rows closest to
            // the current prototype as reliable normals.
            let z = embed.eval(&store, xu);
            let dists: Vec<f64> = (0..z.rows())
                .map(|r| z.row_sq_dist(r, &prototype))
                .collect();
            let reliable = smallest_indices(&dists, n_reliable);

            let neg_proto_row = -&Matrix::row_vector(&prototype);
            for batch in shuffled_batches(&mut rng, reliable.len(), self.batch) {
                let rows: Vec<usize> = batch.iter().map(|&b| reliable[b]).collect();
                store.zero_grads();
                let n = rows.len();
                let embed = &embed;
                let neg_proto_row = &neg_proto_row;
                let loss = step.accumulate(&rt, &mut store, n, |tape, store, range| {
                    let neg_proto = tape.input_from(neg_proto_row);
                    let xb = tape.input_rows_from(xu, &rows[range.clone()]);
                    let zb = embed.forward(tape, store, xb);
                    let centered = tape.add_row_broadcast(zb, neg_proto);
                    let dist = tape.row_sq_norm(centered);
                    let pull = tape.sum_div(dist, n as f64);
                    // Whole-set push term over the labeled pool: built
                    // once, on shard 0.
                    if xl.rows() > 0 && range.start == 0 {
                        let xa = tape.input_from(xl);
                        let za = embed.forward(tape, store, xa);
                        let ca = tape.add_row_broadcast(za, neg_proto);
                        let da = tape.row_sq_norm(ca);
                        // hinge: max(0, margin − d)
                        let neg_da = tape.scale(da, -1.0);
                        let hinge = tape.add_scalar(neg_da, margin);
                        let hinge = tape.relu(hinge);
                        let push = tape.mean_all(hinge);
                        tape.add(pull, push)
                    } else {
                        pull
                    }
                });
                epoch_loss += loss;
                batches += 1;
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
            }
            crate::common::observe_epoch("pumad", epoch, epoch_loss / batches.max(1) as f64);

            // Refresh the prototype from the reliable set.
            let z_rel = embed.eval(&store, &xu.take_rows(&reliable));
            prototype = mean_row(&z_rel);
        }

        self.fitted = Some(Fitted {
            store,
            embed,
            prototype,
        });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("PUMAD: score before fit");
        let proto = &f.prototype;
        self.engine.with(|e| {
            e.score(&[(&f.embed, &f.store)], x, &self.runtime, |_, z| {
                z.iter().zip(proto).map(|(&a, &b)| (a - b) * (a - b)).sum()
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn metric_learning_detects_anomalies() {
        let bundle = GeneratorSpec::quick_demo().generate(7);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Pumad::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.6, "anomaly AUROC {roc}");
        // The labeled guidance should make *target* anomalies rank well.
        let troc = auroc(&scores, &bundle.test.target_labels());
        assert!(troc > 0.6, "target AUROC {troc}");
    }

    #[test]
    fn labeled_anomalies_are_pushed_past_reliable_normals() {
        let bundle = GeneratorSpec::quick_demo().generate(62);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Pumad::default();
        model.fit(&view, 2).unwrap();
        let d_anom = model.score(&view.labeled);
        let d_norm = model.score(&view.unlabeled);
        let mean_a = d_anom.iter().sum::<f64>() / d_anom.len() as f64;
        let mean_n = d_norm.iter().sum::<f64>() / d_norm.len() as f64;
        assert!(
            mean_a > mean_n,
            "anomaly dist {mean_a} vs unlabeled {mean_n}"
        );
    }
}
