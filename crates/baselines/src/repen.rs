//! REPEN (Pang et al., KDD 2018) — learning low-dimensional
//! representations tailored for random-distance-based outlier detection
//! (an instantiation of the RAMODO framework).
//!
//! A LeSiNN-style ensemble seeds initial outlierness; the top-scored
//! instances form an outlier candidate pool and the bottom-scored an inlier
//! pool. A linear embedding is trained with a triplet ranking loss
//! `max(0, margin + d(anchor, inlier) − d(anchor, outlier))`, and the final
//! score is the LeSiNN ensemble distance recomputed in the learned space.
//!
//! Simplification vs the original: the candidate pools are seeded by
//! LeSiNN only (the original supports several seed detectors).

use rand::rngs::StdRng;
use rand::RngExt;
use targad_autograd::VarStore;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{Activation, Adam, EngineCell, Mlp, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::common::{largest_indices, lesinn_scores, smallest_indices};
use crate::{Detector, TargAdError, TrainView};

/// REPEN with the defaults used in the reproduction.
pub struct Repen {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Triplet training steps.
    pub steps: usize,
    /// Triplets per step.
    pub batch_triplets: usize,
    /// Hinge margin.
    pub margin: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Fraction of instances used as outlier candidates.
    pub candidate_frac: f64,
    /// LeSiNN ensemble members / subsample size.
    pub ensembles: usize,
    /// LeSiNN subsample size.
    pub psi: usize,
    runtime: Runtime,
    fitted: Option<Fitted>,
    /// Pooled inference engine shared by every scoring call (and every
    /// per-epoch probe trace) of this detector.
    engine: EngineCell,
}

struct Fitted {
    store: VarStore,
    embed: Mlp,
    reference: Matrix,
}

impl Default for Repen {
    fn default() -> Self {
        Self {
            embed_dim: 20,
            steps: 300,
            batch_triplets: 64,
            margin: 1.0,
            lr: 1e-3,
            candidate_frac: 0.05,
            ensembles: 20,
            psi: 16,
            runtime: Runtime::from_env(),
            fitted: None,
            engine: EngineCell::new(),
        }
    }
}

impl Repen {
    /// Replaces the execution runtime. Training shards deterministically,
    /// so the fitted model is bit-identical at any worker count.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reference (unfused `Mlp::eval`) scoring path, kept as the
    /// implementation the engine-backed [`Detector::score`] is
    /// exact-equality tested against.
    #[doc(hidden)]
    pub fn score_reference(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("REPEN: score before fit");
        let zx = f.embed.eval(&f.store, x);
        let zref = f.embed.eval(&f.store, &f.reference);
        let mut rng = lrng::seeded(0x5EED_5EED);
        lesinn_scores(&zx, &zref, self.ensembles, self.psi, &mut rng)
    }
}

impl Detector for Repen {
    fn name(&self) -> &'static str {
        "REPEN"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        let xu = &train.unlabeled;
        let mut rng = lrng::seeded(seed);

        // Seed outlierness and build candidate pools.
        let init = lesinn_scores(xu, xu, self.ensembles, self.psi, &mut rng);
        let n_out =
            ((xu.rows() as f64 * self.candidate_frac).round() as usize).clamp(2, xu.rows() / 2);
        let outliers = largest_indices(&init, n_out);
        let inliers = smallest_indices(&init, xu.rows() - n_out);

        let mut store = VarStore::new();
        let embed = Mlp::new(
            &mut store,
            &mut rng,
            &[train.dims(), self.embed_dim],
            Activation::None,
            Activation::Relu,
        );
        let mut opt = Adam::new(self.lr);

        let rt = self.runtime;
        let margin = self.margin;
        let mut step = ShardedStep::new();
        for train_step in 0..self.steps {
            // Triplets are sampled up front; shards slice all three
            // matrices by the same row range.
            let (anchors, positives, negatives) =
                self.triplet_batch(xu, &inliers, &outliers, &mut rng);
            store.zero_grads();
            let nt = anchors.rows();
            let embed = &embed;
            let (anchors, positives, negatives) = (&anchors, &positives, &negatives);
            let loss = step.accumulate(&rt, &mut store, nt, |tape, store, range| {
                let a = tape.input_row_slice_from(anchors, range.start, range.end);
                let p = tape.input_row_slice_from(positives, range.start, range.end);
                let n = tape.input_row_slice_from(negatives, range.start, range.end);
                let za = embed.forward(tape, store, a);
                let zp = embed.forward(tape, store, p);
                let zn = embed.forward(tape, store, n);
                let dp = tape.sub(za, zp);
                let dp = tape.row_sq_norm(dp);
                let dn = tape.sub(za, zn);
                let dn = tape.row_sq_norm(dn);
                let diff = tape.sub(dp, dn);
                let shifted = tape.add_scalar(diff, margin);
                let hinge = tape.relu(shifted);
                tape.sum_div(hinge, nt as f64)
            });
            clip_grad_norm(&mut store, 5.0);
            opt.step(&mut store);
            crate::common::observe_epoch("repen", train_step, loss);
        }

        self.fitted = Some(Fitted {
            store,
            embed,
            reference: xu.clone(),
        });
        Ok(())
    }

    fn score(&self, x: &Matrix) -> Vec<f64> {
        let f = self.fitted.as_ref().expect("REPEN: score before fit");
        let d = f.embed.out_dim();
        let mut zx = Matrix::zeros(x.rows(), d);
        let mut zref = Matrix::zeros(f.reference.rows(), d);
        self.engine.with(|e| {
            e.forward_into(&[(&f.embed, &f.store)], x, &self.runtime, &mut zx);
            e.forward_into(
                &[(&f.embed, &f.store)],
                &f.reference,
                &self.runtime,
                &mut zref,
            );
        });
        // Deterministic scoring RNG: the ensemble is part of the model.
        let mut rng = lrng::seeded(0x5EED_5EED);
        lesinn_scores(&zx, &zref, self.ensembles, self.psi, &mut rng)
    }
}

impl Repen {
    fn triplet_batch(
        &self,
        xu: &Matrix,
        inliers: &[usize],
        outliers: &[usize],
        rng: &mut StdRng,
    ) -> (Matrix, Matrix, Matrix) {
        let pick = |pool: &[usize], rng: &mut StdRng| pool[rng.random_range(0..pool.len())];
        let mut a = Vec::with_capacity(self.batch_triplets);
        let mut p = Vec::with_capacity(self.batch_triplets);
        let mut n = Vec::with_capacity(self.batch_triplets);
        for _ in 0..self.batch_triplets {
            a.push(pick(inliers, rng));
            p.push(pick(inliers, rng));
            n.push(pick(outliers, rng));
        }
        (xu.take_rows(&a), xu.take_rows(&p), xu.take_rows(&n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::auroc;

    #[test]
    fn unsupervised_detection_beats_chance() {
        let bundle = GeneratorSpec::quick_demo().generate(41);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Repen::default();
        model.fit(&view, 1).unwrap();
        let scores = model.score(&bundle.test.features);
        let roc = auroc(&scores, &bundle.test.anomaly_labels());
        assert!(roc > 0.7, "anomaly AUROC {roc}");
    }

    #[test]
    fn embedding_separates_candidate_pools() {
        let bundle = GeneratorSpec::quick_demo().generate(42);
        let view = TrainView::from_dataset(&bundle.train);
        let mut model = Repen {
            steps: 150,
            ..Repen::default()
        };
        model.fit(&view, 2).unwrap();
        // Anomalous test rows should, on average, sit farther from the
        // embedded reference set than normal rows.
        let scores = model.score(&bundle.test.features);
        let labels = bundle.test.anomaly_labels();
        let mean = |flag: bool| {
            let v: Vec<f64> = scores
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == flag)
                .map(|(&s, _)| s)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(true) > mean(false));
    }
}
