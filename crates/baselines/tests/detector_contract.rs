//! Contract tests every baseline must satisfy: determinism given a seed,
//! score-vector shape, finite scores, and basic signal on an easy
//! benchmark.

use targad_baselines::{all_baselines, TrainView};
use targad_data::GeneratorSpec;
use targad_metrics::auroc;

fn easy_bundle(seed: u64) -> targad_data::DatasetBundle {
    // Low overlap and no dropout: every detector should find *some* signal.
    let mut spec = GeneratorSpec::quick_demo();
    spec.anomaly_signature_overlap = 0.2;
    spec.signature_dropout = 0.0;
    spec.generate(seed)
}

#[test]
fn all_detectors_fit_and_score() {
    let bundle = easy_bundle(101);
    let view = TrainView::from_dataset(&bundle.train);
    for mut detector in all_baselines() {
        detector.fit(&view, 11).unwrap();
        let scores = detector.score(&bundle.test.features);
        assert_eq!(scores.len(), bundle.test.len(), "{}", detector.name());
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{} produced non-finite scores",
            detector.name()
        );
    }
}

#[test]
fn all_detectors_are_deterministic() {
    let bundle = easy_bundle(102);
    let view = TrainView::from_dataset(&bundle.train);
    for name in all_baselines().iter().map(|d| d.name()) {
        let mut a = targad_baselines::all_baselines()
            .into_iter()
            .find(|d| d.name() == name)
            .unwrap();
        let mut b = targad_baselines::all_baselines()
            .into_iter()
            .find(|d| d.name() == name)
            .unwrap();
        a.fit(&view, 5).unwrap();
        b.fit(&view, 5).unwrap();
        assert_eq!(
            a.score(&bundle.test.features),
            b.score(&bundle.test.features),
            "{name} is not deterministic"
        );
    }
}

#[test]
fn all_detectors_beat_chance_on_easy_data() {
    let bundle = easy_bundle(103);
    let view = TrainView::from_dataset(&bundle.train);
    let labels = bundle.test.anomaly_labels();
    let target_labels = bundle.test.target_labels();
    for mut detector in all_baselines() {
        detector.fit(&view, 3).unwrap();
        let scores = detector.score(&bundle.test.features);
        let any = auroc(&scores, &labels);
        let target = auroc(&scores, &target_labels);
        // Each detector must carry real signal on at least one of the two
        // rankings (supervised ones may specialize toward targets).
        assert!(
            any.max(target) > 0.7,
            "{}: anomaly AUROC {any:.3}, target AUROC {target:.3}",
            detector.name()
        );
    }
}

#[test]
fn scores_respond_to_labeled_data() {
    // Semi-supervised detectors trained with vs without labels should
    // produce different scores (the labels must matter).
    let bundle = easy_bundle(104);
    let with = TrainView::from_dataset(&bundle.train);
    let mut unlabeled_train = bundle.train.clone();
    unlabeled_train.labeled.iter_mut().for_each(|l| *l = false);
    let without = TrainView::from_dataset(&unlabeled_train);
    assert_eq!(without.labeled.rows(), 0);

    for name in ["DevNet", "DeepSAD", "PReNet", "FEAWAD", "PUMAD"] {
        let mut a = targad_baselines::all_baselines()
            .into_iter()
            .find(|d| d.name() == name)
            .unwrap();
        let mut b = targad_baselines::all_baselines()
            .into_iter()
            .find(|d| d.name() == name)
            .unwrap();
        a.fit(&with, 7).unwrap();
        b.fit(&without, 7).unwrap();
        assert_ne!(
            a.score(&bundle.test.features),
            b.score(&bundle.test.features),
            "{name} ignores its labeled anomalies"
        );
    }
}
