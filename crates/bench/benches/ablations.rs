//! Criterion benchmarks of TargAD's design-choice ablations: how much
//! time each mechanism costs (per-cluster AEs vs one AE, weight updates,
//! OE/RE terms, Adam vs SGD).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use targad_core::{TargAd, TargAdConfig};
use targad_data::GeneratorSpec;

fn base_config() -> TargAdConfig {
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 5;
    cfg.clf_epochs = 8;
    cfg
}

fn fit_with(cfg: TargAdConfig) -> TargAd {
    let bundle = GeneratorSpec::quick_demo().generate(11);
    let mut model = TargAd::try_new(cfg).expect("valid config");
    model.fit(&bundle.train, 3).expect("fit");
    model
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("targad_fit_variants");
    group.sample_size(10);

    group.bench_function("full", |b| b.iter(|| black_box(fit_with(base_config()))));
    group.bench_function("single_global_ae", |b| {
        b.iter(|| {
            let mut cfg = base_config();
            cfg.k = Some(1);
            black_box(fit_with(cfg))
        })
    });
    group.bench_function("frozen_weights", |b| {
        b.iter(|| {
            let mut cfg = base_config();
            cfg.update_weights = false;
            black_box(fit_with(cfg))
        })
    });
    group.bench_function("no_oe_no_re", |b| {
        b.iter(|| {
            let mut cfg = base_config();
            cfg.use_oe = false;
            cfg.use_re = false;
            black_box(fit_with(cfg))
        })
    });
    group.bench_function("sgd_classifier", |b| {
        b.iter(|| {
            let mut cfg = base_config();
            cfg.clf_sgd = true;
            black_box(fit_with(cfg))
        })
    });
    group.finish();
}

criterion_group!(ablations, bench_variants);
criterion_main!(ablations);
