//! Scoring-path micro-benchmarks: the pooled [`ScoreEngine`] (fused
//! bias+activation epilogues, ping-pong scratch, row-block streaming)
//! against the retained reference chain (`Mlp::eval_rt` → full softmax
//! matrix → per-row max) on a TargAD-shaped classifier, at 1k and 100k
//! rows and 1 and 4 workers. Writes `results/bench_inference.json`; the
//! recorded `speedup_engine_100k_1worker` is the acceptance metric for the
//! inference-engine rewrite (must stay ≥ 1.5).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this
//! to catch scoring-path regressions without paying full budgets).

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;
use targad_autograd::VarStore;
use targad_core::Runtime;
use targad_linalg::rng as lrng;
use targad_nn::{Activation, Mlp, ScoreEngine};

/// Target classes `m` of the benchmark classifier (out of `m + k = 6`).
const M: usize = 3;

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the session's sampling budget to a group: tiny in quick mode,
/// enough samples for stable means otherwise.
fn tune<'a, 'b>(
    group: &'a mut criterion::BenchmarkGroup<'b>,
) -> &'a mut criterion::BenchmarkGroup<'b> {
    if quick_mode() {
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(25))
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
    }
}

/// The Eq. 9 finish on one logit row: softmax (max-shifted, ascending
/// accumulation) and the best target-class probability. Shared by both
/// paths so the benchmark isolates the forward pass + data movement.
fn target_score_row(z: &[f64]) -> f64 {
    let mx = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    let mut best = f64::NEG_INFINITY;
    for (j, &v) in z.iter().enumerate() {
        let e = (v - mx).exp();
        sum += e;
        if j < M {
            best = best.max(e);
        }
    }
    best / sum
}

/// Engine vs reference on the TargAD classifier shape
/// (`d=16 → 64 → 64 → m+k=6`), the `100k×(m+k)` scoring acceptance case
/// plus a small-batch case where per-call overhead dominates.
fn bench_scoring(c: &mut Criterion) {
    let mut rng = lrng::seeded(31);
    let mut vs = VarStore::new();
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[16, 64, 64, 2 * M],
        Activation::Relu,
        Activation::None,
    );
    for rows in [1_000usize, 100_000] {
        let x = lrng::normal_matrix(&mut rng, rows, 16, 0.0, 1.0);
        let label = if rows == 1_000 { "1k" } else { "100k" };
        let mut group = c.benchmark_group(format!("score_{label}"));
        tune(&mut group);
        for workers in [1usize, 4] {
            let rt = Runtime::new(workers);
            // Reference: unfused eval_rt (one matrix per layer, separate
            // bias and activation passes), then a per-row Eq. 9 finish.
            group.bench_function(format!("reference/workers{workers}"), |b| {
                b.iter(|| {
                    let z = mlp.eval_rt(&vs, &x, &rt);
                    let scores: Vec<f64> =
                        (0..z.rows()).map(|r| target_score_row(z.row(r))).collect();
                    black_box(scores)
                });
            });
            // Engine: fused epilogues, pooled scratch, zero steady-state
            // allocations (`out` and the engine pools are reused).
            let mut engine = ScoreEngine::new();
            let mut out = vec![0.0; rows];
            group.bench_function(format!("engine/workers{workers}"), |b| {
                b.iter(|| {
                    engine.score_into(
                        &[(&mlp, &vs)],
                        &x,
                        &rt,
                        |_, z| target_score_row(z),
                        &mut out,
                    );
                    black_box(out[rows - 1])
                });
            });
        }
        group.finish();
    }
}

/// Writes `results/bench_inference.json`: every benchmark mean, rows/sec
/// for each configuration, and the engine-vs-reference speedups. The
/// acceptance metric is `speedup_engine_100k_1worker` (≥ 1.5 required).
fn write_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let rows_of = |name: &str| {
        if name.starts_with("score_1k") {
            1_000.0
        } else {
            100_000.0
        }
    };
    let ratio = |reference: f64, engine: f64| {
        if engine > 0.0 {
            reference / engine
        } else {
            0.0
        }
    };

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, mean)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let rps = if *mean > 0.0 {
            rows_of(name) / mean
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e}, \"rows_per_sec\": {rps:.0} }}{comma}\n"
        ));
    }
    let s1k_1 = ratio(
        mean_of("score_1k/reference/workers1"),
        mean_of("score_1k/engine/workers1"),
    );
    let s100k_1 = ratio(
        mean_of("score_100k/reference/workers1"),
        mean_of("score_100k/engine/workers1"),
    );
    let s100k_4 = ratio(
        mean_of("score_100k/reference/workers4"),
        mean_of("score_100k/engine/workers4"),
    );
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    out.push_str(&format!(
        "  ],\n  \"host_parallelism\": {host},\n  \"speedup_engine_1k_1worker\": {s1k_1:.2},\n  \"speedup_engine_100k_1worker\": {s100k_1:.2},\n  \"speedup_engine_100k_4workers\": {s100k_4:.2}\n}}\n"
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_inference.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_inference.json");
    println!(
        "\nwrote {} (100k single-worker engine speedup {s100k_1:.2}x)",
        path.display()
    );
}

/// Sanity outside the timing loop: the engine and the reference produce
/// bit-identical scores on the benchmark model (the real contract lives in
/// `tests/engine_identity.rs`; this guards the bench itself).
fn check_identity() {
    let mut rng = lrng::seeded(31);
    let mut vs = VarStore::new();
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[16, 64, 64, 2 * M],
        Activation::Relu,
        Activation::None,
    );
    let x = lrng::normal_matrix(&mut rng, 777, 16, 0.0, 1.0);
    let rt = Runtime::new(4);
    let z = mlp.eval_rt(&vs, &x, &rt);
    let reference: Vec<f64> = (0..z.rows()).map(|r| target_score_row(z.row(r))).collect();
    let mut engine = ScoreEngine::new();
    let engine_scores = engine.score(&[(&mlp, &vs)], &x, &rt, |_, row| target_score_row(row));
    assert_eq!(
        engine_scores
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "bench model: engine diverged from reference"
    );
}

fn main() {
    check_identity();
    let mut criterion = Criterion::default();
    bench_scoring(&mut criterion);
    write_json(criterion.results());
}
