//! Scoring-path micro-benchmarks: the pooled [`ScoreEngine`] (fused
//! bias+activation epilogues, ping-pong scratch, row-block streaming)
//! against the retained reference chain (`Mlp::eval_rt` → full softmax
//! matrix → per-row max) on a TargAD-shaped classifier, at 1k and 100k
//! rows and 1 and 4 workers — plus the f32 SIMD engine (`F32Plan` over the
//! `targad-linalg` micro-kernels) in the same sweep. Writes
//! `results/bench_inference.json`; the recorded
//! `speedup_engine_100k_1worker` is the acceptance metric for the
//! inference-engine rewrite (must stay ≥ 1.5), and
//! `speedup_f32_over_f64_100k_1worker` is the acceptance metric for the
//! f32 kernels (must reach ≥ 2.0 on an AVX2+FMA host). The JSON also
//! records the host's CPU features and which kernel path dispatched, so a
//! recorded number can never be misread against the wrong hardware.
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this
//! to catch scoring-path regressions without paying full budgets).

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;
use targad_autograd::VarStore;
use targad_core::Runtime;
use targad_linalg::f32kernel;
use targad_linalg::rng as lrng;
use targad_nn::{Activation, F32Plan, Mlp, ScoreEngine};

/// Target classes `m` of the benchmark classifier (out of `m + k = 6`).
const M: usize = 3;

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the session's sampling budget to a group: tiny in quick mode,
/// enough samples for stable means otherwise.
fn tune<'a, 'b>(
    group: &'a mut criterion::BenchmarkGroup<'b>,
) -> &'a mut criterion::BenchmarkGroup<'b> {
    if quick_mode() {
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(25))
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
    }
}

/// The Eq. 9 finish on one logit row: softmax (max-shifted, ascending
/// accumulation) and the best target-class probability. Shared by both
/// paths so the benchmark isolates the forward pass + data movement.
fn target_score_row(z: &[f64]) -> f64 {
    let mx = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    let mut best = f64::NEG_INFINITY;
    for (j, &v) in z.iter().enumerate() {
        let e = (v - mx).exp();
        sum += e;
        if j < M {
            best = best.max(e);
        }
    }
    best / sum
}

/// The same finish in f32 arithmetic (the serving path widens only the
/// final ratio), so the f32 sweep measures an all-f32 pipeline.
fn target_score_row_f32(z: &[f32]) -> f64 {
    let mx = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    let mut best = f32::NEG_INFINITY;
    for (j, &v) in z.iter().enumerate() {
        let e = (v - mx).exp();
        sum += e;
        if j < M {
            best = best.max(e);
        }
    }
    f64::from(best) / f64::from(sum)
}

/// Engine vs reference on the TargAD classifier shape
/// (`d=16 → 64 → 64 → m+k=6`), the `100k×(m+k)` scoring acceptance case
/// plus a small-batch case where per-call overhead dominates.
fn bench_scoring(c: &mut Criterion) {
    let mut rng = lrng::seeded(31);
    let mut vs = VarStore::new();
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[16, 64, 64, 2 * M],
        Activation::Relu,
        Activation::None,
    );
    for rows in [1_000usize, 100_000] {
        let x = lrng::normal_matrix(&mut rng, rows, 16, 0.0, 1.0);
        let label = if rows == 1_000 { "1k" } else { "100k" };
        let mut group = c.benchmark_group(format!("score_{label}"));
        tune(&mut group);
        for workers in [1usize, 4] {
            let rt = Runtime::new(workers);
            // Reference: unfused eval_rt (one matrix per layer, separate
            // bias and activation passes), then a per-row Eq. 9 finish.
            group.bench_function(format!("reference/workers{workers}"), |b| {
                b.iter(|| {
                    let z = mlp.eval_rt(&vs, &x, &rt);
                    let scores: Vec<f64> =
                        (0..z.rows()).map(|r| target_score_row(z.row(r))).collect();
                    black_box(scores)
                });
            });
            // Engine: fused epilogues, pooled scratch, zero steady-state
            // allocations (`out` and the engine pools are reused).
            let mut engine = ScoreEngine::new();
            let mut out = vec![0.0; rows];
            group.bench_function(format!("engine/workers{workers}"), |b| {
                b.iter(|| {
                    engine.score_into(
                        &[(&mlp, &vs)],
                        &x,
                        &rt,
                        |_, z| target_score_row(z),
                        &mut out,
                    );
                    black_box(out[rows - 1])
                });
            });
            // f32 engine: the same fused pipeline through the SIMD
            // micro-kernels, weights cast + panel-packed once up front.
            let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
            let mut engine_f32 = ScoreEngine::new();
            let mut out_f32 = vec![0.0; rows];
            group.bench_function(format!("engine_f32/workers{workers}"), |b| {
                b.iter(|| {
                    engine_f32.score_f32_into(
                        &plan,
                        &x,
                        &rt,
                        |_, z| target_score_row_f32(z),
                        &mut out_f32,
                    );
                    black_box(out_f32[rows - 1])
                });
            });
        }
        group.finish();
    }
}

/// Writes `results/bench_inference.json`: every benchmark mean, rows/sec
/// for each configuration, and the engine-vs-reference speedups. The
/// acceptance metric is `speedup_engine_100k_1worker` (≥ 1.5 required).
fn write_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let rows_of = |name: &str| {
        if name.starts_with("score_1k") {
            1_000.0
        } else {
            100_000.0
        }
    };
    let ratio = |reference: f64, engine: f64| {
        if engine > 0.0 {
            reference / engine
        } else {
            0.0
        }
    };

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, mean)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let rps = if *mean > 0.0 {
            rows_of(name) / mean
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e}, \"rows_per_sec\": {rps:.0} }}{comma}\n"
        ));
    }
    let s1k_1 = ratio(
        mean_of("score_1k/reference/workers1"),
        mean_of("score_1k/engine/workers1"),
    );
    let s100k_1 = ratio(
        mean_of("score_100k/reference/workers1"),
        mean_of("score_100k/engine/workers1"),
    );
    let s100k_4 = ratio(
        mean_of("score_100k/reference/workers4"),
        mean_of("score_100k/engine/workers4"),
    );
    // f32-over-f64: both numerators are the *fused engine*, so the ratio
    // isolates the precision/SIMD win from the fusion win already counted
    // above.
    let f32_1k_1 = ratio(
        mean_of("score_1k/engine/workers1"),
        mean_of("score_1k/engine_f32/workers1"),
    );
    let f32_100k_1 = ratio(
        mean_of("score_100k/engine/workers1"),
        mean_of("score_100k/engine_f32/workers1"),
    );
    let f32_100k_4 = ratio(
        mean_of("score_100k/engine/workers4"),
        mean_of("score_100k/engine_f32/workers4"),
    );
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let features = f32kernel::cpu_features();
    out.push_str(&format!(
        "  ],\n  \"host_parallelism\": {host},\n  \"cpu_features\": {{ \"avx2\": {}, \"fma\": {} }},\n  \"f32_kernel_path\": \"{}\",\n  \"speedup_engine_1k_1worker\": {s1k_1:.2},\n  \"speedup_engine_100k_1worker\": {s100k_1:.2},\n  \"speedup_engine_100k_4workers\": {s100k_4:.2},\n  \"speedup_f32_over_f64_1k_1worker\": {f32_1k_1:.2},\n  \"speedup_f32_over_f64_100k_1worker\": {f32_100k_1:.2},\n  \"speedup_f32_over_f64_100k_4workers\": {f32_100k_4:.2}\n}}\n",
        features.avx2,
        features.fma,
        f32kernel::kernel_path().name(),
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_inference.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_inference.json");
    println!(
        "\nwrote {} (100k single-worker: engine {s100k_1:.2}x over reference, f32 {f32_100k_1:.2}x over f64 engine on the {} path)",
        path.display(),
        f32kernel::kernel_path().name(),
    );
}

/// Sanity outside the timing loop: the engine and the reference produce
/// bit-identical scores on the benchmark model (the real contract lives in
/// `tests/engine_identity.rs`; this guards the bench itself).
fn check_identity() {
    let mut rng = lrng::seeded(31);
    let mut vs = VarStore::new();
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[16, 64, 64, 2 * M],
        Activation::Relu,
        Activation::None,
    );
    let x = lrng::normal_matrix(&mut rng, 777, 16, 0.0, 1.0);
    let rt = Runtime::new(4);
    let z = mlp.eval_rt(&vs, &x, &rt);
    let reference: Vec<f64> = (0..z.rows()).map(|r| target_score_row(z.row(r))).collect();
    let mut engine = ScoreEngine::new();
    let engine_scores = engine.score(&[(&mlp, &vs)], &x, &rt, |_, row| target_score_row(row));
    assert_eq!(
        engine_scores
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "bench model: engine diverged from reference"
    );
    // The f32 sweep must benchmark a *correct* pipeline: every f32 score
    // within f32 rounding of the f64 oracle (bit-exactness vs the scalar
    // f32 reference is pinned in `targad-linalg`'s property tests).
    let plan = F32Plan::from_stack(&[(&mlp, &vs)]);
    let f32_scores = engine.score_f32(&plan, &x, &rt, |_, row| target_score_row_f32(row));
    for (r, (&f32_score, &oracle)) in f32_scores.iter().zip(&reference).enumerate() {
        assert!(
            (f32_score - oracle).abs() < 1e-3,
            "bench model row {r}: f32 score {f32_score} drifted from f64 oracle {oracle}"
        );
    }
}

fn main() {
    check_identity();
    let mut criterion = Criterion::default();
    bench_scoring(&mut criterion);
    write_json(criterion.results());
}
