//! Criterion micro-benchmarks for the numeric kernels behind TargAD:
//! matmul variants, softmax, metric computation, k-means assignment, and
//! isolation-forest scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use targad_baselines::{Detector, IForest, TrainView};
use targad_cluster::{KMeans, KMeansConfig};
use targad_linalg::{rng as lrng, Matrix};
use targad_metrics::{auroc, average_precision};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let mut rng = lrng::seeded(1);
        let a = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        let b = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = lrng::seeded(2);
    let logits = lrng::normal_matrix(&mut rng, 1024, 16, 0.0, 2.0);
    c.bench_function("softmax_rows_1024x16", |b| {
        b.iter(|| black_box(logits.softmax_rows()));
    });
    c.bench_function("log_softmax_rows_1024x16", |b| {
        b.iter(|| black_box(logits.log_softmax_rows()));
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = lrng::seeded(3);
    let n = 20_000;
    let scores: Vec<f64> = (0..n).map(|_| lrng::normal(&mut rng, 0.0, 1.0)).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 17 == 0).collect();
    c.bench_function("auroc_20k", |b| {
        b.iter(|| black_box(auroc(&scores, &labels)));
    });
    c.bench_function("average_precision_20k", |b| {
        b.iter(|| black_box(average_precision(&scores, &labels)));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = lrng::seeded(4);
    let data = lrng::uniform_matrix(&mut rng, 2_000, 32, 0.0, 1.0);
    c.bench_function("kmeans_fit_2000x32_k4", |b| {
        b.iter(|| black_box(KMeans::fit(&data, KMeansConfig::new(4), 7)));
    });
    let km = KMeans::fit(&data, KMeansConfig::new(4), 7);
    c.bench_function("kmeans_predict_2000x32", |b| {
        b.iter(|| black_box(km.predict(&data)));
    });
}

fn bench_iforest(c: &mut Criterion) {
    let mut rng = lrng::seeded(5);
    let data = lrng::uniform_matrix(&mut rng, 4_096, 32, 0.0, 1.0);
    let view = TrainView::from_matrices(Matrix::zeros(0, 32), data.clone());
    c.bench_function("iforest_fit_4096x32", |b| {
        b.iter(|| {
            let mut forest = IForest::default();
            forest.fit(&view, 3).expect("fit");
            black_box(forest)
        });
    });
    let mut forest = IForest::default();
    forest.fit(&view, 3).expect("fit");
    c.bench_function("iforest_score_4096x32", |b| {
        b.iter(|| black_box(forest.score(&data)));
    });
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_softmax,
    bench_metrics,
    bench_kmeans,
    bench_iforest
);
criterion_main!(kernels);
