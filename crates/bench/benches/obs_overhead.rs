//! Telemetry overhead benchmark: the same end-to-end `TargAd::fit` with
//! the global telemetry gate off (the default), on (metrics + phase
//! spans), and on with a JSONL event sink attached. Writes
//! `results/bench_obs.json` with the measured enabled-vs-disabled
//! overhead; the ISSUE acceptance target is < 2% with telemetry enabled
//! and ~0% when disabled (the disabled path is a handful of relaxed
//! atomic loads per step).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_obs::sink::JsonlSink;

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn tune<'a, 'b>(
    group: &'a mut criterion::BenchmarkGroup<'b>,
) -> &'a mut criterion::BenchmarkGroup<'b> {
    if quick_mode() {
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(25))
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
    }
}

fn fit_config() -> TargAdConfig {
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    cfg
}

/// End-to-end fit under the three telemetry states. All three train the
/// same model — telemetry is read-only by contract (asserted bit-exactly
/// in `tests/obs_smoke.rs`); only wall-clock may differ.
fn bench_obs_fit(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(29);
    let cfg = fit_config();
    let mut group = c.benchmark_group("obs_fit");
    tune(&mut group);

    targad_obs::set_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let mut model = TargAd::try_new(cfg.clone())
                .expect("valid config")
                .with_runtime(Runtime::new(2));
            model.fit(&bundle.train, 7).expect("fit");
            black_box(model.history().clf_loss.len())
        });
    });

    targad_obs::set_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let mut model = TargAd::try_new(cfg.clone())
                .expect("valid config")
                .with_runtime(Runtime::new(2));
            model.fit(&bundle.train, 7).expect("fit");
            black_box(model.history().clf_loss.len())
        });
    });

    group.bench_function("enabled_jsonl", |b| {
        b.iter(|| {
            let mut model = TargAd::try_new(cfg.clone())
                .expect("valid config")
                .with_runtime(Runtime::new(2));
            let mut sink = JsonlSink::new(std::io::sink());
            model
                .fit_observed(&bundle.train, 7, &mut sink)
                .expect("fit");
            black_box(model.history().clf_loss.len())
        });
    });

    targad_obs::set_enabled(false);
    group.finish();
}

/// Writes `results/bench_obs.json`: the three fit means and the relative
/// overhead of each telemetry state over the disabled baseline.
fn write_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let disabled = mean_of("obs_fit/disabled");
    let enabled = mean_of("obs_fit/enabled");
    let jsonl = mean_of("obs_fit/enabled_jsonl");
    let pct = |v: f64| {
        if disabled > 0.0 {
            (v / disabled - 1.0) * 100.0
        } else {
            0.0
        }
    };

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, mean)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"overhead_enabled_pct\": {:.2},\n  \"overhead_enabled_jsonl_pct\": {:.2},\n  \"target_enabled_pct\": 2.0\n}}\n",
        pct(enabled),
        pct(jsonl),
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_obs.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_obs.json");
    println!(
        "\nwrote {} (telemetry overhead {:.2}%, with JSONL sink {:.2}%)",
        path.display(),
        pct(enabled),
        pct(jsonl)
    );
}

fn main() {
    let mut criterion = Criterion::default();
    bench_obs_fit(&mut criterion);
    write_json(criterion.results());
}
