//! Criterion benchmarks of the TargAD training pipeline stages on a small
//! seeded benchmark: candidate selection, full fit, and scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use targad_core::candidate::CandidateSelection;
use targad_core::{TargAd, TargAdConfig};
use targad_data::GeneratorSpec;

fn tiny_config() -> TargAdConfig {
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 5;
    cfg.clf_epochs = 8;
    cfg
}

fn bench_candidate_selection(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(1);
    let (xu, _) = bundle.train.unlabeled_view();
    let (xl, _) = bundle.train.labeled_view();
    let cfg = tiny_config();
    c.bench_function("candidate_selection_600x12", |b| {
        b.iter(|| black_box(CandidateSelection::run(&xu, &xl, &cfg, 3)));
    });
}

fn bench_full_fit(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(2);
    c.bench_function("targad_fit_quick_demo", |b| {
        b.iter(|| {
            let mut model = TargAd::try_new(tiny_config()).expect("valid config");
            model.fit(&bundle.train, 5).expect("fit");
            black_box(model)
        });
    });
}

fn bench_scoring(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(3);
    let mut model = TargAd::try_new(tiny_config()).expect("valid config");
    model.fit(&bundle.train, 7).expect("fit");
    c.bench_function("targad_score_400x12", |b| {
        b.iter(|| black_box(model.try_score_matrix(&bundle.test.features)));
    });
}

criterion_group!(
    pipeline,
    bench_candidate_selection,
    bench_full_fit,
    bench_scoring
);
criterion_main!(pipeline);
