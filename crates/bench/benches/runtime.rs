//! Serial vs parallel timings for every runtime-accelerated path: the
//! matmul kernels, iForest build/score, TargAD scoring, and the full
//! `run_suite` grid. Besides the usual console report, this bench writes
//! `results/bench_runtime.json` at the workspace root so speedups can be
//! tracked across machines (on a single-core host the parallel rows
//! simply confirm the overhead is bounded — results are bit-identical
//! either way, which `tests/determinism.rs` asserts).

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;
use targad_baselines::{Detector, IForest, TrainView};
use targad_bench::{harness_config, run_suite_rt};
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::rng as lrng;

/// The worker counts compared: always serial, plus the environment's
/// parallel runtime (falling back to two workers on a single-core host so
/// the parallel path is still exercised).
fn parallel_runtime() -> Runtime {
    let env = Runtime::from_env();
    if env.threads() > 1 {
        env
    } else {
        Runtime::new(2)
    }
}

fn bench_matmul(c: &mut Criterion) {
    let rt = parallel_runtime();
    for n in [192usize, 512] {
        let mut rng = lrng::seeded(1);
        let a = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        let b = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        let mut group = c.benchmark_group(format!("runtime_matmul_{n}"));
        if n >= 512 {
            group.sample_size(10);
        }
        group.bench_function("serial", |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_function(format!("threads{}", rt.threads()), |bench| {
            bench.iter(|| black_box(a.matmul_rt(&b, &rt)));
        });
        group.finish();
    }
}

fn bench_iforest(c: &mut Criterion) {
    let mut rng = lrng::seeded(2);
    let data = lrng::uniform_matrix(&mut rng, 2_048, 16, 0.0, 1.0);
    let view = TrainView::from_matrices(targad_linalg::Matrix::zeros(0, 16), data.clone());
    let rt = parallel_runtime();
    let mut group = c.benchmark_group("runtime_iforest_2048x16");
    for (label, runtime) in [("serial", Runtime::serial()), ("parallel", rt)] {
        let label = if label == "serial" {
            "serial".to_string()
        } else {
            format!("threads{}", runtime.threads())
        };
        group.bench_function(format!("fit/{label}"), |bench| {
            bench.iter(|| {
                let mut forest = IForest::new(50, 128).with_runtime(runtime);
                forest.fit(&view, 3).expect("fit");
                black_box(forest)
            });
        });
        let mut forest = IForest::new(50, 128).with_runtime(runtime);
        forest.fit(&view, 3).expect("fit");
        group.bench_function(format!("score/{label}"), |bench| {
            bench.iter(|| black_box(forest.score(&data)));
        });
    }
    group.finish();
}

fn bench_targad_score(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(5);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let rt = parallel_runtime();
    let mut group = c.benchmark_group("runtime_targad_score");
    for (label, runtime) in [
        ("serial".to_string(), Runtime::serial()),
        (format!("threads{}", rt.threads()), rt),
    ] {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(runtime);
        model.fit(&bundle.train, 7).expect("fit");
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(model.try_score_dataset(&bundle.test).expect("fitted")));
        });
    }
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let mut spec = GeneratorSpec::quick_demo();
    spec.train_unlabeled = 150;
    let bundle = spec.generate(9);
    let mut cfg = harness_config(spec.normal_groups);
    cfg.ae_epochs = 1;
    cfg.clf_epochs = 2;
    let seeds = [1u64];
    let rt = parallel_runtime();
    let mut group = c.benchmark_group("runtime_suite_12models_1seed");
    group
        .sample_size(2)
        .measurement_time(Duration::from_millis(50));
    for (label, runtime) in [
        ("serial".to_string(), Runtime::serial()),
        (format!("threads{}", rt.threads()), rt),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(run_suite_rt(&bundle, &cfg, &seeds, runtime)));
        });
    }
    group.finish();
}

/// Writes the collected means as JSON next to the other `results/` files
/// (the workspace root, resolved from this crate's manifest directory).
fn write_json(results: &[(String, f64)]) {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, mean)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_runtime.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_runtime.json");
    println!("\nwrote {}", path.display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_matmul(&mut criterion);
    bench_iforest(&mut criterion);
    bench_targad_score(&mut criterion);
    bench_suite(&mut criterion);
    write_json(criterion.results());
}
