//! Training-path micro-benchmarks: one pooled-tape optimizer step for the
//! per-cluster autoencoder (Eq. 1) and the m+k classifier (Eqs. 3–8) at
//! three matrix sizes, plus the classifier's dominant GEMM sequence
//! (forward `x·w`, backward `x^T·g` and `g·w^T` at 1024×256×256) timed on
//! both the blocked kernels and the retained pre-blocking `reference`
//! kernels, plus the Table II shape sweep timing the default training
//! path (fused backward + tiled small GEMMs + dead-gradient pruning)
//! against the reproduced pre-PR path with arms interleaved in-process.
//! Writes `results/bench_training.json`; the recorded
//! `speedup_clf_gemm_1024x256x256` is the acceptance metric for the
//! blocked-GEMM rewrite (must stay ≥ 2) and `speedup_step_table2` the one
//! for the training fast path (≥ 1.4×).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this to
//! catch kernel regressions without paying full measurement budgets).

use criterion::Criterion;
use std::hint::black_box;
use std::time::{Duration, Instant};
use targad_autograd::{force_grad_prune, Tape, VarStore};
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::{force_small_gemm, matrix::reference, rng as lrng, Matrix};
use targad_nn::{force_fused_backward, Activation, Adam, AutoEncoder, Mlp, Optimizer};

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the session's sampling budget to a group: tiny in quick mode,
/// enough samples for stable means otherwise.
fn tune<'a, 'b>(
    group: &'a mut criterion::BenchmarkGroup<'b>,
) -> &'a mut criterion::BenchmarkGroup<'b> {
    if quick_mode() {
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(25))
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
    }
}

/// One pooled-tape autoencoder step (Eq. 1 without the labeled term):
/// forward reconstruction, mean squared-error loss, backward, Adam update.
fn bench_ae_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_ae_step");
    tune(&mut group);
    for (batch, d) in [(128usize, 32usize), (256, 64), (512, 128)] {
        let mut rng = lrng::seeded(11);
        let x = lrng::uniform_matrix(&mut rng, batch, d, 0.0, 1.0);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[d, d / 2, d / 4]);
        let mut opt = Adam::new(1e-3);
        let mut tape = Tape::new();
        group.bench_function(format!("{batch}x{d}"), |b| {
            b.iter(|| {
                vs.zero_grads();
                tape.reset();
                let xv = tape.input_from(&x);
                let err = ae.recon_error_rows(&mut tape, &vs, xv);
                let loss = tape.mean_all(err);
                tape.backward(loss, &mut vs);
                opt.step(&mut vs);
                black_box(tape.value(loss)[(0, 0)])
            });
        });
    }
    group.finish();
}

/// The classifier-step shape sweep (batch, input, hidden): the
/// `1024x256x256` entry is the acceptance-criteria size.
const CLF_SHAPES: [(usize, usize, usize); 3] = [(256, 64, 64), (512, 128, 128), (1024, 256, 256)];

/// One pooled-tape classifier step on the fused default path: MLP forward
/// (one `Dense` node per layer), cross-entropy against one-hot
/// pseudo-labels, backward, Adam update.
fn bench_clf_step(c: &mut Criterion) {
    let _arm = targad_nn::force_fused_backward(true);
    let mut group = c.benchmark_group("training_clf_step");
    tune(&mut group);
    for (batch, d, hidden) in CLF_SHAPES {
        let classes = 8usize;
        let mut rng = lrng::seeded(13);
        let x = lrng::normal_matrix(&mut rng, batch, d, 0.0, 1.0);
        let y = Matrix::from_fn(batch, classes, |r, c| f64::from(r % classes == c));
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[d, hidden, classes],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(1e-3);
        let mut tape = Tape::new();
        group.bench_function(format!("{batch}x{d}x{hidden}"), |b| {
            b.iter(|| {
                vs.zero_grads();
                tape.reset();
                let xv = tape.input_from(&x);
                let yv = tape.input_from(&y);
                let z = mlp.forward(&mut tape, &vs, xv);
                let lp = tape.log_softmax_rows(z);
                let prod = tape.mul(yv, lp);
                let total = tape.sum_all(prod);
                let loss = tape.scale(total, -1.0 / batch as f64);
                tape.backward(loss, &mut vs);
                opt.step(&mut vs);
                black_box(tape.value(loss)[(0, 0)])
            });
        });
    }
    group.finish();
}

/// Per-step speedup of the fused backward over the retained unfused
/// triplet (`speedup_step_fused_*` in the JSON), with the small-GEMM and
/// pruning gates at their defaults in both arms so only fusion differs.
/// Measured on the Table II classifier shards — the workload the fused
/// small-path kernels were built for — with the same interleaved,
/// order-alternating, min-of-rounds protocol as the Table II sweep:
/// criterion's independent groups drift too much on shared hosts for a
/// cross-group ratio to mean anything.
fn measure_fused_step() -> Vec<(String, f64)> {
    let (warmup, iters, rounds) = if quick_mode() { (2, 3, 1) } else { (20, 60, 5) };
    let mut out = Vec::new();
    for d in TABLE2_DIMS {
        let batch = 128usize;
        let mut fused_arm = ClfArm::new(batch, d);
        let mut unfused_arm = ClfArm::new(batch, d);
        let mut best_fused = u64::MAX;
        let mut best_unfused = u64::MAX;
        for round in 0..rounds {
            let warmup = if round == 0 { warmup } else { 0 };
            let mut fused_ns = 0u64;
            let mut unfused_ns = 0u64;
            for i in 0..warmup + iters {
                let run = |fused: bool, arm: &mut ClfArm, ns: &mut u64| {
                    let _f = force_fused_backward(fused);
                    let t0 = Instant::now();
                    arm.step();
                    if i >= warmup {
                        *ns += t0.elapsed().as_nanos() as u64;
                    }
                };
                if i % 2 == 0 {
                    run(true, &mut fused_arm, &mut fused_ns);
                    run(false, &mut unfused_arm, &mut unfused_ns);
                } else {
                    run(false, &mut unfused_arm, &mut unfused_ns);
                    run(true, &mut fused_arm, &mut fused_ns);
                }
            }
            best_fused = best_fused.min(fused_ns);
            best_unfused = best_unfused.min(unfused_ns);
        }
        let speedup = best_unfused as f64 / best_fused.max(1) as f64;
        println!(
            "fused-step clf {batch}x{d}: fused {:.4} ms  unfused {:.4} ms  speedup {speedup:.2}x",
            best_fused as f64 / 1e6 / iters as f64,
            best_unfused as f64 / 1e6 / iters as f64,
        );
        out.push((format!("clf_{batch}x{d}"), speedup));
    }
    out
}

/// The Table II dataset dimensionalities: quick-demo (12), KDD (32),
/// NSL-KDD (41), SQB (182), UNSW-NB15 (196). Training shapes follow the
/// paper's setup — 128-row shards through the `[d, 64, 32, classes]`
/// classifier and the `[d, d/2, d/4]` per-cluster autoencoder.
const TABLE2_DIMS: [usize; 5] = [12, 32, 41, 182, 196];

/// One pooled classifier-step arm of the Table II sweep.
struct ClfArm {
    x: Matrix,
    y: Matrix,
    vs: VarStore,
    mlp: Mlp,
    opt: Adam,
    tape: Tape,
}

impl ClfArm {
    fn new(batch: usize, d: usize) -> Self {
        Self::with_arch(batch, &[d, 64, 32, 8])
    }

    /// `dims` is the full layer-width ladder `[d, hidden…, classes]`.
    fn with_arch(batch: usize, dims: &[usize]) -> Self {
        let (d, classes) = (dims[0], *dims.last().expect("non-empty arch"));
        let mut rng = lrng::seeded(13);
        let x = lrng::normal_matrix(&mut rng, batch, d, 0.0, 1.0);
        let y = Matrix::from_fn(batch, classes, |r, c| f64::from(r % classes == c));
        let mut vs = VarStore::new();
        let mlp = Mlp::new(&mut vs, &mut rng, dims, Activation::Relu, Activation::None);
        Self {
            x,
            y,
            vs,
            mlp,
            opt: Adam::new(1e-3),
            tape: Tape::new(),
        }
    }

    fn step(&mut self) {
        let batch = self.x.rows();
        self.vs.zero_grads();
        self.tape.reset();
        let xv = self.tape.input_from(&self.x);
        let yv = self.tape.input_from(&self.y);
        let z = self.mlp.forward(&mut self.tape, &self.vs, xv);
        let lp = self.tape.log_softmax_rows(z);
        let prod = self.tape.mul(yv, lp);
        let total = self.tape.sum_all(prod);
        let loss = self.tape.scale(total, -1.0 / batch as f64);
        self.tape.backward(loss, &mut self.vs);
        self.opt.step(&mut self.vs);
        black_box(self.tape.value(loss)[(0, 0)]);
    }
}

/// One pooled autoencoder-step arm of the Table II sweep.
struct AeArm {
    x: Matrix,
    vs: VarStore,
    ae: AutoEncoder,
    opt: Adam,
    tape: Tape,
}

impl AeArm {
    fn new(batch: usize, d: usize) -> Self {
        let mut rng = lrng::seeded(11);
        let x = lrng::uniform_matrix(&mut rng, batch, d, 0.0, 1.0);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[d, d / 2, d / 4]);
        Self {
            x,
            vs,
            ae,
            opt: Adam::new(1e-3),
            tape: Tape::new(),
        }
    }

    fn step(&mut self) {
        self.vs.zero_grads();
        self.tape.reset();
        let xv = self.tape.input_from(&self.x);
        let err = self.ae.recon_error_rows(&mut self.tape, &self.vs, xv);
        let loss = self.tape.mean_all(err);
        self.tape.backward(loss, &mut self.vs);
        self.opt.step(&mut self.vs);
        black_box(self.tape.value(loss)[(0, 0)]);
    }
}

/// Per-step speedup of the default training path over the reproduced
/// pre-PR path on the Table II shape sweep — the PR's acceptance metric.
///
/// The default arm runs fused backward + register-tiled small GEMMs +
/// dead-gradient pruning; the pre-PR arm pins all three gates off
/// (unfused triplet backward, scalar-below-`BLOCK_MIN_FLOPS` dispatch,
/// full gradient sweeps), reproducing the step exactly as the previous
/// commit ran it. Each shape trains two identical models with the arms
/// interleaved round-robin in one process, so CPU frequency drift hits
/// both arms equally — criterion's independent-group protocol cannot
/// guarantee that, and on shared hosts the cross-group jitter swamps the
/// effect being measured. The arm order alternates every iteration
/// (cache-eviction and scheduler bias hit whichever arm runs second), and
/// each arm's time is the *minimum* per-step total over several rounds:
/// contention only ever inflates a round, so the minimum is the
/// least-noisy estimate of the true step cost.
fn measure_table2_sweep() -> Vec<(String, f64)> {
    let (warmup, iters, rounds) = if quick_mode() { (2, 5, 1) } else { (20, 60, 5) };
    let mut sweep = Vec::new();
    for d in TABLE2_DIMS {
        let batch = 128usize;
        type ArmPair<'a> = (&'a str, Box<dyn FnMut()>, Box<dyn FnMut()>);
        let arms: [ArmPair; 2] = {
            let mut clf_new = ClfArm::new(batch, d);
            let mut clf_pre = ClfArm::new(batch, d);
            let mut ae_new = AeArm::new(batch, d);
            let mut ae_pre = AeArm::new(batch, d);
            [
                (
                    "clf",
                    Box::new(move || clf_new.step()) as Box<dyn FnMut()>,
                    Box::new(move || clf_pre.step()) as Box<dyn FnMut()>,
                ),
                (
                    "ae",
                    Box::new(move || ae_new.step()),
                    Box::new(move || ae_pre.step()),
                ),
            ]
        };
        for (kind, mut new_step, mut pre_step) in arms {
            let mut best_new = u64::MAX;
            let mut best_pre = u64::MAX;
            for round in 0..rounds {
                let warmup = if round == 0 { warmup } else { 0 };
                let mut new_ns = 0u64;
                let mut pre_ns = 0u64;
                for i in 0..warmup + iters {
                    let mut run_new = |new_ns: &mut u64| {
                        let _f = force_fused_backward(true);
                        let _s = force_small_gemm(true);
                        let _p = force_grad_prune(true);
                        let t0 = Instant::now();
                        new_step();
                        if i >= warmup {
                            *new_ns += t0.elapsed().as_nanos() as u64;
                        }
                    };
                    let mut run_pre = |pre_ns: &mut u64| {
                        let _f = force_fused_backward(false);
                        let _s = force_small_gemm(false);
                        let _p = force_grad_prune(false);
                        let t0 = Instant::now();
                        pre_step();
                        if i >= warmup {
                            *pre_ns += t0.elapsed().as_nanos() as u64;
                        }
                    };
                    if i % 2 == 0 {
                        run_new(&mut new_ns);
                        run_pre(&mut pre_ns);
                    } else {
                        run_pre(&mut pre_ns);
                        run_new(&mut new_ns);
                    }
                }
                best_new = best_new.min(new_ns);
                best_pre = best_pre.min(pre_ns);
            }
            let speedup = best_pre as f64 / best_new.max(1) as f64;
            println!(
                "table2 {kind} {batch}x{d}: new {:.4} ms  pre-pr {:.4} ms  speedup {speedup:.2}x",
                best_new as f64 / 1e6 / iters as f64,
                best_pre as f64 / 1e6 / iters as f64,
            );
            sweep.push((format!("{kind}_{batch}x{d}"), speedup));
        }
    }
    sweep
}

/// The GEMM dispatch mix of fused training steps over the whole shape
/// sweep, counted with telemetry hot: scalar-naive vs register-tiled
/// small vs blocked. Before the small-GEMM fast path ~98% of training
/// dispatches fell to the scalar loops; the tiled path must absorb them —
/// the naive share is asserted below 10%.
fn measure_dispatch_mix() -> (u64, u64, u64) {
    use targad_obs::metrics::{
        GEMM_KERNEL_DISPATCHES, GEMM_NAIVE_DISPATCHES, GEMM_SMALL_DISPATCHES,
    };
    let _arm = targad_nn::force_fused_backward(true);
    GEMM_NAIVE_DISPATCHES.reset();
    GEMM_SMALL_DISPATCHES.reset();
    GEMM_KERNEL_DISPATCHES.reset();
    targad_obs::set_enabled(true);
    for (batch, d, hidden) in CLF_SHAPES {
        let classes = 8usize;
        let mut rng = lrng::seeded(13);
        let x = lrng::normal_matrix(&mut rng, batch, d, 0.0, 1.0);
        let y = Matrix::from_fn(batch, classes, |r, c| f64::from(r % classes == c));
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[d, hidden, classes],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(1e-3);
        let mut tape = Tape::new();
        for _ in 0..3 {
            vs.zero_grads();
            tape.reset();
            let xv = tape.input_from(&x);
            let yv = tape.input_from(&y);
            let z = mlp.forward(&mut tape, &vs, xv);
            let lp = tape.log_softmax_rows(z);
            let prod = tape.mul(yv, lp);
            let total = tape.sum_all(prod);
            let loss = tape.scale(total, -1.0 / batch as f64);
            tape.backward(loss, &mut vs);
            opt.step(&mut vs);
            black_box(tape.value(loss)[(0, 0)]);
        }
    }
    // The Table II shard shapes — the workload whose dispatches used to be
    // ~98% scalar-naive.
    for d in TABLE2_DIMS {
        let mut clf = ClfArm::new(128, d);
        let mut ae = AeArm::new(128, d);
        for _ in 0..3 {
            clf.step();
            ae.step();
        }
    }
    targad_obs::set_enabled(false);
    let (naive, small, blocked) = (
        GEMM_NAIVE_DISPATCHES.get(),
        GEMM_SMALL_DISPATCHES.get(),
        GEMM_KERNEL_DISPATCHES.get(),
    );
    let total = naive + small + blocked;
    assert!(total > 0, "dispatch mix: no GEMM dispatches counted");
    let naive_share = naive as f64 / total as f64;
    assert!(
        naive_share < 0.10,
        "naive-path share of training GEMM dispatches is {:.1}% ({naive}/{total}); \
         the small-GEMM fast path must keep it below 10%",
        naive_share * 100.0
    );
    (naive, small, blocked)
}

/// The classifier step's dominant GEMM sequence at the acceptance size —
/// forward `x·w` plus the two backward products `x^T·g` and `g·w^T` —
/// on the blocked kernels vs. the retained pre-PR `reference` kernels.
fn bench_clf_gemm(c: &mut Criterion) {
    let mut rng = lrng::seeded(17);
    let x = lrng::normal_matrix(&mut rng, 1024, 256, 0.0, 1.0);
    let w = lrng::normal_matrix(&mut rng, 256, 256, 0.0, 0.1);
    let g = lrng::normal_matrix(&mut rng, 1024, 256, 0.0, 1.0);
    let mut group = c.benchmark_group("clf_gemm_1024x256x256");
    tune(&mut group);
    group.bench_function("blocked", |b| {
        b.iter(|| {
            let fwd = x.matmul(&w);
            let dw = x.matmul_tn(&g);
            let dx = g.matmul_nt(&w);
            black_box((fwd, dw, dx))
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let fwd = reference::matmul(&x, &w);
            let dw = reference::matmul_tn(&x, &g);
            let dx = reference::matmul_nt(&g, &w);
            black_box((fwd, dw, dx))
        });
    });
    group.finish();
}

/// End-to-end `TargAd::fit` — candidate selection, per-cluster AE
/// pretraining, and the sharded classifier loop — at 1, 2, and 4 workers.
/// Every configuration trains the *same* model (losses and weights are
/// bit-identical by the determinism contract); only wall-clock may differ.
fn bench_fit_dp(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(29);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let mut group = c.benchmark_group("fit_dp");
    tune(&mut group);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("workers{workers}"), |b| {
            b.iter(|| {
                let mut model = TargAd::try_new(cfg.clone())
                    .expect("valid config")
                    .with_runtime(Runtime::new(workers));
                model.fit(&bundle.train, 7).expect("fit");
                black_box(model.history().clf_loss.len())
            });
        });
    }
    group.finish();
}

/// Writes `results/bench_dp.json`: the `fit_dp` shard-scaling sweep, the
/// measured 2- and 4-worker fit speedups over the 1-worker baseline, and
/// `host_parallelism` so readers can tell a kernel regression from a
/// hardware limit — on a host with fewer cores than workers the extra
/// workers are clamped and the honest speedup is ≈ 1.0.
fn write_dp_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let w1 = mean_of("fit_dp/workers1");
    let w2 = mean_of("fit_dp/workers2");
    let w4 = mean_of("fit_dp/workers4");
    let ratio = |base: f64, par: f64| if par > 0.0 { base / par } else { 0.0 };
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let dp: Vec<&(String, f64)> = results
        .iter()
        .filter(|(n, _)| n.starts_with("fit_dp/"))
        .collect();
    for (i, (name, mean)) in dp.iter().enumerate() {
        let comma = if i + 1 < dp.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"host_parallelism\": {host},\n  \"speedup_fit_2workers\": {:.2},\n  \"speedup_fit_4workers\": {:.2}\n}}\n",
        ratio(w1, w2),
        ratio(w1, w4),
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_dp.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_dp.json");
    println!(
        "\nwrote {} (host parallelism {host}, 4-worker fit speedup {:.2}x)",
        path.display(),
        ratio(w1, w4)
    );
}

/// Writes `results/bench_training.json`: every benchmark mean, the
/// blocked-vs-reference speedup on the acceptance-size GEMM sequence, the
/// per-shape and mean fused-vs-unfused step speedups, the Table II
/// default-vs-pre-PR step sweep (`speedup_step_table2` is this PR's
/// acceptance metric, ≥ 1.4×), and the training GEMM dispatch mix (naive
/// share must be < 10%, asserted before this runs).
fn write_json(
    results: &[(String, f64)],
    dispatch: (u64, u64, u64),
    sweep: &[(String, f64)],
    fused_steps: &[(String, f64)],
) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let ratio = |base: f64, fast: f64| if fast > 0.0 { base / fast } else { 0.0 };
    let blocked = mean_of("clf_gemm_1024x256x256/blocked");
    let reference = mean_of("clf_gemm_1024x256x256/reference");
    let speedup = ratio(reference, blocked);

    let speedup_step_fused = if fused_steps.is_empty() {
        0.0
    } else {
        fused_steps.iter().map(|&(_, s)| s).sum::<f64>() / fused_steps.len() as f64
    };

    let (naive, small, blk) = dispatch;
    let total_dispatch = (naive + small + blk).max(1);
    let naive_share = naive as f64 / total_dispatch as f64;

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let own: Vec<&(String, f64)> = results
        .iter()
        .filter(|(n, _)| !n.starts_with("fit_dp/"))
        .collect();
    for (i, (name, mean)) in own.iter().enumerate() {
        let comma = if i + 1 < own.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_clf_gemm_1024x256x256\": {speedup:.2},\n"
    ));
    for (shape, s) in fused_steps {
        out.push_str(&format!("  \"speedup_step_fused_{shape}\": {s:.2},\n"));
    }
    for (label, s) in sweep {
        out.push_str(&format!("  \"speedup_step_table2_{label}\": {s:.2},\n"));
    }
    let speedup_table2 = if sweep.is_empty() {
        0.0
    } else {
        // Geometric mean: the shapes span two orders of magnitude of step
        // cost, and a single outlier ratio should not carry the headline.
        (sweep.iter().map(|&(_, s)| s.max(1e-9).ln()).sum::<f64>() / sweep.len() as f64).exp()
    };
    out.push_str(&format!(
        "  \"speedup_step_table2\": {speedup_table2:.2},\n  \
         \"speedup_step_fused\": {speedup_step_fused:.2},\n  \
         \"gemm_dispatches_naive\": {naive},\n  \
         \"gemm_dispatches_small\": {small},\n  \
         \"gemm_dispatches_blocked\": {blk},\n  \
         \"gemm_dispatch_naive_share\": {naive_share:.4}\n}}\n"
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_training.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_training.json");
    println!(
        "\nwrote {} (gemm speedup {speedup:.2}x, fused-step speedup {speedup_step_fused:.2}x, \
         table2 step speedup {speedup_table2:.2}x, naive dispatch share {:.1}%)",
        path.display(),
        naive_share * 100.0
    );
}

fn main() {
    // The acceptance sweeps run first, on a cold box: the criterion groups
    // below sustain load long enough to heat shared hosts and skew
    // whatever measures after them.
    let sweep = measure_table2_sweep();
    let fused_steps = measure_fused_step();
    let mut criterion = Criterion::default();
    bench_ae_step(&mut criterion);
    bench_clf_step(&mut criterion);
    bench_clf_gemm(&mut criterion);
    bench_fit_dp(&mut criterion);
    let dispatch = measure_dispatch_mix();
    write_json(criterion.results(), dispatch, &sweep, &fused_steps);
    write_dp_json(criterion.results());
}
