//! Training-path micro-benchmarks: one pooled-tape optimizer step for the
//! per-cluster autoencoder (Eq. 1) and the m+k classifier (Eqs. 3–8) at
//! three matrix sizes, plus the classifier's dominant GEMM sequence
//! (forward `x·w`, backward `x^T·g` and `g·w^T` at 1024×256×256) timed on
//! both the blocked kernels and the retained pre-blocking `reference`
//! kernels. Writes `results/bench_training.json`; the recorded
//! `speedup_clf_gemm_1024x256x256` is the acceptance metric for the
//! blocked-GEMM rewrite (must stay ≥ 2).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this to
//! catch kernel regressions without paying full measurement budgets).

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;
use targad_autograd::{Tape, VarStore};
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::{matrix::reference, rng as lrng, Matrix};
use targad_nn::{Activation, Adam, AutoEncoder, Mlp, Optimizer};

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Applies the session's sampling budget to a group: tiny in quick mode,
/// enough samples for stable means otherwise.
fn tune<'a, 'b>(
    group: &'a mut criterion::BenchmarkGroup<'b>,
) -> &'a mut criterion::BenchmarkGroup<'b> {
    if quick_mode() {
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(25))
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
    }
}

/// One pooled-tape autoencoder step (Eq. 1 without the labeled term):
/// forward reconstruction, mean squared-error loss, backward, Adam update.
fn bench_ae_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_ae_step");
    tune(&mut group);
    for (batch, d) in [(128usize, 32usize), (256, 64), (512, 128)] {
        let mut rng = lrng::seeded(11);
        let x = lrng::uniform_matrix(&mut rng, batch, d, 0.0, 1.0);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[d, d / 2, d / 4]);
        let mut opt = Adam::new(1e-3);
        let mut tape = Tape::new();
        group.bench_function(format!("{batch}x{d}"), |b| {
            b.iter(|| {
                vs.zero_grads();
                tape.reset();
                let xv = tape.input_from(&x);
                let err = ae.recon_error_rows(&mut tape, &vs, xv);
                let loss = tape.mean_all(err);
                tape.backward(loss, &mut vs);
                opt.step(&mut vs);
                black_box(tape.value(loss)[(0, 0)])
            });
        });
    }
    group.finish();
}

/// One pooled-tape classifier step: MLP forward, cross-entropy against
/// one-hot pseudo-labels, backward, Adam update. The `1024x256x256` entry
/// is the acceptance-criteria size (batch 1024, input 256, hidden 256).
fn bench_clf_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_clf_step");
    tune(&mut group);
    for (batch, d, hidden) in [
        (256usize, 64usize, 64usize),
        (512, 128, 128),
        (1024, 256, 256),
    ] {
        let classes = 8usize;
        let mut rng = lrng::seeded(13);
        let x = lrng::normal_matrix(&mut rng, batch, d, 0.0, 1.0);
        let y = Matrix::from_fn(batch, classes, |r, c| f64::from(r % classes == c));
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[d, hidden, classes],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(1e-3);
        let mut tape = Tape::new();
        group.bench_function(format!("{batch}x{d}x{hidden}"), |b| {
            b.iter(|| {
                vs.zero_grads();
                tape.reset();
                let xv = tape.input_from(&x);
                let yv = tape.input_from(&y);
                let z = mlp.forward(&mut tape, &vs, xv);
                let lp = tape.log_softmax_rows(z);
                let prod = tape.mul(yv, lp);
                let total = tape.sum_all(prod);
                let loss = tape.scale(total, -1.0 / batch as f64);
                tape.backward(loss, &mut vs);
                opt.step(&mut vs);
                black_box(tape.value(loss)[(0, 0)])
            });
        });
    }
    group.finish();
}

/// The classifier step's dominant GEMM sequence at the acceptance size —
/// forward `x·w` plus the two backward products `x^T·g` and `g·w^T` —
/// on the blocked kernels vs. the retained pre-PR `reference` kernels.
fn bench_clf_gemm(c: &mut Criterion) {
    let mut rng = lrng::seeded(17);
    let x = lrng::normal_matrix(&mut rng, 1024, 256, 0.0, 1.0);
    let w = lrng::normal_matrix(&mut rng, 256, 256, 0.0, 0.1);
    let g = lrng::normal_matrix(&mut rng, 1024, 256, 0.0, 1.0);
    let mut group = c.benchmark_group("clf_gemm_1024x256x256");
    tune(&mut group);
    group.bench_function("blocked", |b| {
        b.iter(|| {
            let fwd = x.matmul(&w);
            let dw = x.matmul_tn(&g);
            let dx = g.matmul_nt(&w);
            black_box((fwd, dw, dx))
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let fwd = reference::matmul(&x, &w);
            let dw = reference::matmul_tn(&x, &g);
            let dx = reference::matmul_nt(&g, &w);
            black_box((fwd, dw, dx))
        });
    });
    group.finish();
}

/// End-to-end `TargAd::fit` — candidate selection, per-cluster AE
/// pretraining, and the sharded classifier loop — at 1, 2, and 4 workers.
/// Every configuration trains the *same* model (losses and weights are
/// bit-identical by the determinism contract); only wall-clock may differ.
fn bench_fit_dp(c: &mut Criterion) {
    let bundle = GeneratorSpec::quick_demo().generate(29);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let mut group = c.benchmark_group("fit_dp");
    tune(&mut group);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("workers{workers}"), |b| {
            b.iter(|| {
                let mut model = TargAd::try_new(cfg.clone())
                    .expect("valid config")
                    .with_runtime(Runtime::new(workers));
                model.fit(&bundle.train, 7).expect("fit");
                black_box(model.history().clf_loss.len())
            });
        });
    }
    group.finish();
}

/// Writes `results/bench_dp.json`: the `fit_dp` shard-scaling sweep, the
/// measured 2- and 4-worker fit speedups over the 1-worker baseline, and
/// `host_parallelism` so readers can tell a kernel regression from a
/// hardware limit — on a host with fewer cores than workers the extra
/// workers are clamped and the honest speedup is ≈ 1.0.
fn write_dp_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let w1 = mean_of("fit_dp/workers1");
    let w2 = mean_of("fit_dp/workers2");
    let w4 = mean_of("fit_dp/workers4");
    let ratio = |base: f64, par: f64| if par > 0.0 { base / par } else { 0.0 };
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let dp: Vec<&(String, f64)> = results
        .iter()
        .filter(|(n, _)| n.starts_with("fit_dp/"))
        .collect();
    for (i, (name, mean)) in dp.iter().enumerate() {
        let comma = if i + 1 < dp.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"host_parallelism\": {host},\n  \"speedup_fit_2workers\": {:.2},\n  \"speedup_fit_4workers\": {:.2}\n}}\n",
        ratio(w1, w2),
        ratio(w1, w4),
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_dp.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_dp.json");
    println!(
        "\nwrote {} (host parallelism {host}, 4-worker fit speedup {:.2}x)",
        path.display(),
        ratio(w1, w4)
    );
}

/// Writes `results/bench_training.json`: every benchmark mean plus the
/// blocked-vs-reference speedup on the acceptance-size GEMM sequence.
fn write_json(results: &[(String, f64)]) {
    let mean_of = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .unwrap_or(0.0)
    };
    let blocked = mean_of("clf_gemm_1024x256x256/blocked");
    let reference = mean_of("clf_gemm_1024x256x256/reference");
    let speedup = if blocked > 0.0 {
        reference / blocked
    } else {
        0.0
    };

    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let own: Vec<&(String, f64)> = results
        .iter()
        .filter(|(n, _)| !n.starts_with("fit_dp/"))
        .collect();
    for (i, (name, mean)) in own.iter().enumerate() {
        let comma = if i + 1 < own.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"mean_seconds\": {mean:e} }}{comma}\n"
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_clf_gemm_1024x256x256\": {speedup:.2}\n}}\n"
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_training.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("create results dir");
    std::fs::write(&path, out).expect("write bench_training.json");
    println!("\nwrote {} (speedup {speedup:.2}x)", path.display());
}

fn main() {
    let mut criterion = Criterion::default();
    bench_ae_step(&mut criterion);
    bench_clf_step(&mut criterion);
    bench_clf_gemm(&mut criterion);
    bench_fit_dp(&mut criterion);
    write_json(criterion.results());
    write_dp_json(criterion.results());
}
