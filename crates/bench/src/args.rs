//! Minimal command-line parsing shared by the experiment binaries.

/// Common flags: `--scale <f>`, `--seeds <n>`, `--full`, `--part <name>`,
/// `--data-seed <n>`.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Dataset scale relative to Table I row counts.
    pub scale: f64,
    /// Number of independent model seeds to average (paper: 5).
    pub seeds: usize,
    /// Sub-experiment selector (`--part a` etc.).
    pub part: Option<String>,
    /// Seed for dataset generation (fixed across model runs, as the paper
    /// fixes its datasets).
    pub data_seed: u64,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 0.03,
            seeds: 5,
            part: None,
            data_seed: 20_240_401,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    ///
    /// # Panics
    /// Panics with a usage message on malformed values.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale must be a float");
                }
                "--seeds" => {
                    let v = iter.next().expect("--seeds needs a value");
                    out.seeds = v.parse().expect("--seeds must be an integer");
                }
                "--full" => out.scale = 1.0,
                "--part" => out.part = iter.next(),
                "--data-seed" => {
                    let v = iter.next().expect("--data-seed needs a value");
                    out.data_seed = v.parse().expect("--data-seed must be an integer");
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --scale <f> (default 0.03) | --full | --seeds <n> (default 5) \
                         | --part <name> | --data-seed <n>"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("note: ignoring unknown flag `{other}`"),
            }
        }
        assert!(out.scale > 0.0, "--scale must be positive");
        assert!(out.seeds > 0, "--seeds must be positive");
        out
    }

    /// The model seeds to run.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> CommonArgs {
        CommonArgs::from_args(s.iter().map(|v| v.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.03);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.seed_list(), vec![1, 2, 3, 4, 5]);
        assert!(a.part.is_none());
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "0.1", "--seeds", "3", "--part", "b"]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.part.as_deref(), Some("b"));
    }

    #[test]
    fn full_overrides_scale() {
        let a = parse(&["--full"]);
        assert_eq!(a.scale, 1.0);
    }

    #[test]
    #[should_panic(expected = "--scale must be a float")]
    fn bad_scale_panics() {
        let _ = parse(&["--scale", "abc"]);
    }
}
