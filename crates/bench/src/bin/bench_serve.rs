//! Closed-loop serving benchmark: real HTTP clients against a booted
//! `targad-serve` instance.
//!
//! Three phases, same fitted model:
//!
//! 1. **Serial baseline** — one client, one row per request, against a
//!    `max_batch = 1` server (every row pays a full round trip and its own
//!    engine pass).
//! 2. **Micro-batched (f64)** — eight concurrent one-row clients against a
//!    coalescing server; mid-phase the model is hot-swapped several times
//!    under full load.
//! 3. **Micro-batched (f32)** — the same closed loop against a server
//!    configured with `EnginePrecision::F32`, so the hot path runs the
//!    SIMD micro-kernels and every hot-swap exercises the warm-at-swap
//!    weight cast.
//! 4. **Profile replay** — the f64 phase's live telemetry is captured as a
//!    [`WorkloadProfile`] (written to `results/profiles/serve_default.json`)
//!    and replayed: the same client count offers traffic with row counts
//!    and tenant mix sampled from the profile. Full-run acceptance: replay
//!    throughput within 15% of the live phase it was captured from.
//! 5. **Telemetry overhead** — an in-process submit loop timed with the
//!    telemetry gate off vs on (best-of-rounds). Acceptance: the enabled
//!    path costs < 2%.
//!
//! Writes `results/bench_serve.json` with rows/sec and latency percentiles
//! for all phases, both precisions side by side. Acceptance:
//! `speedup_batched_vs_serial >= 1.5` and `lost_requests == 0` across the
//! hot swaps (both precisions).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this
//! to boot, score, hot-swap, and shut down cleanly on every push).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use targad_core::{OodStrategy, Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::Matrix;
use targad_serve::{
    Client, EnginePrecision, Json, MicroBatcher, ModelRegistry, ModelSnapshot, ServeConfig, Server,
    WorkloadProfile,
};

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One phase's aggregate results.
struct PhaseStats {
    clients: usize,
    rows: u64,
    elapsed: Duration,
    p50_us: f64,
    p99_us: f64,
}

impl PhaseStats {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn fitted_snapshot(seed: u64, tag: &str) -> (ModelSnapshot, Matrix) {
    // Quick (CI smoke) mode only checks the protocol, so a toy model is
    // fine. The full run serves a realistically sized classifier — with a
    // trivial network the forward pass vanishes next to per-request I/O
    // and micro-batching has nothing to amortize.
    let (mut spec, mut config) = (GeneratorSpec::quick_demo(), TargAdConfig::fast());
    if !quick_mode() {
        // 256 → 1024 → 1024 → 6: ~8 MB of f64 weights, so a one-row pass
        // is DRAM-bound on streaming the matrices while a coalesced batch
        // streams them once for all rows — the effect serving batches
        // exist to exploit.
        spec.dims = 256;
        config.clf_hidden = vec![1024, 1024];
        config.ae_epochs = 6;
        config.clf_epochs = 8;
    }
    let bundle = spec.generate(seed);
    let mut model = TargAd::try_new(config).expect("valid config");
    model.fit(&bundle.train, seed).expect("fit");
    let thresholds = model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibrate");
    let snapshot = ModelSnapshot::new(model.classifier().unwrap().clone(), thresholds, tag);
    (snapshot, bundle.test.features)
}

fn one_row_body(x: &Matrix, r: usize) -> String {
    let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
    format!(
        "{{\"rows\": [[{}]], \"ood_strategy\": \"msp\"}}",
        cells.join(", ")
    )
}

/// A request template: the JSON body plus the rows it carries.
type BodyFn = Arc<dyn Fn(usize, usize) -> (String, u64) + Send + Sync>;

/// One-row request bodies cycling through `x` — the live phases' traffic.
fn one_row_bodies(x: &Matrix) -> BodyFn {
    let x = x.clone();
    Arc::new(move |c, i| (one_row_body(&x, (c * 32 + i) % x.rows()), 1))
}

/// Runs `clients` closed-loop scorers against `addr` for `duration`, each
/// cycling through 32 pre-built request bodies from `make_body(client, i)`.
/// Returns the aggregate stats and the number of non-200 responses (which
/// must be zero, hot swaps included).
fn drive(
    addr: std::net::SocketAddr,
    make_body: &BodyFn,
    clients: usize,
    duration: Duration,
) -> (PhaseStats, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let bodies: Vec<(String, u64)> = (0..32).map(|i| make_body(c, i)).collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_ns = Vec::with_capacity(1 << 16);
                let mut rows = 0u64;
                let mut failures = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let (body, body_rows) = &bodies[i % bodies.len()];
                    let t0 = Instant::now();
                    let resp = client.request("POST", "/score", body).expect("request");
                    latencies_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    if resp.status == 200 {
                        rows += body_rows;
                    } else {
                        failures += 1;
                    }
                    i += 1;
                }
                (latencies_ns, rows, failures)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Release);

    let mut all_ns = Vec::new();
    let mut rows = 0u64;
    let mut failures = 0u64;
    for handle in handles {
        let (ns, r, f) = handle.join().expect("client thread");
        all_ns.extend(ns);
        rows += r;
        failures += f;
    }
    let elapsed = started.elapsed();
    all_ns.sort_unstable();
    let stats = PhaseStats {
        clients,
        rows,
        elapsed,
        p50_us: percentile(&all_ns, 0.50),
        p99_us: percentile(&all_ns, 0.99),
    };
    (stats, failures)
}

/// Runs the eight-client coalescing phase at `precision`, hot-swapping the
/// model several times under full load. Returns the phase stats, failure
/// count, swap count, and final batcher fill counters.
fn batched_phase(
    precision: EnginePrecision,
    snap_a: &ModelSnapshot,
    snap_b: &ModelSnapshot,
    x: &Matrix,
    phase_duration: Duration,
) -> (PhaseStats, u64, u64, targad_serve::BatcherStats) {
    let config = ServeConfig::builder()
        .max_batch(8)
        .max_queue_wait(Duration::from_micros(250))
        .precision(precision)
        .build()
        .expect("valid config");
    let mut server =
        Server::start(config, snap_a.clone(), Runtime::new(2)).expect("boot batched server");
    let addr = server.addr();
    let registry = Arc::clone(server.registry());
    let snap_a = snap_a.clone();
    let snap_b = snap_b.clone();
    let swapper = std::thread::spawn(move || {
        let swaps = 6u64;
        for s in 0..swaps {
            std::thread::sleep(phase_duration / (swaps as u32 + 1));
            let next = if s % 2 == 0 {
                snap_b.clone()
            } else {
                snap_a.clone()
            };
            registry.swap(next);
        }
        swaps
    });
    let (stats, failures) = drive(addr, &one_row_bodies(x), 8, phase_duration);
    let swaps = swapper.join().expect("swapper thread");
    let fill = server.batcher().stats();
    // Verify the server still answers after the swap storm, then shut down.
    let mut probe = Client::connect(addr).expect("post-swap connect");
    let resp = probe.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(resp.status, 200);
    let generation = Json::parse(&resp.text())
        .expect("healthz json")
        .get("generation")
        .and_then(Json::as_f64)
        .expect("generation");
    assert_eq!(generation as u64, swaps + 1);
    drop(probe);
    server.shutdown();
    assert_eq!(
        failures,
        0,
        "hot-swap under load lost requests ({} phase)",
        precision.name()
    );
    println!(
        "batched {} : 8 clients, {:>8} rows, {:>9.0} rows/s, p50 {:>7.1}us, p99 {:>7.1}us \
         ({} batches, max fill {})",
        precision.name(),
        stats.rows,
        stats.rows_per_sec(),
        stats.p50_us,
        stats.p99_us,
        fill.batches,
        fill.max_fill
    );
    (stats, failures, swaps, fill)
}

/// Request bodies sampled from a captured workload profile: row counts and
/// tenant mix drawn by inverse-CDF from a deterministic per-body LCG
/// stream, feature rows cycling through `x`.
fn profile_bodies(x: &Matrix, profile: &WorkloadProfile) -> BodyFn {
    let x = x.clone();
    let profile = profile.clone();
    Arc::new(move |c, i| {
        let mut state = (c as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64 + 1);
        let mut uniform = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = profile.sample_request_rows(uniform()) as usize;
        let rows: Vec<String> = (0..n)
            .map(|r| {
                let cells: Vec<String> = x
                    .row((c * 31 + i * 7 + r) % x.rows())
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        let body = match profile.sample_tenant(uniform()) {
            Some(tenant) => format!(
                "{{\"rows\": [{}], \"ood_strategy\": \"msp\", \"tenant\": \"{tenant}\"}}",
                rows.join(", ")
            ),
            None => format!(
                "{{\"rows\": [{}], \"ood_strategy\": \"msp\"}}",
                rows.join(", ")
            ),
        };
        (body, n as u64)
    })
}

/// Replays a captured profile against a fresh server with the live phase's
/// coalescing configuration, client count, *and* hot-swap storm — the
/// environment is reproduced exactly, so the live-vs-replay throughput
/// ratio isolates the workload generator's fidelity.
fn replay_phase(
    profile: &WorkloadProfile,
    snap_a: &ModelSnapshot,
    snap_b: &ModelSnapshot,
    x: &Matrix,
    phase_duration: Duration,
) -> (PhaseStats, u64, targad_serve::BatcherStats) {
    let config = ServeConfig::builder()
        .max_batch(8)
        .max_queue_wait(Duration::from_micros(250))
        .build()
        .expect("valid config");
    let mut server =
        Server::start(config, snap_a.clone(), Runtime::new(2)).expect("boot replay server");
    let registry = Arc::clone(server.registry());
    let (swap_a, swap_b) = (snap_a.clone(), snap_b.clone());
    let swapper = std::thread::spawn(move || {
        for s in 0..6u64 {
            std::thread::sleep(phase_duration / 7);
            registry.swap(if s % 2 == 0 {
                swap_b.clone()
            } else {
                swap_a.clone()
            });
        }
    });
    let (stats, failures) = drive(
        server.addr(),
        &profile_bodies(x, profile),
        8,
        phase_duration,
    );
    swapper.join().expect("replay swapper");
    let fill = server.batcher().stats();
    server.shutdown();
    println!(
        "replay      : 8 clients, {:>8} rows, {:>9.0} rows/s, p50 {:>7.1}us, p99 {:>7.1}us",
        stats.rows,
        stats.rows_per_sec(),
        stats.p50_us,
        stats.p99_us
    );
    (stats, failures, fill)
}

/// The telemetry gate's cost on the in-process submit path: times a tight
/// submit loop with the gate off vs on, interleaved over several rounds,
/// and compares the best (least-noisy) round of each. HTTP is deliberately
/// out of the picture so the measurement isolates what the gate controls.
fn telemetry_overhead(snap: &ModelSnapshot, x: &Matrix) -> f64 {
    let config = ServeConfig::builder()
        .max_batch(8)
        .max_queue_wait(Duration::from_micros(100))
        .build()
        .expect("valid config");
    let registry = Arc::new(ModelRegistry::new(snap.clone()));
    let batcher = MicroBatcher::start(&config, registry, Runtime::new(2));
    let dims = x.cols();
    let row = x.row(0).to_vec();
    let submits = if quick_mode() { 400 } else { 2000 };
    let mut best_ns = [u128::MAX; 2]; // [gate off, gate on]
    for _round in 0..6 {
        for (slot, on) in [(0usize, false), (1usize, true)] {
            targad_obs::set_enabled(on);
            let t0 = Instant::now();
            for _ in 0..submits {
                batcher
                    .submit(row.clone(), 1, dims, OodStrategy::Msp)
                    .expect("overhead submit");
            }
            best_ns[slot] = best_ns[slot].min(t0.elapsed().as_nanos());
        }
    }
    targad_obs::set_enabled(false);
    batcher.shutdown();
    (best_ns[1] as f64 - best_ns[0] as f64) / best_ns[0] as f64
}

fn phase_json(stats: &PhaseStats, fill: &targad_serve::BatcherStats) -> String {
    format!(
        "{{\"clients\": {}, \"rows\": {}, \"rows_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"batches\": {}, \"max_fill\": {}}}",
        stats.clients,
        stats.rows,
        stats.rows_per_sec(),
        stats.p50_us,
        stats.p99_us,
        fill.batches,
        fill.max_fill
    )
}

fn main() {
    let phase_duration = if quick_mode() {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(3)
    };
    let (snap_a, x) = fitted_snapshot(41, "bench-a");
    let (snap_b, _) = fitted_snapshot(43, "bench-b");

    // Phase 1: serial one-row baseline — no coalescing at all.
    let serial_config = ServeConfig::builder()
        .max_batch(1)
        .max_queue_wait(Duration::from_micros(50))
        .build()
        .expect("valid config");
    let mut serial_server =
        Server::start(serial_config, snap_a.clone(), Runtime::new(2)).expect("boot serial server");
    let (serial, serial_failures) =
        drive(serial_server.addr(), &one_row_bodies(&x), 1, phase_duration);
    serial_server.shutdown();
    assert_eq!(serial_failures, 0, "serial phase had failing requests");
    println!(
        "serial      : 1 client , {:>8} rows, {:>9.0} rows/s, p50 {:>7.1}us, p99 {:>7.1}us",
        serial.rows,
        serial.rows_per_sec(),
        serial.p50_us,
        serial.p99_us
    );

    // Phase 2: eight coalescing clients at f64, hot-swapped under load.
    // Reset the process-wide telemetry first so the workload profile
    // captured afterwards describes exactly this phase's traffic.
    targad_obs::metrics::reset_all();
    let (batched, batched_failures, swaps, fill) =
        batched_phase(EnginePrecision::F64, &snap_a, &snap_b, &x, phase_duration);
    let profile = WorkloadProfile::capture("serve_default", x.cols());
    let profile_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/profiles/serve_default.json");
    profile.save(&profile_path).expect("write workload profile");
    println!(
        "profile     : {} requests, {:.2} rows/request, {} tenants -> {}",
        profile.requests,
        profile.mean_rows_per_request(),
        profile.tenants.len(),
        profile_path.display()
    );
    // Phase 3: the identical closed loop at f32 — the SIMD serving path,
    // including the warm-at-swap cast on every hot swap.
    let (batched_f32, f32_failures, f32_swaps, fill_f32) =
        batched_phase(EnginePrecision::F32, &snap_a, &snap_b, &x, phase_duration);
    // Phase 4: replay the captured profile; the offered traffic should
    // regenerate the live phase's throughput.
    let (replay, replay_failures, replay_fill) =
        replay_phase(&profile, &snap_a, &snap_b, &x, phase_duration);
    assert_eq!(replay_failures, 0, "profile replay had failing requests");
    // Phase 5: what does flipping the telemetry gate on cost the submit
    // path?
    let overhead = telemetry_overhead(&snap_a, &x);
    println!(
        "telemetry   : {:+.3}% enabled-path overhead (acceptance: < 2%)",
        overhead * 100.0
    );

    let speedup = batched.rows_per_sec() / serial.rows_per_sec();
    let replay_vs_live = replay.rows_per_sec() / batched.rows_per_sec();
    let f32_over_f64 = batched_f32.rows_per_sec() / batched.rows_per_sec();
    println!("speedup     : {speedup:.2}x batched-vs-serial (acceptance: >= 1.5)");
    println!("f32 over f64: {f32_over_f64:.2}x end-to-end (HTTP + batching overhead included)");

    let mode = if quick_mode() { "quick" } else { "full" };
    let features = targad_linalg::cpu_features();
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"ood_strategy\": \"{}\",\n  \
         \"cpu_features\": {{ \"avx2\": {}, \"fma\": {} }},\n  \
         \"f32_kernel_path\": \"{}\",\n  \
         \"serial\": {{\"clients\": {}, \"rows\": {}, \"rows_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"batched_f64\": {},\n  \
         \"batched_f32\": {},\n  \
         \"replay\": {},\n  \
         \"speedup_batched_vs_serial\": {:.3},\n  \"speedup_f32_over_f64_batched\": {:.3},\n  \
         \"replay_vs_live\": {:.3},\n  \"telemetry_overhead\": {:.5},\n  \
         \"workload_profile\": \"results/profiles/serve_default.json\",\n  \
         \"hot_swaps_during_load\": {},\n  \"lost_requests\": {}\n}}\n",
        targad_serve::ServeConfig::default().default_strategy.name(),
        features.avx2,
        features.fma,
        targad_linalg::kernel_path().name(),
        serial.clients,
        serial.rows,
        serial.rows_per_sec(),
        serial.p50_us,
        serial.p99_us,
        phase_json(&batched, &fill),
        phase_json(&batched_f32, &fill_f32),
        phase_json(&replay, &replay_fill),
        speedup,
        f32_over_f64,
        replay_vs_live,
        overhead,
        swaps + f32_swaps,
        serial_failures + batched_failures + f32_failures + replay_failures,
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_serve.json");
    std::fs::write(&path, json).expect("write bench_serve.json");
    println!("wrote {}", path.display());

    // The gate cost is machine-load-sensitive but not duration-sensitive:
    // enforce it in every mode (this is the CI smoke job's overhead gate).
    assert!(
        overhead < 0.02,
        "telemetry enabled-path overhead {:.3}% breaches the 2% acceptance bar",
        overhead * 100.0
    );

    // In quick (CI smoke) mode load is too short-lived for the ratios to be
    // meaningful; the full run enforces the acceptance bars.
    if !quick_mode() {
        assert!(
            speedup >= 1.5,
            "micro-batched throughput {speedup:.2}x below the 1.5x acceptance bar"
        );
        assert!(
            (replay_vs_live - 1.0).abs() <= 0.15,
            "profile replay throughput {replay_vs_live:.3}x of live, outside the 15% band"
        );
    }
}
