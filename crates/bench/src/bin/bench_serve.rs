//! Closed-loop serving benchmark: real HTTP clients against a booted
//! `targad-serve` instance.
//!
//! Three phases, same fitted model:
//!
//! 1. **Serial baseline** — one client, one row per request, against a
//!    `max_batch = 1` server (every row pays a full round trip and its own
//!    engine pass).
//! 2. **Micro-batched (f64)** — eight concurrent one-row clients against a
//!    coalescing server; mid-phase the model is hot-swapped several times
//!    under full load.
//! 3. **Micro-batched (f32)** — the same closed loop against a server
//!    configured with `EnginePrecision::F32`, so the hot path runs the
//!    SIMD micro-kernels and every hot-swap exercises the warm-at-swap
//!    weight cast.
//!
//! Writes `results/bench_serve.json` with rows/sec and latency percentiles
//! for all phases, both precisions side by side. Acceptance:
//! `speedup_batched_vs_serial >= 1.5` and `lost_requests == 0` across the
//! hot swaps (both precisions).
//!
//! Set `TARGAD_BENCH_QUICK=1` for a seconds-long smoke run (CI uses this
//! to boot, score, hot-swap, and shut down cleanly on every push).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::Matrix;
use targad_serve::{Client, EnginePrecision, Json, ModelSnapshot, ServeConfig, Server};

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One phase's aggregate results.
struct PhaseStats {
    clients: usize,
    rows: u64,
    elapsed: Duration,
    p50_us: f64,
    p99_us: f64,
}

impl PhaseStats {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn fitted_snapshot(seed: u64, tag: &str) -> (ModelSnapshot, Matrix) {
    // Quick (CI smoke) mode only checks the protocol, so a toy model is
    // fine. The full run serves a realistically sized classifier — with a
    // trivial network the forward pass vanishes next to per-request I/O
    // and micro-batching has nothing to amortize.
    let (mut spec, mut config) = (GeneratorSpec::quick_demo(), TargAdConfig::fast());
    if !quick_mode() {
        // 256 → 1024 → 1024 → 6: ~8 MB of f64 weights, so a one-row pass
        // is DRAM-bound on streaming the matrices while a coalesced batch
        // streams them once for all rows — the effect serving batches
        // exist to exploit.
        spec.dims = 256;
        config.clf_hidden = vec![1024, 1024];
        config.ae_epochs = 6;
        config.clf_epochs = 8;
    }
    let bundle = spec.generate(seed);
    let mut model = TargAd::try_new(config).expect("valid config");
    model.fit(&bundle.train, seed).expect("fit");
    let thresholds = model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibrate");
    let snapshot = ModelSnapshot::new(model.classifier().unwrap().clone(), thresholds, tag);
    (snapshot, bundle.test.features)
}

fn one_row_body(x: &Matrix, r: usize) -> String {
    let cells: Vec<String> = x.row(r).iter().map(|v| format!("{v:?}")).collect();
    format!(
        "{{\"rows\": [[{}]], \"ood_strategy\": \"msp\"}}",
        cells.join(", ")
    )
}

/// Runs `clients` closed-loop one-row scorers against `addr` for
/// `duration`. Returns the aggregate stats and the number of non-200
/// responses (which must be zero, hot swaps included).
fn drive(
    addr: std::net::SocketAddr,
    x: &Matrix,
    clients: usize,
    duration: Duration,
) -> (PhaseStats, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let bodies: Vec<String> = (0..32)
                .map(|i| one_row_body(x, (c * 32 + i) % x.rows()))
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_ns = Vec::with_capacity(1 << 16);
                let mut failures = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let body = &bodies[i % bodies.len()];
                    let t0 = Instant::now();
                    let resp = client.request("POST", "/score", body).expect("request");
                    latencies_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    if resp.status != 200 {
                        failures += 1;
                    }
                    i += 1;
                }
                (latencies_ns, failures)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Release);

    let mut all_ns = Vec::new();
    let mut failures = 0u64;
    for handle in handles {
        let (ns, f) = handle.join().expect("client thread");
        all_ns.extend(ns);
        failures += f;
    }
    let elapsed = started.elapsed();
    all_ns.sort_unstable();
    let stats = PhaseStats {
        clients,
        rows: all_ns.len() as u64,
        elapsed,
        p50_us: percentile(&all_ns, 0.50),
        p99_us: percentile(&all_ns, 0.99),
    };
    (stats, failures)
}

/// Runs the eight-client coalescing phase at `precision`, hot-swapping the
/// model several times under full load. Returns the phase stats, failure
/// count, swap count, and final batcher fill counters.
fn batched_phase(
    precision: EnginePrecision,
    snap_a: &ModelSnapshot,
    snap_b: &ModelSnapshot,
    x: &Matrix,
    phase_duration: Duration,
) -> (PhaseStats, u64, u64, targad_serve::BatcherStats) {
    let config = ServeConfig::builder()
        .max_batch(8)
        .max_queue_wait(Duration::from_micros(250))
        .precision(precision)
        .build()
        .expect("valid config");
    let mut server =
        Server::start(config, snap_a.clone(), Runtime::new(2)).expect("boot batched server");
    let addr = server.addr();
    let registry = Arc::clone(server.registry());
    let snap_a = snap_a.clone();
    let snap_b = snap_b.clone();
    let swapper = std::thread::spawn(move || {
        let swaps = 6u64;
        for s in 0..swaps {
            std::thread::sleep(phase_duration / (swaps as u32 + 1));
            let next = if s % 2 == 0 {
                snap_b.clone()
            } else {
                snap_a.clone()
            };
            registry.swap(next);
        }
        swaps
    });
    let (stats, failures) = drive(addr, x, 8, phase_duration);
    let swaps = swapper.join().expect("swapper thread");
    let fill = server.batcher().stats();
    // Verify the server still answers after the swap storm, then shut down.
    let mut probe = Client::connect(addr).expect("post-swap connect");
    let resp = probe.request("GET", "/healthz", "").expect("healthz");
    assert_eq!(resp.status, 200);
    let generation = Json::parse(&resp.text())
        .expect("healthz json")
        .get("generation")
        .and_then(Json::as_f64)
        .expect("generation");
    assert_eq!(generation as u64, swaps + 1);
    drop(probe);
    server.shutdown();
    assert_eq!(
        failures,
        0,
        "hot-swap under load lost requests ({} phase)",
        precision.name()
    );
    println!(
        "batched {} : 8 clients, {:>8} rows, {:>9.0} rows/s, p50 {:>7.1}us, p99 {:>7.1}us \
         ({} batches, max fill {})",
        precision.name(),
        stats.rows,
        stats.rows_per_sec(),
        stats.p50_us,
        stats.p99_us,
        fill.batches,
        fill.max_fill
    );
    (stats, failures, swaps, fill)
}

fn phase_json(stats: &PhaseStats, fill: &targad_serve::BatcherStats) -> String {
    format!(
        "{{\"clients\": {}, \"rows\": {}, \"rows_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"batches\": {}, \"max_fill\": {}}}",
        stats.clients,
        stats.rows,
        stats.rows_per_sec(),
        stats.p50_us,
        stats.p99_us,
        fill.batches,
        fill.max_fill
    )
}

fn main() {
    let phase_duration = if quick_mode() {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(3)
    };
    let (snap_a, x) = fitted_snapshot(41, "bench-a");
    let (snap_b, _) = fitted_snapshot(43, "bench-b");

    // Phase 1: serial one-row baseline — no coalescing at all.
    let serial_config = ServeConfig::builder()
        .max_batch(1)
        .max_queue_wait(Duration::from_micros(50))
        .build()
        .expect("valid config");
    let mut serial_server =
        Server::start(serial_config, snap_a.clone(), Runtime::new(2)).expect("boot serial server");
    let (serial, serial_failures) = drive(serial_server.addr(), &x, 1, phase_duration);
    serial_server.shutdown();
    assert_eq!(serial_failures, 0, "serial phase had failing requests");
    println!(
        "serial      : 1 client , {:>8} rows, {:>9.0} rows/s, p50 {:>7.1}us, p99 {:>7.1}us",
        serial.rows,
        serial.rows_per_sec(),
        serial.p50_us,
        serial.p99_us
    );

    // Phase 2: eight coalescing clients at f64, hot-swapped under load.
    let (batched, batched_failures, swaps, fill) =
        batched_phase(EnginePrecision::F64, &snap_a, &snap_b, &x, phase_duration);
    // Phase 3: the identical closed loop at f32 — the SIMD serving path,
    // including the warm-at-swap cast on every hot swap.
    let (batched_f32, f32_failures, f32_swaps, fill_f32) =
        batched_phase(EnginePrecision::F32, &snap_a, &snap_b, &x, phase_duration);

    let speedup = batched.rows_per_sec() / serial.rows_per_sec();
    let f32_over_f64 = batched_f32.rows_per_sec() / batched.rows_per_sec();
    println!("speedup     : {speedup:.2}x batched-vs-serial (acceptance: >= 1.5)");
    println!("f32 over f64: {f32_over_f64:.2}x end-to-end (HTTP + batching overhead included)");

    let mode = if quick_mode() { "quick" } else { "full" };
    let features = targad_linalg::cpu_features();
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"ood_strategy\": \"{}\",\n  \
         \"cpu_features\": {{ \"avx2\": {}, \"fma\": {} }},\n  \
         \"f32_kernel_path\": \"{}\",\n  \
         \"serial\": {{\"clients\": {}, \"rows\": {}, \"rows_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"batched_f64\": {},\n  \
         \"batched_f32\": {},\n  \
         \"speedup_batched_vs_serial\": {:.3},\n  \"speedup_f32_over_f64_batched\": {:.3},\n  \
         \"hot_swaps_during_load\": {},\n  \"lost_requests\": {}\n}}\n",
        targad_serve::ServeConfig::default().default_strategy.name(),
        features.avx2,
        features.fma,
        targad_linalg::kernel_path().name(),
        serial.clients,
        serial.rows,
        serial.rows_per_sec(),
        serial.p50_us,
        serial.p99_us,
        phase_json(&batched, &fill),
        phase_json(&batched_f32, &fill_f32),
        speedup,
        f32_over_f64,
        swaps + f32_swaps,
        serial_failures + batched_failures + f32_failures,
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_serve.json");
    std::fs::write(&path, json).expect("write bench_serve.json");
    println!("wrote {}", path.display());

    // In quick (CI smoke) mode load is too short-lived for the ratio to be
    // meaningful; the full run enforces the acceptance bar.
    if !quick_mode() {
        assert!(
            speedup >= 1.5,
            "micro-batched throughput {speedup:.2}x below the 1.5x acceptance bar"
        );
    }
}
