//! Model-store benchmark: cold-load latency of the three snapshot read
//! paths, then a 64-tenant closed-loop serve phase with LRU churn.
//!
//! Phase 1 — **cold load**. A Table-II-sized classifier (256 → 1024 →
//! 1024 → 6, ~10 MB of f64 weights) is written once as a v2 text
//! snapshot and once as a v3 binary snapshot, then loaded repeatedly
//! through each path: v2 text parse, v3 buffered read, and v3 zero-copy
//! `mmap`. All three must score bit-identically, the `mmap` path must
//! borrow every weight byte (`parameter_bytes() == 0`), and in the full
//! run the `mmap` load must be ≥ 20× faster than the text parse.
//!
//! Phase 2 — **multi-tenant serving**. 64 tenant snapshots on disk, a
//! byte budget with room for ~10 resident engines, and eight closed-loop
//! clients scoring through `MicroBatcher::submit_for` with rotating
//! tenant keys. Nearly every request faults a tenant in from the store
//! and evicts another — the LRU steady state. Acceptance: the resident
//! byte gauge never exceeds the budget (observed after every reply) and
//! zero requests are lost.
//!
//! Writes `results/bench_store.json`. Set `TARGAD_BENCH_QUICK=1` for a
//! seconds-long smoke run (CI) that skips the 20× bar but keeps every
//! invariant check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use targad_core::{
    snapshot as text_snapshot, Classifier, EnginePrecision, OodStrategy, Runtime, ThresholdCache,
};
use targad_linalg::rng as lrng;
use targad_obs::metrics;
use targad_serve::{MicroBatcher, ModelRegistry, ModelSnapshot, ServeConfig};
use targad_store::LoadMode;

fn quick_mode() -> bool {
    std::env::var("TARGAD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A deterministic synthetic classifier of the given architecture — the
/// cold-load cost depends only on the weight payload, not on training.
fn synthetic(dims: &[usize], m: usize, seed: u64) -> Classifier {
    let mut rng = lrng::seeded(seed);
    let mut matrices = Vec::new();
    for pair in dims.windows(2) {
        matrices.push(lrng::normal_matrix(&mut rng, pair[0], pair[1], 0.0, 0.5));
        matrices.push(lrng::normal_matrix(&mut rng, 1, pair[1], 0.0, 0.1));
    }
    let k = dims.last().unwrap() - m;
    Classifier::from_parameters(matrices, m, k).expect("consistent synthetic shapes")
}

fn median_us(mut ns: Vec<u64>) -> f64 {
    ns.sort_unstable();
    ns[ns.len() / 2] as f64 / 1_000.0
}

struct ColdLoad {
    weight_bytes: usize,
    v2_bytes: u64,
    v3_bytes: u64,
    text_us: f64,
    buffered_us: f64,
    mmap_us: f64,
}

/// Times the three cold-load paths on one model, checking bit-identity
/// and the zero-copy property along the way.
fn cold_load_phase(dir: &std::path::Path, iters: usize) -> ColdLoad {
    let dims: &[usize] = if quick_mode() {
        &[16, 32, 6]
    } else {
        &[256, 1024, 1024, 6]
    };
    let clf = synthetic(dims, 3, 41);
    let cache = ThresholdCache::complete(0.125, -3.5, 1.0625e-3);
    let weight_bytes: usize = dims.windows(2).map(|p| (p[0] + 1) * p[1] * 8).sum();

    let v2_path = dir.join("cold.snapshot.txt");
    let v3_path = dir.join("cold.tgsnp");
    std::fs::write(
        &v2_path,
        text_snapshot::to_string_with_thresholds(&clf, &cache),
    )
    .expect("write v2 text snapshot");
    targad_store::save(&clf, &cache, EnginePrecision::F64, &v3_path).expect("write v3 snapshot");
    let v2_bytes = std::fs::metadata(&v2_path).expect("v2 metadata").len();
    let v3_bytes = std::fs::metadata(&v3_path).expect("v3 metadata").len();

    let probe = lrng::normal_matrix(&mut lrng::seeded(5), 8, dims[0], 0.0, 1.0);
    let reference = clf.target_scores(&probe);

    let (mut text_ns, mut buffered_ns, mut mmap_ns) = (Vec::new(), Vec::new(), Vec::new());
    for iter in 0..=iters {
        let t0 = Instant::now();
        let text = std::fs::read_to_string(&v2_path).expect("read v2");
        let (text_clf, text_thresholds) =
            text_snapshot::from_string_with_thresholds(&text).expect("parse v2");
        let t_text = t0.elapsed();

        let t0 = Instant::now();
        let buffered = targad_store::load_with(&v3_path, LoadMode::Buffered).expect("buffered");
        let t_buffered = t0.elapsed();

        let t0 = Instant::now();
        let mapped = targad_store::load_with(&v3_path, LoadMode::Mmap).expect("mmap");
        let t_mmap = t0.elapsed();

        if iter == 0 {
            // Warm-up iteration doubles as the correctness check: all
            // three paths must reproduce the in-memory model bit for bit,
            // and the mmap path must not have copied a single weight.
            assert_eq!(text_thresholds, cache);
            assert_eq!(buffered.thresholds, cache);
            assert_eq!(mapped.thresholds, cache);
            assert_eq!(text_clf.target_scores(&probe), reference);
            assert_eq!(buffered.classifier.target_scores(&probe), reference);
            assert_eq!(mapped.classifier.target_scores(&probe), reference);
            assert!(mapped.classifier.has_borrowed_parameters());
            assert_eq!(
                mapped.classifier.parameter_bytes(),
                0,
                "mmap load must borrow every weight byte"
            );
            continue;
        }
        text_ns.push(t_text.as_nanos() as u64);
        buffered_ns.push(t_buffered.as_nanos() as u64);
        mmap_ns.push(t_mmap.as_nanos() as u64);
    }

    ColdLoad {
        weight_bytes,
        v2_bytes,
        v3_bytes,
        text_us: median_us(text_ns),
        buffered_us: median_us(buffered_ns),
        mmap_us: median_us(mmap_ns),
    }
}

struct ServePhase {
    tenants: usize,
    clients: usize,
    budget_bytes: u64,
    unit_bytes: u64,
    rows: u64,
    lost: u64,
    max_resident: u64,
    evictions: u64,
    elapsed: Duration,
}

/// The 64-tenant closed loop: rotating tenant keys against a budget that
/// keeps ~10 engines resident, so the LRU churns on nearly every request.
fn serve_phase(dir: &std::path::Path) -> ServePhase {
    let (tenants, clients, iters) = if quick_mode() {
        (8, 4, 40)
    } else {
        (64, 8, 400)
    };
    let dims: &[usize] = &[32, 64, 6];
    let cache = ThresholdCache::complete(0.25, -2.5, 2.0e-3);
    for t in 0..tenants {
        let clf = synthetic(dims, 3, 1000 + t as u64);
        targad_store::save(
            &clf,
            &cache,
            EnginePrecision::F64,
            dir.join(format!("t{t}.tgsnp")),
        )
        .expect("write tenant snapshot");
    }
    let default_snap = ModelSnapshot::new(synthetic(dims, 3, 7), cache, "bench-default");
    let unit = default_snap.resident_cost();
    // Room for the default plus ~9 tenants (quick: ~3 of 8), so faulting
    // the full rotation in forces steady LRU churn either way.
    let resident_units = if quick_mode() { 4 } else { 10 };
    let budget = unit * resident_units + unit / 2;

    let config = ServeConfig::builder()
        .max_batch(32)
        .max_queue_wait(Duration::from_micros(200))
        .model_budget_bytes(budget)
        .store_dir(Some(dir.to_path_buf()))
        .build()
        .expect("valid config");
    let registry = Arc::new(
        ModelRegistry::with_options(
            default_snap,
            EnginePrecision::F64,
            budget,
            Some(dir.to_path_buf()),
        )
        .expect("default fits the budget"),
    );
    let batcher = Arc::new(MicroBatcher::start(
        &config,
        Arc::clone(&registry),
        Runtime::new(2),
    ));

    let x = lrng::normal_matrix(&mut lrng::seeded(9), 4, dims[0], 0.0, 1.0);
    let evictions_before = metrics::STORE_EVICTIONS.get();
    let max_resident = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let max_resident = Arc::clone(&max_resident);
            let x = x.clone();
            std::thread::spawn(move || {
                let (mut rows, mut lost) = (0u64, 0u64);
                for i in 0..iters {
                    let tenant = format!("t{}", (c * 31 + i * 7) % tenants);
                    let mut data = Vec::with_capacity(2 * x.cols());
                    data.extend_from_slice(x.row(i % 2));
                    data.extend_from_slice(x.row(i % 2 + 2));
                    match batcher.submit_for(Some(&tenant), data, 2, x.cols(), OodStrategy::Msp) {
                        Ok(scored) if scored.len() == 2 => rows += 2,
                        _ => lost += 2,
                    }
                    let resident = registry.resident_bytes();
                    max_resident.fetch_max(resident, Ordering::Relaxed);
                    assert!(
                        resident <= budget,
                        "resident bytes {resident} exceeded the budget {budget}"
                    );
                }
                (rows, lost)
            })
        })
        .collect();
    let (mut rows, mut lost) = (0u64, 0u64);
    for handle in handles {
        let (r, l) = handle.join().expect("client thread");
        rows += r;
        lost += l;
    }
    let elapsed = started.elapsed();
    batcher.shutdown();
    assert_eq!(batcher.depth(), 0, "queue must drain on shutdown");

    ServePhase {
        tenants,
        clients,
        budget_bytes: budget,
        unit_bytes: unit,
        rows,
        lost,
        max_resident: max_resident.load(Ordering::Relaxed),
        evictions: metrics::STORE_EVICTIONS.get() - evictions_before,
        elapsed,
    }
}

fn main() {
    // The eviction/load counters reported below sit behind the runtime
    // telemetry gate.
    targad_obs::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("targad-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let iters = if quick_mode() { 3 } else { 15 };
    let cold = cold_load_phase(&dir, iters);
    let mmap_vs_text = cold.text_us / cold.mmap_us;
    let buffered_vs_text = cold.text_us / cold.buffered_us;
    println!(
        "cold load  : {:>7.1} KB weights | text {:>9.1}us, buffered {:>8.1}us, mmap {:>8.1}us",
        cold.weight_bytes as f64 / 1024.0,
        cold.text_us,
        cold.buffered_us,
        cold.mmap_us
    );
    println!("speedup    : mmap {mmap_vs_text:.1}x over text parse (acceptance: >= 20x), buffered {buffered_vs_text:.1}x");

    let serve = serve_phase(&dir);
    println!(
        "serve churn: {} tenants, {} clients, {:>6} rows in {:>6.1}ms, {} evictions, \
         resident max {} <= budget {}, lost {}",
        serve.tenants,
        serve.clients,
        serve.rows,
        serve.elapsed.as_secs_f64() * 1e3,
        serve.evictions,
        serve.max_resident,
        serve.budget_bytes,
        serve.lost
    );

    let mode = if quick_mode() { "quick" } else { "full" };
    let json = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"mmap_supported\": {},\n  \
         \"cold_load\": {{\n    \"weight_bytes\": {},\n    \"v2_text_bytes\": {},\n    \
         \"v3_binary_bytes\": {},\n    \"text_parse_us\": {:.1},\n    \
         \"binary_buffered_us\": {:.1},\n    \"mmap_us\": {:.1},\n    \
         \"speedup_mmap_vs_text\": {:.1},\n    \"speedup_buffered_vs_text\": {:.1},\n    \
         \"mmap_copied_weight_bytes\": 0\n  }},\n  \
         \"serve_phase\": {{\n    \"tenants\": {},\n    \"clients\": {},\n    \
         \"budget_bytes\": {},\n    \"engine_unit_bytes\": {},\n    \"rows\": {},\n    \
         \"lost_requests\": {},\n    \"max_resident_bytes\": {},\n    \
         \"evictions\": {},\n    \"elapsed_ms\": {:.1},\n    \"rows_per_sec\": {:.1}\n  }}\n}}\n",
        targad_store::mmap_supported(),
        cold.weight_bytes,
        cold.v2_bytes,
        cold.v3_bytes,
        cold.text_us,
        cold.buffered_us,
        cold.mmap_us,
        mmap_vs_text,
        buffered_vs_text,
        serve.tenants,
        serve.clients,
        serve.budget_bytes,
        serve.unit_bytes,
        serve.rows,
        serve.lost,
        serve.max_resident,
        serve.evictions,
        serve.elapsed.as_secs_f64() * 1e3,
        serve.rows as f64 / serve.elapsed.as_secs_f64(),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_store.json");
    std::fs::write(&path, json).expect("write bench_store.json");
    println!("wrote {}", path.display());

    assert_eq!(serve.lost, 0, "the LRU churn phase lost requests");
    assert!(serve.max_resident <= serve.budget_bytes);
    // Quick (CI smoke) mode runs a toy model where fixed syscall overhead
    // dominates; the full run enforces the acceptance bar.
    if !quick_mode() {
        assert!(
            mmap_vs_text >= 20.0,
            "mmap cold load only {mmap_vs_text:.1}x faster than text parse (acceptance: >= 20x)"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
