//! Extension ablations beyond the paper's Table III (DESIGN.md §6).

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::ext_ablations(&args));
}
