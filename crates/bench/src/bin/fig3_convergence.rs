//! Regenerates Fig. 3: convergence (loss per epoch, AUPRC per epoch).

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::fig3(&args));
}
