//! Regenerates Fig. 4: robustness scenarios (use `--part a|b|c|d`).

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::fig4(&args));
}
