//! Regenerates Fig. 5: weight-updating dynamics.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::fig5(&args));
}
