//! Regenerates Fig. 6: alpha vs contamination sensitivity matrices.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::fig6(&args));
}
