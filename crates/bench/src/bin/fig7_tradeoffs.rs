//! Regenerates Fig. 7: trade-off sensitivity (use `--part eta|lambda`).

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::fig7(&args));
}
