//! Observability profile run: one telemetry-enabled TargAD fit plus one
//! baseline fit, with every structured event captured.
//!
//! Writes:
//! - `results/obs_fit.jsonl` — the JSON Lines event stream (TargAD's
//!   typed events followed by the baselines' hub `model_epoch` lines);
//! - `results/obs_profile.json` — the aggregated phase-timer tree and the
//!   full metrics snapshot;
//!
//! and prints the human-readable phase tree to stdout.

use std::fs::File;
use std::path::Path;

use targad_baselines::DevNet;
use targad_core::detector::{Detector, TrainView};
use targad_core::{TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_obs::sink::JsonlSink;

fn main() {
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");

    targad_obs::set_enabled(true);
    targad_obs::metrics::reset_all();
    targad_obs::profile::reset_all();

    let bundle = GeneratorSpec::quick_demo().generate(29);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 5;
    cfg.clf_epochs = 10;

    // TargAD: typed events straight into the JSONL file.
    let jsonl_path = results.join("obs_fit.jsonl");
    let file = File::create(&jsonl_path).expect("create obs_fit.jsonl");
    let mut sink = JsonlSink::new(file);
    let mut model = TargAd::try_new(cfg).expect("valid config");
    model
        .fit_observed(&bundle.train, 29, &mut sink)
        .expect("TargAD fit");
    let file = sink.into_inner();

    // A baseline: its epoch loop reports through the process-global hub.
    targad_obs::hub::install(Box::new(file));
    let view = TrainView::from_dataset(&bundle.train);
    let mut devnet = DevNet::default();
    devnet.fit(&view, 29).expect("DevNet fit");
    targad_obs::hub::flush();
    targad_obs::hub::uninstall();

    // Aggregates: phase tree + metrics snapshot.
    let profile_path = results.join("obs_profile.json");
    let json = format!(
        "{{\n  \"phases\": {},\n  \"metrics\": {}\n}}\n",
        targad_obs::profile::tree_json(),
        targad_obs::metrics::snapshot_json(),
    );
    std::fs::write(&profile_path, json).expect("write obs_profile.json");
    targad_obs::set_enabled(false);

    println!("{}", targad_obs::profile::render_tree());
    println!("wrote {}", jsonl_path.display());
    println!("wrote {}", profile_path.display());
}
