//! Runs every table/figure suite and writes each report to
//! `results/<name>.txt` (plus stdout progress).

use std::time::Instant;

use targad_bench::report::save_result;
use targad_bench::{suites, CommonArgs};

type Suite = fn(&CommonArgs) -> String;

fn main() {
    let args = CommonArgs::parse();
    let suites: [(&str, Suite); 10] = [
        ("table1_datasets", suites::table1),
        ("table2_overall", suites::table2),
        ("table3_ablation", suites::table3),
        ("table4_ood", suites::table4),
        ("fig3_convergence", suites::fig3),
        ("fig4_robustness", suites::fig4),
        ("fig5_weights", suites::fig5),
        ("fig6_alpha", suites::fig6),
        ("fig7_tradeoffs", suites::fig7),
        ("ext_ablations", suites::ext_ablations),
    ];

    for (name, run) in suites {
        let start = Instant::now();
        eprintln!(">> running {name} …");
        let output = run(&args);
        let path = save_result(name, &output).expect("write results file");
        eprintln!(
            "   done in {:.1}s -> {}",
            start.elapsed().as_secs_f64(),
            path.display()
        );
        println!("{output}");
    }
}
