//! Fast sanity pass: one tiny TargAD fit per preset (sub-minute total).

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::quick_smoke(&args));
}
