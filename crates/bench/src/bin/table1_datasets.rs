//! Regenerates Table I: dataset statistics.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::table1(&args));
}
