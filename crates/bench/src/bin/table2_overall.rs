//! Regenerates Table II: TargAD vs eleven baselines on four benchmarks.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::table2(&args));
}
