//! Regenerates Table III: loss-term ablation on UNSW-NB15.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::table3(&args));
}
