//! Regenerates Table IV: three-way identification under MSP / ES / ED.

use targad_bench::{suites, CommonArgs};

fn main() {
    let args = CommonArgs::parse();
    print!("{}", suites::table4(&args));
}
