//! Core evaluation machinery: fit models, score test sets, aggregate runs.

use targad_baselines::{all_baselines, Detector, TrainView};
use targad_core::{TargAd, TargAdConfig};
use targad_data::{Dataset, DatasetBundle};
use targad_linalg::stats;
use targad_metrics::{auroc, average_precision};

/// AUPRC/AUROC of one run against the target-anomaly ground truth.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Average precision (the paper's AUPRC).
    pub auprc: f64,
    /// Area under the ROC curve.
    pub auroc: f64,
}

/// Mean ± population standard deviation over runs.
#[derive(Clone, Copy, Debug)]
pub struct MeanStd {
    /// Mean over runs.
    pub mean: f64,
    /// Standard deviation over runs.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates a slice of run values.
    pub fn of(values: &[f64]) -> Self {
        Self { mean: stats::mean(values), std: stats::std_dev(values) }
    }

    /// `0.804±0.012` formatting, as in Table II.
    pub fn fmt(&self) -> String {
        format!("{:.3}±{:.3}", self.mean, self.std)
    }
}

/// Scores `scores` against the target labels of `test`.
pub fn eval_scores(scores: &[f64], test: &Dataset) -> EvalResult {
    let labels = test.target_labels();
    EvalResult { auprc: average_precision(scores, &labels), auroc: auroc(scores, &labels) }
}

/// Fits TargAD with `config` on the bundle's training split and evaluates
/// on its test split.
pub fn eval_targad(bundle: &DatasetBundle, config: TargAdConfig, seed: u64) -> EvalResult {
    let mut model = TargAd::new(config);
    model.fit(&bundle.train, seed).expect("TargAD fit");
    eval_scores(&model.score_dataset(&bundle.test), &bundle.test)
}

/// Fits one baseline and evaluates it on the bundle's test split.
pub fn eval_model(model: &mut dyn Detector, bundle: &DatasetBundle, seed: u64) -> EvalResult {
    let view = TrainView::from_dataset(&bundle.train);
    model.fit(&view, seed);
    eval_scores(&model.score(&bundle.test.features), &bundle.test)
}

/// AUPRC and AUROC aggregates for one model on one dataset.
#[derive(Clone, Debug)]
pub struct ModelRow {
    /// Model display name.
    pub name: String,
    /// AUPRC mean ± std across seeds.
    pub auprc: MeanStd,
    /// AUROC mean ± std across seeds.
    pub auroc: MeanStd,
}

/// Runs TargAD plus all eleven baselines on `bundle` across `seeds`,
/// returning one aggregate row per model (TargAD first, then Table II
/// order). The TargAD configuration is shared across seeds.
pub fn run_suite(bundle: &DatasetBundle, config: &TargAdConfig, seeds: &[u64]) -> Vec<ModelRow> {
    let mut rows = Vec::with_capacity(12);

    let mut t_ap = Vec::new();
    let mut t_roc = Vec::new();
    for &seed in seeds {
        let r = eval_targad(bundle, config.clone(), seed);
        t_ap.push(r.auprc);
        t_roc.push(r.auroc);
    }
    rows.push(ModelRow {
        name: "TargAD".to_string(),
        auprc: MeanStd::of(&t_ap),
        auroc: MeanStd::of(&t_roc),
    });

    for template in all_baselines() {
        let mut ap = Vec::new();
        let mut roc = Vec::new();
        for &seed in seeds {
            // Fresh instance per seed (fit state is per-run).
            let mut model = baseline_by_name(template.name());
            let r = eval_model(model.as_mut(), bundle, seed);
            ap.push(r.auprc);
            roc.push(r.auroc);
        }
        rows.push(ModelRow {
            name: template.name().to_string(),
            auprc: MeanStd::of(&ap),
            auroc: MeanStd::of(&roc),
        });
    }
    rows
}

/// Instantiates a baseline by its Table II name.
///
/// # Panics
/// Panics on an unknown name.
pub fn baseline_by_name(name: &str) -> Box<dyn Detector> {
    all_baselines()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown baseline `{name}`"))
}

/// A TargAD configuration adequate for the scaled synthetic benchmarks:
/// paper hyper-parameters with learning rates tuned for the substitute
/// data (see `TargAdConfig::default_tuned`) and `k` pinned to the preset's
/// hidden group count when known.
pub fn harness_config(normal_groups: usize) -> TargAdConfig {
    let mut cfg = TargAdConfig::default_tuned();
    cfg.k = Some(normal_groups);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;

    #[test]
    fn mean_std_aggregation() {
        let m = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert!((m.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(m.fmt().contains('±'));
    }

    #[test]
    fn baseline_lookup() {
        assert_eq!(baseline_by_name("DevNet").name(), "DevNet");
        assert_eq!(baseline_by_name("iForest").name(), "iForest");
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn baseline_lookup_rejects_unknown() {
        let _ = baseline_by_name("NotAModel");
    }

    #[test]
    fn eval_targad_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(3);
        let mut cfg = targad_core::TargAdConfig::fast();
        cfg.clf_epochs = 10;
        cfg.ae_epochs = 5;
        let r = eval_targad(&bundle, cfg, 1);
        assert!(r.auprc > 0.0 && r.auprc <= 1.0);
        assert!(r.auroc > 0.5);
    }

    #[test]
    fn eval_baseline_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(4);
        let mut forest = baseline_by_name("iForest");
        let r = eval_model(forest.as_mut(), &bundle, 1);
        assert!(r.auroc > 0.5);
    }
}
