//! Core evaluation machinery: fit models, score test sets, aggregate runs.

use targad_baselines::{all_baselines, Detector, TrainView};
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::{Dataset, DatasetBundle};
use targad_linalg::stats;
use targad_metrics::{auroc, average_precision};

/// AUPRC/AUROC of one run against the target-anomaly ground truth.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Average precision (the paper's AUPRC).
    pub auprc: f64,
    /// Area under the ROC curve.
    pub auroc: f64,
}

/// Mean ± population standard deviation over runs.
#[derive(Clone, Copy, Debug)]
pub struct MeanStd {
    /// Mean over runs.
    pub mean: f64,
    /// Standard deviation over runs.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates a slice of run values.
    pub fn of(values: &[f64]) -> Self {
        Self {
            mean: stats::mean(values),
            std: stats::std_dev(values),
        }
    }

    /// `0.804±0.012` formatting, as in Table II.
    pub fn fmt(&self) -> String {
        format!("{:.3}±{:.3}", self.mean, self.std)
    }
}

/// Scores `scores` against the target labels of `test`.
pub fn eval_scores(scores: &[f64], test: &Dataset) -> EvalResult {
    let labels = test.target_labels();
    EvalResult {
        auprc: average_precision(scores, &labels),
        auroc: auroc(scores, &labels),
    }
}

/// Fits TargAD with `config` on the bundle's training split and evaluates
/// on its test split. Convenience wrapper: TargAD goes through the same
/// [`eval_model`] path as every baseline (it implements [`Detector`]).
pub fn eval_targad(bundle: &DatasetBundle, config: TargAdConfig, seed: u64) -> EvalResult {
    let mut model = TargAd::try_new(config).expect("valid TargAD config");
    eval_model(&mut model, bundle, seed)
}

/// Fits any detector (TargAD or baseline) and evaluates it on the bundle's
/// test split.
///
/// # Panics
/// Panics when the detector rejects the training data (harness bundles are
/// always well-formed, so this indicates a bug in the experiment setup).
pub fn eval_model(model: &mut dyn Detector, bundle: &DatasetBundle, seed: u64) -> EvalResult {
    let view = TrainView::from_dataset(&bundle.train);
    model
        .fit(&view, seed)
        .unwrap_or_else(|e| panic!("{}: fit failed: {e}", model.name()));
    let scores = model
        .try_score(&bundle.test.features)
        .unwrap_or_else(|e| panic!("{}: score failed: {e}", model.name()));
    eval_scores(&scores, &bundle.test)
}

/// AUPRC and AUROC aggregates for one model on one dataset.
#[derive(Clone, Debug)]
pub struct ModelRow {
    /// Model display name.
    pub name: String,
    /// AUPRC mean ± std across seeds.
    pub auprc: MeanStd,
    /// AUROC mean ± std across seeds.
    pub auroc: MeanStd,
}

/// Runs TargAD plus all eleven baselines on `bundle` across `seeds`,
/// returning one aggregate row per model (TargAD first, then Table II
/// order). The TargAD configuration is shared across seeds. Cells fan out
/// over the [`Runtime`] from the environment ([`run_suite_rt`] for an
/// explicit one); results are identical at any worker count.
pub fn run_suite(bundle: &DatasetBundle, config: &TargAdConfig, seeds: &[u64]) -> Vec<ModelRow> {
    run_suite_rt(bundle, config, seeds, Runtime::from_env())
}

/// [`run_suite`] with an explicit runtime: every `(model, seed)` cell is an
/// independent fit-and-score task, so the grid is embarrassingly parallel.
/// Detectors are constructed *inside* each cell (`Box<dyn Detector>` is not
/// `Send`), with TargAD's inner runtime serialized so parallelism lives at
/// the grid level. Every cell's result depends only on `(model, seed)` —
/// never on worker count — so the table is independent of `TARGAD_THREADS`.
///
/// When `TARGAD_MODEL_CACHE` names a directory, TargAD cells fit through
/// the binary model store ([`crate::model_cache`]): reruns of the same
/// `(dataset, config, seed)` cell `mmap`-load the fitted model instead of
/// refitting, with bit-identical scores.
pub fn run_suite_rt(
    bundle: &DatasetBundle,
    config: &TargAdConfig,
    seeds: &[u64],
    runtime: Runtime,
) -> Vec<ModelRow> {
    let names: Vec<&'static str> = std::iter::once("TargAD")
        .chain(all_baselines().iter().map(|b| b.name()))
        .collect();
    let n_seeds = seeds.len();
    let cache_dir = crate::model_cache::dir_from_env();
    let cells = runtime.par_map_indexed(names.len() * n_seeds, |cell| {
        let (mi, si) = (cell / n_seeds, cell % n_seeds);
        if mi == 0 {
            if let Some(dir) = &cache_dir {
                let scores =
                    crate::model_cache::targad_scores_cached(dir, bundle, config, seeds[si]);
                return eval_scores(&scores, &bundle.test);
            }
        }
        let mut model: Box<dyn Detector> = if mi == 0 {
            let targad = TargAd::try_new(config.clone()).expect("valid TargAD config");
            Box::new(targad.with_runtime(Runtime::serial()))
        } else {
            baseline_by_name(names[mi])
        };
        eval_model(model.as_mut(), bundle, seeds[si])
    });
    names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let ap: Vec<f64> = (0..n_seeds)
                .map(|si| cells[mi * n_seeds + si].auprc)
                .collect();
            let roc: Vec<f64> = (0..n_seeds)
                .map(|si| cells[mi * n_seeds + si].auroc)
                .collect();
            ModelRow {
                name: name.to_string(),
                auprc: MeanStd::of(&ap),
                auroc: MeanStd::of(&roc),
            }
        })
        .collect()
}

/// Instantiates a baseline by its Table II name.
///
/// # Panics
/// Panics on an unknown name.
pub fn baseline_by_name(name: &str) -> Box<dyn Detector> {
    all_baselines()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown baseline `{name}`"))
}

/// A TargAD configuration adequate for the scaled synthetic benchmarks:
/// paper hyper-parameters with learning rates tuned for the substitute
/// data (see `TargAdConfig::default_tuned`) and `k` pinned to the preset's
/// hidden group count when known.
pub fn harness_config(normal_groups: usize) -> TargAdConfig {
    let mut cfg = TargAdConfig::default_tuned();
    cfg.k = Some(normal_groups);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;

    #[test]
    fn mean_std_aggregation() {
        let m = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert!((m.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(m.fmt().contains('±'));
    }

    #[test]
    fn baseline_lookup() {
        assert_eq!(baseline_by_name("DevNet").name(), "DevNet");
        assert_eq!(baseline_by_name("iForest").name(), "iForest");
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn baseline_lookup_rejects_unknown() {
        let _ = baseline_by_name("NotAModel");
    }

    #[test]
    fn eval_targad_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(3);
        let mut cfg = targad_core::TargAdConfig::fast();
        cfg.clf_epochs = 10;
        cfg.ae_epochs = 5;
        let r = eval_targad(&bundle, cfg, 1);
        assert!(r.auprc > 0.0 && r.auprc <= 1.0);
        assert!(r.auroc > 0.5);
    }

    #[test]
    fn eval_baseline_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(4);
        let mut forest = baseline_by_name("iForest");
        let r = eval_model(forest.as_mut(), &bundle, 1);
        assert!(r.auroc > 0.5);
    }
}
