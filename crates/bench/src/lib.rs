//! Experiment harness for the TargAD reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; each
//! prints the same rows/series the paper reports and also returns its
//! output as a `String` through the functions in this library so
//! `run_all` can collect everything into `results/`.
//!
//! Scaling: paper-scale datasets (Table I row counts) are reproduced at
//! `--full`; the default `--scale 0.03` keeps the whole grid laptop-fast
//! while preserving all trends (DESIGN.md §2). Runs are averaged over
//! `--seeds N` independent model seeds, as in the paper (5 runs).

pub mod args;
pub mod experiments;
pub mod model_cache;
pub mod report;
pub mod robustness;
pub mod sensitivity;
pub mod suites;

pub use args::CommonArgs;
pub use experiments::{
    eval_model, eval_scores, harness_config, run_suite, run_suite_rt, EvalResult, MeanStd,
};
