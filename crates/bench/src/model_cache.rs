//! Opt-in cache of fitted TargAD models in the binary v3 store.
//!
//! Table-style experiment grids refit the same `(dataset, config, seed)`
//! TargAD cell across reruns — by far the dominant harness cost. When the
//! `TARGAD_MODEL_CACHE` environment variable names a directory, every
//! TargAD cell of [`crate::run_suite_rt`] first looks for
//! `targad-<key>.tgsnp` there, where `<key>` is an FNV-64 fingerprint of
//! the training split (feature bits, truth, label mask), the full
//! `TargAdConfig`, and the seed. A hit restores the classifier through
//! `targad-store`'s zero-copy `mmap` path and scores the test split on it
//! — bit-identical to refitting, because the v3 round trip preserves every
//! weight bit and scoring is deterministic — and a miss fits as usual and
//! populates the cache. Cache writes are best-effort: an unwritable
//! directory degrades to refitting, never to a failed experiment.

use std::path::{Path, PathBuf};

use targad_core::{EnginePrecision, Runtime, TargAd, TargAdConfig};
use targad_data::{Dataset, DatasetBundle};
use targad_obs::metrics;

/// The environment variable naming the cache directory.
pub const ENV_VAR: &str = "TARGAD_MODEL_CACHE";

/// The configured cache directory, if caching is enabled.
pub fn dir_from_env() -> Option<PathBuf> {
    std::env::var_os(ENV_VAR)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Incremental byte-wise FNV-1a-64 (collisions across distinct cells are
/// no worse than any other 64-bit content hash, and a collision only
/// ever reuses a *fitted model*, which the bit-identity tests would
/// surface immediately).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The cache key of one TargAD cell: training data (bits, truth, label
/// mask), configuration, and seed.
pub fn cache_key(train: &Dataset, config: &TargAdConfig, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(train.features.rows() as u64);
    h.write_u64(train.features.cols() as u64);
    for &v in train.features.as_slice() {
        h.write_u64(v.to_bits());
    }
    for t in &train.truth {
        h.write(format!("{t:?}").as_bytes());
    }
    for &l in &train.labeled {
        h.write(&[u8::from(l)]);
    }
    // The config fingerprint goes through Debug: every field participates,
    // and a future field addition changes the key (a conservative cache
    // invalidation, never a stale hit).
    h.write(format!("{config:?}").as_bytes());
    h.write_u64(seed);
    h.0
}

/// The snapshot path of a cache key inside `dir`.
pub fn cache_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("targad-{key:016x}.tgsnp"))
}

/// Scores the bundle's test split for one TargAD cell through the cache:
/// a hit `mmap`-loads the fitted classifier; a miss fits with
/// [`Runtime::serial`] (the same inner runtime `run_suite_rt` uses, so
/// cached and uncached cells are bit-identical) and saves the result.
///
/// # Panics
/// Panics when the configuration is invalid or fitting fails, matching
/// the harness contract of [`crate::eval_model`].
pub fn targad_scores_cached(
    dir: &Path,
    bundle: &DatasetBundle,
    config: &TargAdConfig,
    seed: u64,
) -> Vec<f64> {
    let key = cache_key(&bundle.train, config, seed);
    let path = cache_path(dir, key);
    if let Ok(model) = targad_store::load(&path) {
        metrics::STORE_CACHE_HITS.inc();
        return model
            .classifier
            .target_scores_rt(&bundle.test.features, &Runtime::serial());
    }
    metrics::STORE_CACHE_MISSES.inc();
    let mut model = TargAd::try_new(config.clone())
        .expect("valid TargAD config")
        .with_runtime(Runtime::serial());
    let view = targad_baselines::TrainView::from_dataset(&bundle.train);
    model
        .fit_view(&view, seed)
        .unwrap_or_else(|e| panic!("TargAD: fit failed: {e}"));
    let scores = model
        .try_score_matrix(&bundle.test.features)
        .expect("score after fit");
    let clf = model.classifier().expect("classifier after fit");
    if std::fs::create_dir_all(dir).is_ok() {
        // Best-effort: a full disk or read-only dir costs a refit later,
        // nothing else.
        let _ = targad_store::save(clf, model.thresholds(), EnginePrecision::F64, &path);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_scores;
    use targad_data::GeneratorSpec;

    fn scratch_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("targad-model-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create cache dir");
        dir
    }

    #[test]
    fn keys_separate_data_config_and_seed() {
        let a = GeneratorSpec::quick_demo().generate(1);
        let b = GeneratorSpec::quick_demo().generate(2);
        let cfg = TargAdConfig::fast();
        let mut cfg2 = cfg.clone();
        cfg2.clf_epochs += 1;
        let k = cache_key(&a.train, &cfg, 7);
        assert_eq!(k, cache_key(&a.train, &cfg, 7), "deterministic");
        assert_ne!(k, cache_key(&b.train, &cfg, 7), "data changes the key");
        assert_ne!(k, cache_key(&a.train, &cfg2, 7), "config changes the key");
        assert_ne!(k, cache_key(&a.train, &cfg, 8), "seed changes the key");
    }

    #[test]
    fn cached_and_refit_scores_are_bit_identical() {
        let bundle = GeneratorSpec::quick_demo().generate(11);
        let mut cfg = TargAdConfig::fast();
        cfg.clf_epochs = 8;
        cfg.ae_epochs = 4;
        let dir = scratch_dir();
        let path = cache_path(&dir, cache_key(&bundle.train, &cfg, 3));
        std::fs::remove_file(&path).ok();

        let cold = targad_scores_cached(&dir, &bundle, &cfg, 3);
        assert!(path.is_file(), "miss populates the cache");
        let warm = targad_scores_cached(&dir, &bundle, &cfg, 3);
        let cold_bits: Vec<u64> = cold.iter().map(|v| v.to_bits()).collect();
        let warm_bits: Vec<u64> = warm.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cold_bits, warm_bits, "cache hit must be bit-identical");

        let r = eval_scores(&warm, &bundle.test);
        assert!(r.auprc > 0.0 && r.auroc > 0.0);
        std::fs::remove_file(&path).ok();
    }
}
