//! Plain-text table rendering and result persistence.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A fixed-width text table builder for experiment output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for c in 0..cols {
                let pad = widths[c] - cells[c].chars().count();
                let _ = write!(out, "{}{}", cells[c], " ".repeat(pad));
                if c + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Writes experiment output under `results/<name>.txt` (creating the
/// directory), returning the path written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_result(name: &str, content: &str) -> io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.txt"));
    fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["model", "AUPRC"]);
        t.row(&["TargAD".into(), "0.804".into()]);
        t.row(&["iForest".into(), "0.301".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // AUPRC column starts at the same offset in all rows.
        let off = lines[0].find("AUPRC").unwrap();
        assert_eq!(&lines[2][off..off + 5], "0.804");
        assert_eq!(&lines[3][off..off + 5], "0.301");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
