//! Fig. 4 robustness scenarios on the UNSW-NB15 preset.
//!
//! Four perturbations of the training distribution, each evaluated with
//! TargAD plus the semi-supervised baselines the paper plots:
//!
//! - **(a)** novel non-target anomaly types: the training data contains
//!   only a subset of the four non-target classes while the test set keeps
//!   all four;
//! - **(b)** number of target classes `m ∈ 1..=6` (non-target classes
//!   `7 − m`, the UNSW taxonomy has 7 anomaly classes);
//! - **(c)** labeled-anomaly budget per class;
//! - **(d)** contamination rate of the unlabeled data
//!   `∈ {3%, 5%, 7%, 9%}`.

use targad_data::{GeneratorSpec, Preset};

use crate::experiments::{baseline_by_name, eval_model, eval_targad, harness_config, MeanStd};
use crate::report::Table;

/// The semi-supervised baselines plotted in Fig. 4.
pub const FIG4_BASELINES: [&str; 6] = ["FEAWAD", "DevNet", "DeepSAD", "DPLAN", "PIA-WAL", "PReNet"];

/// One scenario: a label for the x-axis plus the spec to generate.
pub struct Scenario {
    /// X-axis label (e.g. "2 new types").
    pub label: String,
    /// The dataset spec for this point.
    pub spec: GeneratorSpec,
}

/// Fig. 4(a): 0–3 novel non-target types at test time.
///
/// Mirrors the paper's settings: train on {F,A,E,R} / {F,A,R} / {A,R} /
/// {R} (class indices 0–3), always testing against all four.
pub fn scenarios_new_types(scale: f64) -> Vec<Scenario> {
    let subsets: [(usize, Vec<usize>); 4] = [
        (0, vec![0, 1, 2, 3]),
        (1, vec![0, 1, 3]),
        (2, vec![1, 3]),
        (3, vec![3]),
    ];
    subsets
        .into_iter()
        .map(|(new_types, classes)| {
            let mut spec = Preset::UnswNb15.spec(scale);
            spec.train_non_target_classes = Some(classes);
            Scenario {
                label: format!("{new_types} new non-target types"),
                spec,
            }
        })
        .collect()
}

/// Fig. 4(b): `m ∈ 1..=6` target classes (out of 7 anomaly classes).
pub fn scenarios_target_classes(scale: f64) -> Vec<Scenario> {
    (1..=6)
        .map(|m| {
            let mut spec = Preset::UnswNb15.spec(scale);
            spec.target_classes = m;
            spec.non_target_classes = 7 - m;
            Scenario {
                label: format!("m = {m}"),
                spec,
            }
        })
        .collect()
}

/// Fig. 4(c): labeled budget at {20%, 60%, 100%} of the preset's
/// per-class allocation (the paper's absolute counts 20/60/100 at full
/// scale).
pub fn scenarios_labeled_counts(scale: f64) -> Vec<Scenario> {
    [0.2, 0.6, 1.0]
        .into_iter()
        .map(|frac| {
            let mut spec = Preset::UnswNb15.spec(scale);
            spec.labeled_per_class =
                ((spec.labeled_per_class as f64 * frac).round() as usize).max(2);
            Scenario {
                label: format!("{} labels/class", spec.labeled_per_class),
                spec,
            }
        })
        .collect()
}

/// Fig. 4(d): contamination rate of the unlabeled training data.
pub fn scenarios_contamination(scale: f64) -> Vec<Scenario> {
    [0.03, 0.05, 0.07, 0.09]
        .into_iter()
        .map(|rate| {
            let mut spec = Preset::UnswNb15.spec(scale);
            spec.contamination = rate;
            Scenario {
                label: format!("{:.0}% contamination", rate * 100.0),
                spec,
            }
        })
        .collect()
}

/// Runs TargAD + the Fig. 4 baselines over `scenarios`, returning a table
/// with one column per model and one row per scenario (mean AUPRC over
/// `seeds`, ± std).
pub fn run_scenarios(scenarios: &[Scenario], seeds: &[u64], data_seed: u64) -> Table {
    let mut header: Vec<&str> = vec!["scenario", "TargAD"];
    header.extend(FIG4_BASELINES);
    let mut table = Table::new(&header);

    for scenario in scenarios {
        let bundle = scenario.spec.generate(data_seed);
        let mut cells = vec![scenario.label.clone()];

        let mut targad_runs = Vec::new();
        for &seed in seeds {
            let cfg = harness_config(scenario.spec.normal_groups);
            targad_runs.push(eval_targad(&bundle, cfg, seed).auprc);
        }
        cells.push(MeanStd::of(&targad_runs).fmt());

        for name in FIG4_BASELINES {
            let mut runs = Vec::new();
            for &seed in seeds {
                let mut model = baseline_by_name(name);
                runs.push(eval_model(model.as_mut(), &bundle, seed).auprc);
            }
            cells.push(MeanStd::of(&runs).fmt());
        }
        table.row(&cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_type_scenarios_shrink_training_classes() {
        let scenarios = scenarios_new_types(0.01);
        assert_eq!(scenarios.len(), 4);
        let sizes: Vec<usize> = scenarios
            .iter()
            .map(|s| s.spec.train_non_target_classes.as_ref().unwrap().len())
            .collect();
        assert_eq!(sizes, vec![4, 3, 2, 1]);
        // Test taxonomy unchanged: all four classes exist in every spec.
        assert!(scenarios.iter().all(|s| s.spec.non_target_classes == 4));
    }

    #[test]
    fn target_class_scenarios_cover_one_to_six() {
        let scenarios = scenarios_target_classes(0.01);
        assert_eq!(scenarios.len(), 6);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.spec.target_classes, i + 1);
            assert_eq!(s.spec.target_classes + s.spec.non_target_classes, 7);
        }
    }

    #[test]
    fn labeled_scenarios_increase() {
        let scenarios = scenarios_labeled_counts(0.1);
        let counts: Vec<usize> = scenarios.iter().map(|s| s.spec.labeled_per_class).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
    }

    #[test]
    fn contamination_scenarios_match_paper_grid() {
        let rates: Vec<f64> = scenarios_contamination(0.01)
            .iter()
            .map(|s| s.spec.contamination)
            .collect();
        assert_eq!(rates, vec![0.03, 0.05, 0.07, 0.09]);
    }
}
