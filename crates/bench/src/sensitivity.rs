//! Hyper-parameter sensitivity experiments (Fig. 6 and Fig. 7).

use targad_data::Preset;
use targad_linalg::stats;

use crate::experiments::{eval_targad, harness_config};
use crate::report::Table;

/// Fig. 6: TargAD's AUPRC (or AUROC) as a matrix over the candidate
/// threshold `α ∈ {1,5,10,15,20}%` and the ground-truth contamination
/// rate `∈ {1,5,10,15}%`. Returns `(auprc_table, auroc_table)`.
pub fn alpha_contamination_matrix(scale: f64, seeds: &[u64], data_seed: u64) -> (Table, Table) {
    let alphas = [0.01, 0.05, 0.10, 0.15, 0.20];
    let contaminations = [0.01, 0.05, 0.10, 0.15];

    let mut header = vec!["alpha \\ contamination".to_string()];
    header.extend(contaminations.iter().map(|c| format!("{:.0}%", c * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut ap_table = Table::new(&header_refs);
    let mut roc_table = Table::new(&header_refs);

    for &alpha in &alphas {
        let mut ap_cells = vec![format!("{:.0}%", alpha * 100.0)];
        let mut roc_cells = ap_cells.clone();
        for &contamination in &contaminations {
            let mut spec = Preset::UnswNb15.spec(scale);
            spec.contamination = contamination;
            let bundle = spec.generate(data_seed);
            let mut aps = Vec::new();
            let mut rocs = Vec::new();
            for &seed in seeds {
                let mut cfg = harness_config(spec.normal_groups);
                cfg.alpha = alpha;
                let r = eval_targad(&bundle, cfg, seed);
                aps.push(r.auprc);
                rocs.push(r.auroc);
            }
            ap_cells.push(format!("{:.3}", stats::mean(&aps)));
            roc_cells.push(format!("{:.3}", stats::mean(&rocs)));
        }
        ap_table.row(&ap_cells);
        roc_table.row(&roc_cells);
    }
    (ap_table, roc_table)
}

/// Fig. 7(a): sensitivity to the autoencoder trade-off `η`.
pub fn eta_sweep(scale: f64, seeds: &[u64], data_seed: u64) -> Table {
    let etas = [0.0, 0.01, 0.1, 1.0, 10.0, 100.0];
    let bundle = Preset::UnswNb15.spec(scale).generate(data_seed);
    let mut table = Table::new(&["eta", "AUPRC", "AUROC"]);
    for &eta in &etas {
        let mut aps = Vec::new();
        let mut rocs = Vec::new();
        for &seed in seeds {
            let mut cfg = harness_config(4);
            cfg.eta = eta;
            let r = eval_targad(&bundle, cfg, seed);
            aps.push(r.auprc);
            rocs.push(r.auroc);
        }
        table.row(&[
            format!("{eta}"),
            format!("{:.3}", stats::mean(&aps)),
            format!("{:.3}", stats::mean(&rocs)),
        ]);
    }
    table
}

/// Fig. 7(b)/(c): the `λ₁ × λ₂` grid. Returns `(auprc_table,
/// auroc_table)` with `λ₁` as rows and `λ₂` as columns.
pub fn lambda_grid(scale: f64, seeds: &[u64], data_seed: u64) -> (Table, Table) {
    let values = [0.01, 0.1, 1.0, 2.0, 5.0, 10.0];
    let bundle = Preset::UnswNb15.spec(scale).generate(data_seed);

    let mut header = vec!["l1 \\ l2".to_string()];
    header.extend(values.iter().map(|v| format!("{v}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut ap_table = Table::new(&header_refs);
    let mut roc_table = Table::new(&header_refs);

    for &l1 in &values {
        let mut ap_cells = vec![format!("{l1}")];
        let mut roc_cells = ap_cells.clone();
        for &l2 in &values {
            let mut aps = Vec::new();
            let mut rocs = Vec::new();
            for &seed in seeds {
                let mut cfg = harness_config(4);
                cfg.lambda1 = l1;
                cfg.lambda2 = l2;
                let r = eval_targad(&bundle, cfg, seed);
                aps.push(r.auprc);
                rocs.push(r.auroc);
            }
            ap_cells.push(format!("{:.3}", stats::mean(&aps)));
            roc_cells.push(format!("{:.3}", stats::mean(&rocs)));
        }
        ap_table.row(&ap_cells);
        roc_table.row(&roc_cells);
    }
    (ap_table, roc_table)
}

#[cfg(test)]
mod tests {
    // The sweep functions are exercised end-to-end by their binaries (and
    // by run_all); here we only verify the cheap spec plumbing used above.
    use targad_data::Preset;

    #[test]
    fn contamination_override_applies() {
        let mut spec = Preset::UnswNb15.spec(0.01);
        spec.contamination = 0.15;
        let bundle = spec.generate(1);
        let s = bundle.train.summary();
        let anoms = s.unlabeled_target + s.non_target;
        let frac = anoms as f64 / spec.train_unlabeled as f64;
        assert!((frac - 0.15).abs() < 0.01, "contamination {frac}");
    }
}
