//! One function per table/figure of the paper. Each returns the rendered
//! report as a `String`; the matching binary in `src/bin/` prints it and
//! `run_all` persists all of them under `results/`.

use targad_baselines::{DeepSad, Detector, DevNet, Feawad, PreNet, TrainView};
use targad_core::{OodStrategy, TargAd, TargAdConfig};
use targad_data::Preset;
use targad_linalg::stats;
use targad_metrics::{average_precision, ConfusionMatrix};

use crate::args::CommonArgs;
use crate::experiments::{eval_targad, harness_config, run_suite, MeanStd};
use crate::report::Table;
use crate::robustness::{
    run_scenarios, scenarios_contamination, scenarios_labeled_counts, scenarios_new_types,
    scenarios_target_classes,
};
use crate::sensitivity::{alpha_contamination_matrix, eta_sweep, lambda_grid};

fn banner(title: &str, args: &CommonArgs) -> String {
    format!(
        "{title}\n(scale {}, {} seeds, data seed {})\n\n",
        args.scale, args.seeds, args.data_seed
    )
}

/// Table I — dataset statistics of the four (synthetic) benchmarks.
pub fn table1(args: &CommonArgs) -> String {
    let mut out = banner("Table I: dataset statistics", args);
    let mut table = Table::new(&[
        "dataset",
        "D",
        "labeled target",
        "unlabeled",
        "val norm/tar/non",
        "test norm/tar/non",
    ]);
    for preset in Preset::all() {
        let spec = preset.spec(args.scale);
        let bundle = spec.generate(args.data_seed);
        let tr = bundle.train.summary();
        let va = bundle.val.summary();
        let te = bundle.test.summary();
        table.row(&[
            preset.name().to_string(),
            format!("{}", spec.dims),
            format!("{}", tr.labeled_target),
            format!("{}", tr.total() - tr.labeled_target),
            format!("{}/{}/{}", va.normal, va.unlabeled_target, va.non_target),
            format!("{}/{}/{}", te.normal, te.unlabeled_target, te.non_target),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table II — AUPRC and AUROC of TargAD and all eleven baselines on the
/// four benchmarks, averaged over the model seeds.
pub fn table2(args: &CommonArgs) -> String {
    let mut out = banner("Table II: overall AUPRC / AUROC (target anomalies)", args);
    let seeds = args.seed_list();
    for preset in Preset::all() {
        let spec = preset.spec(args.scale);
        let bundle = spec.generate(args.data_seed);
        let config = harness_config(spec.normal_groups);
        let rows = run_suite(&bundle, &config, &seeds);
        let mut table = Table::new(&["model", "AUPRC", "AUROC"]);
        for row in rows {
            table.row(&[row.name, row.auprc.fmt(), row.auroc.fmt()]);
        }
        out.push_str(&format!("== {} ==\n", preset.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table III — ablation of the classifier loss terms on UNSW-NB15.
pub fn table3(args: &CommonArgs) -> String {
    let mut out = banner("Table III: loss-term ablation (UNSW-NB15)", args);
    let spec = Preset::UnswNb15.spec(args.scale);
    let bundle = spec.generate(args.data_seed);
    let seeds = args.seed_list();

    let variants: [(&str, bool, bool); 4] = [
        ("TargAD", true, true),
        ("TargAD -O", false, true),
        ("TargAD -R", true, false),
        ("TargAD -O-R", false, false),
    ];
    let mut table = Table::new(&["variant", "AUPRC", "AUROC"]);
    for (name, use_oe, use_re) in variants {
        let mut aps = Vec::new();
        let mut rocs = Vec::new();
        for &seed in &seeds {
            let mut cfg = harness_config(spec.normal_groups);
            cfg.use_oe = use_oe;
            cfg.use_re = use_re;
            let r = eval_targad(&bundle, cfg, seed);
            aps.push(r.auprc);
            rocs.push(r.auroc);
        }
        table.row(&[
            name.to_string(),
            MeanStd::of(&aps).fmt(),
            MeanStd::of(&rocs).fmt(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table IV — three-way Precision/Recall/F1 under the MSP / ES / ED
/// strategies, thresholds calibrated on the validation split.
pub fn table4(args: &CommonArgs) -> String {
    let mut out = banner(
        "Table IV: 3-way identification via OOD strategies (UNSW-NB15)",
        args,
    );
    let spec = Preset::UnswNb15.spec(args.scale);
    let bundle = spec.generate(args.data_seed);

    let mut model = TargAd::try_new(harness_config(spec.normal_groups)).expect("valid config");
    model
        .fit(&bundle.train, args.seed_list()[0])
        .expect("TargAD fit");

    let truth_val = bundle.val.three_way_labels();
    model
        .calibrate_thresholds(&bundle.val.features, &truth_val)
        .expect("calibration");
    let truth_test = bundle.test.three_way_labels();
    let class_names = [
        "normal instances",
        "target anomalies",
        "non-target anomalies",
    ];

    for strategy in OodStrategy::all() {
        let tau = model.thresholds().get(strategy).expect("calibrated");
        let verdicts = model
            .try_verdict_matrix(&bundle.test.features, strategy)
            .expect("fitted and calibrated");
        let cm = ConfusionMatrix::from_predictions(&truth_test, &verdicts.three_way_codes(), 3);

        let mut table = Table::new(&["class", "Precision", "Recall", "F1-Score"]);
        for (c, name) in class_names.iter().enumerate() {
            let r = cm.class_report(c);
            table.row(&[
                name.to_string(),
                format!("{:.3}", r.precision),
                format!("{:.3}", r.recall),
                format!("{:.3}", r.f1),
            ]);
        }
        let mac = cm.macro_avg();
        table.row(&[
            "macro avg".to_string(),
            format!("{:.3}", mac.precision),
            format!("{:.3}", mac.recall),
            format!("{:.3}", mac.f1),
        ]);
        let w = cm.weighted_avg();
        table.row(&[
            "weighted avg".to_string(),
            format!("{:.3}", w.precision),
            format!("{:.3}", w.recall),
            format!("{:.3}", w.f1),
        ]);
        out.push_str(&format!("== {} (tau = {tau:.4}) ==\n", strategy.name()));
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Fig. 3 — convergence: (a) TargAD loss per epoch; (b) test AUPRC per
/// epoch for TargAD and the traced semi-supervised baselines.
pub fn fig3(args: &CommonArgs) -> String {
    let mut out = banner("Fig. 3: convergence analysis (UNSW-NB15)", args);
    let spec = Preset::UnswNb15.spec(args.scale);
    let bundle = spec.generate(args.data_seed);
    let seed = args.seed_list()[0];
    let labels = bundle.test.target_labels();

    // (a)+(b) for TargAD via the per-epoch score trace.
    let view = TrainView::from_dataset(&bundle.train);
    let mut targad_curve = Vec::new();
    let mut model = TargAd::try_new(harness_config(spec.normal_groups)).expect("valid config");
    model
        .fit_traced(&view, seed, &bundle.test.features, &mut |_, scores| {
            targad_curve.push(average_precision(&scores, &labels));
        })
        .expect("TargAD fit");

    out.push_str("(a) TargAD loss per classifier epoch\n");
    let mut loss_table = Table::new(&["epoch", "L_clf"]);
    for (e, loss) in model.history().clf_loss.iter().enumerate() {
        loss_table.row(&[format!("{e}"), format!("{loss:.4}")]);
    }
    out.push_str(&loss_table.render());

    // (b) AUPRC-per-epoch traces.
    let mut curves: Vec<(String, Vec<f64>)> = vec![("TargAD".to_string(), targad_curve)];
    let traced: Vec<Box<dyn Detector>> = vec![
        Box::new(DevNet::default()),
        Box::new(DeepSad::default()),
        Box::new(Feawad::default()),
    ];
    for mut detector in traced {
        let mut curve = Vec::new();
        let name = detector.name().to_string();
        detector
            .fit_traced(&view, seed, &bundle.test.features, &mut |_, scores| {
                curve.push(average_precision(&scores, &labels));
            })
            .unwrap_or_else(|e| panic!("{name}: fit failed: {e}"));
        curves.push((name, curve));
    }
    // PReNet is step-trained; evaluate once at the end for reference.
    let mut prenet = PreNet::default();
    prenet.fit(&view, seed).expect("PReNet fit");
    curves.push((
        "PReNet (final)".to_string(),
        vec![average_precision(
            &prenet.score(&bundle.test.features),
            &labels,
        )],
    ));

    out.push_str("\n(b) test AUPRC per epoch\n");
    let max_epochs = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    let mut header = vec!["epoch".to_string()];
    header.extend(curves.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for e in 0..max_epochs {
        let mut cells = vec![format!("{e}")];
        for (_, curve) in &curves {
            cells.push(curve.get(e).map_or("-".to_string(), |v| format!("{v:.3}")));
        }
        table.row(&cells);
    }
    out.push_str(&table.render());
    out
}

/// Fig. 4 — the four robustness scenarios. `part` selects a/b/c/d; `None`
/// runs all four.
pub fn fig4(args: &CommonArgs) -> String {
    let mut out = banner("Fig. 4: robustness analysis (UNSW-NB15, AUPRC)", args);
    let seeds = args.seed_list();
    let parts: Vec<&str> = match args.part.as_deref() {
        Some(p) => vec![p],
        None => vec!["a", "b", "c", "d"],
    };
    for part in parts {
        let (title, scenarios) = match part {
            "a" => (
                "(a) novel non-target types",
                scenarios_new_types(args.scale),
            ),
            "b" => (
                "(b) number of target classes",
                scenarios_target_classes(args.scale),
            ),
            "c" => (
                "(c) labeled anomalies per class",
                scenarios_labeled_counts(args.scale),
            ),
            "d" => (
                "(d) contamination rate",
                scenarios_contamination(args.scale),
            ),
            other => panic!("unknown fig4 part `{other}` (expected a/b/c/d)"),
        };
        out.push_str(&format!("{title}\n"));
        out.push_str(&run_scenarios(&scenarios, &seeds, args.data_seed).render());
        out.push('\n');
    }
    out
}

/// Fig. 5 — the weight-updating mechanism: per-epoch mean weights by true
/// candidate type and the final-epoch weight histogram.
pub fn fig5(args: &CommonArgs) -> String {
    let mut out = banner("Fig. 5: weight-updating dynamics (UNSW-NB15)", args);
    let spec = Preset::UnswNb15.spec(args.scale);
    let bundle = spec.generate(args.data_seed);

    let mut model = TargAd::try_new(harness_config(spec.normal_groups)).expect("valid config");
    model
        .fit(&bundle.train, args.seed_list()[0])
        .expect("TargAD fit");
    let history = model.history();

    let comp = history.candidate_composition;
    out.push_str(&format!(
        "candidate set D_U^A composition: {} normal / {} target / {} non-target\n\n",
        comp.normal, comp.target, comp.non_target
    ));

    out.push_str("(a) mean candidate weight per true type, per epoch\n");
    let mut table = Table::new(&["epoch", "normal", "target", "non-target"]);
    for (e, w) in history.weight_means.iter().enumerate() {
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.3}")
            }
        };
        table.row(&[
            format!("{e}"),
            fmt(w.normal),
            fmt(w.target),
            fmt(w.non_target),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\n(b) final-epoch weight histogram per true type (10 bins over [0,1])\n");
    let mut hist = [[0usize; 10]; 3];
    for &(truth, w) in &history.final_weights {
        let bin = ((w * 10.0) as usize).min(9);
        hist[truth][bin] += 1;
    }
    let mut table = Table::new(&["bin", "normal", "target", "non-target"]);
    #[allow(clippy::needless_range_loop)] // three histograms share the bin index
    for b in 0..10 {
        table.row(&[
            format!("[{:.1},{:.1})", b as f64 / 10.0, (b + 1) as f64 / 10.0),
            format!("{}", hist[0][b]),
            format!("{}", hist[1][b]),
            format!("{}", hist[2][b]),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Fig. 6 — `α` × contamination sensitivity matrices.
pub fn fig6(args: &CommonArgs) -> String {
    let mut out = banner(
        "Fig. 6: alpha vs contamination sensitivity (UNSW-NB15)",
        args,
    );
    let (ap, roc) = alpha_contamination_matrix(args.scale, &args.seed_list(), args.data_seed);
    out.push_str("(a) AUPRC\n");
    out.push_str(&ap.render());
    out.push_str("\n(b) AUROC\n");
    out.push_str(&roc.render());
    out
}

/// Fig. 7 — trade-off parameter sensitivity. `part` = `eta` or `lambda`;
/// `None` runs both.
pub fn fig7(args: &CommonArgs) -> String {
    let mut out = banner("Fig. 7: trade-off parameter sensitivity (UNSW-NB15)", args);
    let run_eta = args.part.as_deref().is_none_or(|p| p == "eta");
    let run_lambda = args.part.as_deref().is_none_or(|p| p == "lambda");
    if run_eta {
        out.push_str("(a) eta sweep\n");
        out.push_str(&eta_sweep(args.scale, &args.seed_list(), args.data_seed).render());
        out.push('\n');
    }
    if run_lambda {
        let (ap, roc) = lambda_grid(args.scale, &args.seed_list(), args.data_seed);
        out.push_str("(b) AUPRC over lambda1 x lambda2\n");
        out.push_str(&ap.render());
        out.push_str("\n(c) AUROC over lambda1 x lambda2\n");
        out.push_str(&roc.render());
    }
    out
}

/// Extension ablations called out in DESIGN.md §6 (beyond the paper's
/// Table III): clustering, weight updating, pseudo-label design, and the
/// optimizer.
pub fn ext_ablations(args: &CommonArgs) -> String {
    let mut out = banner("Extension ablations (UNSW-NB15, AUPRC)", args);
    let spec = Preset::UnswNb15.spec(args.scale);
    let bundle = spec.generate(args.data_seed);
    let seeds = args.seed_list();

    type Mutator = fn(&mut TargAdConfig);
    let variants: [(&str, Mutator); 5] = [
        ("full TargAD", |_| {}),
        ("single global AE (k=1)", |c| c.k = Some(1)),
        ("frozen Eq.5 weights", |c| c.update_weights = false),
        ("vanilla OE pseudo-labels", |c| c.vanilla_oe_labels = true),
        ("SGD classifier", |c| {
            c.clf_sgd = true;
            c.clf_lr = 5e-2;
        }),
    ];

    let mut table = Table::new(&["variant", "AUPRC", "AUROC"]);
    for (name, mutate) in variants {
        let mut aps = Vec::new();
        let mut rocs = Vec::new();
        for &seed in &seeds {
            let mut cfg = harness_config(spec.normal_groups);
            mutate(&mut cfg);
            let r = eval_targad(&bundle, cfg, seed);
            aps.push(r.auprc);
            rocs.push(r.auroc);
        }
        table.row(&[
            name.to_string(),
            MeanStd::of(&aps).fmt(),
            MeanStd::of(&rocs).fmt(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nnote: AUPRC spread across seeds is reported as ±std; mean of runs = {}\n",
        seeds.len()
    ));
    out
}

/// Convergence-epoch summary used by the quick smoke suite.
pub fn quick_smoke(args: &CommonArgs) -> String {
    let mut out = banner("Smoke: one TargAD fit per preset", args);
    for preset in Preset::all() {
        let spec = preset.spec(args.scale.min(0.01));
        let bundle = spec.generate(args.data_seed);
        let r = eval_targad(&bundle, harness_config(spec.normal_groups), 1);
        out.push_str(&format!(
            "{}: AUPRC {:.3} AUROC {:.3} (prevalence {:.3})\n",
            preset.name(),
            r.auprc,
            r.auroc,
            prevalence(&bundle.test.target_labels())
        ));
    }
    out
}

fn prevalence(labels: &[bool]) -> f64 {
    stats::mean(
        &labels
            .iter()
            .map(|&l| f64::from(u8::from(l)))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end pass through the cheapest suites (tables I and
    /// the smoke suite) to keep the harness itself tested.
    #[test]
    fn table1_renders_all_presets() {
        let args = CommonArgs {
            scale: 0.002,
            seeds: 1,
            part: None,
            data_seed: 7,
        };
        let out = table1(&args);
        for name in ["UNSW-NB15", "KDDCUP99", "NSL-KDD", "SQB"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn smoke_runs_every_preset() {
        let args = CommonArgs {
            scale: 0.002,
            seeds: 1,
            part: None,
            data_seed: 7,
        };
        let out = quick_smoke(&args);
        assert_eq!(out.matches("AUPRC").count(), 4);
    }
}
