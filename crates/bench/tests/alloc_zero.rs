//! Proof of the zero-allocation training contract: after one warm-up step,
//! a pooled-tape optimizer step — forward, backward, gradient clip, Adam
//! update — performs **zero** heap allocations. The whole file is a single
//! test because `#[global_allocator]` is per-binary and the counter must
//! not see another test's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use targad_autograd::{Tape, VarStore};
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{Activation, Adam, AutoEncoder, Mlp, Optimizer};

/// Counts allocation events (alloc + realloc) while the gate is open;
/// frees are untracked since only acquisition breaks the contract.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `step` under the allocation counter and returns the event count.
fn count_allocs(mut step: impl FnMut()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    step();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_training_steps_allocate_nothing() {
    // ---- Autoencoder step (the Eq. 1 per-cluster training loop) --------
    let mut rng = lrng::seeded(7);
    let x = lrng::uniform_matrix(&mut rng, 64, 16, 0.0, 1.0);
    let batch: Vec<usize> = (0..32).collect();
    let mut vs = VarStore::new();
    let ae = AutoEncoder::new(&mut vs, &mut rng, &[16, 8, 4]);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut ae_step = || {
        vs.zero_grads();
        tape.reset();
        let xv = tape.input_rows_from(&x, &batch);
        let err = ae.recon_error_rows(&mut tape, &vs, xv);
        let loss = tape.mean_all(err);
        tape.backward(loss, &mut vs);
        clip_grad_norm(&mut vs, 5.0);
        opt.step(&mut vs);
    };
    // Warm-up: populate the tape pool, Adam moments, and gradient buffers.
    for _ in 0..3 {
        ae_step();
    }
    for i in 0..5 {
        let n = count_allocs(&mut ae_step);
        assert_eq!(n, 0, "AE step {i} performed {n} heap allocations");
    }

    // ---- Classifier step (the Eqs. 3–8 loss shape) ---------------------
    let mut rng = lrng::seeded(9);
    let x = lrng::normal_matrix(&mut rng, 48, 12, 0.0, 1.0);
    let y = Matrix::from_fn(48, 4, |r, c| f64::from(r % 4 == c));
    let batch: Vec<usize> = (0..24).collect();
    let mut vs = VarStore::new();
    let mlp = Mlp::new(
        &mut vs,
        &mut rng,
        &[12, 10, 4],
        Activation::Relu,
        Activation::None,
    );
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut clf_step = || {
        vs.zero_grads();
        tape.reset();
        let xv = tape.input_rows_from(&x, &batch);
        let yv = tape.input_rows_from(&y, &batch);
        let z = mlp.forward(&mut tape, &vs, xv);
        let lp = tape.log_softmax_rows(z);
        let prod = tape.mul(yv, lp);
        let total = tape.sum_all(prod);
        let loss = tape.scale(total, -1.0 / batch.len() as f64);
        tape.backward(loss, &mut vs);
        clip_grad_norm(&mut vs, 5.0);
        opt.step(&mut vs);
    };
    for _ in 0..3 {
        clf_step();
    }
    for i in 0..5 {
        let n = count_allocs(&mut clf_step);
        assert_eq!(n, 0, "classifier step {i} performed {n} heap allocations");
    }

    // ---- Both backward arms, telemetry cold and hot --------------------
    // The fused Dense path must hold the same contract as the unfused
    // reference arm, and the backward sub-phase timers (one `Instant` pair
    // per node, two `record_ns` per sweep) must not allocate either.
    for fused in [true, false] {
        let _arm = targad_nn::force_fused_backward(fused);
        // Re-warm: switching arms changes the node layout and the pooled
        // buffer shapes the sweep requests.
        for _ in 0..3 {
            clf_step();
        }
        for telemetry in [false, true] {
            targad_obs::set_enabled(telemetry);
            clf_step();
            for i in 0..5 {
                let n = count_allocs(&mut clf_step);
                assert_eq!(
                    n, 0,
                    "step {i} (fused={fused}, telemetry={telemetry}) performed {n} allocations"
                );
            }
            targad_obs::set_enabled(false);
        }
    }
}
