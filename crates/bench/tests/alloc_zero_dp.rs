//! Zero-allocation contract for the **data-parallel** training path:
//! after one warm-up step, a sharded optimizer step — per-shard forward +
//! backward on pooled tapes, fixed-order gradient reduction, clip, Adam —
//! performs **zero** heap allocations, on every participating worker
//! thread. Run in CI with `TARGAD_THREADS=4`; the dispatch itself is
//! allocation-free (the pool publishes a borrowed `&dyn Fn` and parks on
//! condvars), so the counter stays at zero even when shards execute on
//! pool workers. A separate binary from `alloc_zero.rs` because
//! `#[global_allocator]` is per-binary, and `harness = false` because the
//! libtest harness keeps a main thread alive whose occasional allocations
//! would trip the process-global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use targad_autograd::VarStore;
use targad_core::Runtime;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{Activation, Adam, AutoEncoder, Mlp, Optimizer, ShardedStep};

/// Counts allocation events (alloc + realloc) while the gate is open;
/// frees are untracked since only acquisition breaks the contract.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `step` under the allocation counter and returns the event count.
fn count_allocs(mut step: impl FnMut()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    step();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn main() {
    // `from_env` honors the CI job's TARGAD_THREADS=4; Runtime::new(4)
    // pins the multi-worker configuration regardless of environment. The
    // 391-row batch splits into 4 ragged shards, so shard dispatch, the
    // per-shard GradSets, and the fixed-order reduction all run for real.
    for rt in [Runtime::from_env(), Runtime::new(4)] {
        // ---- Autoencoder step (the Eq. 1 per-cluster loop shape) -------
        let rows = 391usize;
        let mut rng = lrng::seeded(7);
        let x = lrng::uniform_matrix(&mut rng, rows, 16, 0.0, 1.0);
        let batch: Vec<usize> = (0..rows).collect();
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[16, 8, 4]);
        let mut opt = Adam::new(1e-3);
        let mut step = ShardedStep::new();
        let mut ae_step = || {
            vs.zero_grads();
            step.accumulate(&rt, &mut vs, rows, |tape, vs, range| {
                let xv = tape.input_rows_from(&x, &batch[range]);
                let err = ae.recon_error_rows(tape, vs, xv);
                tape.sum_div(err, rows as f64)
            });
            clip_grad_norm(&mut vs, 5.0);
            opt.step(&mut vs);
        };
        // Warm-up: spawn pool workers, grow tape pools, GradSets, and
        // Adam moments.
        for _ in 0..3 {
            ae_step();
        }
        for i in 0..5 {
            let n = count_allocs(&mut ae_step);
            assert_eq!(n, 0, "sharded AE step {i} performed {n} allocations");
        }

        // ---- Classifier step with OE weights (the Eqs. 3–8 shape) ------
        let mut rng = lrng::seeded(9);
        let x = lrng::normal_matrix(&mut rng, rows, 12, 0.0, 1.0);
        let y = Matrix::from_fn(rows, 4, |r, c| f64::from(r % 4 == c));
        let weights: Vec<f64> = (0..rows).map(|r| 0.5 + (r % 3) as f64 * 0.25).collect();
        let batch: Vec<usize> = (0..rows).collect();
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[12, 10, 4],
            Activation::Relu,
            Activation::None,
        );
        let mut opt = Adam::new(1e-3);
        let mut step = ShardedStep::new();
        let mut clf_step = || {
            vs.zero_grads();
            step.accumulate(&rt, &mut vs, rows, |tape, vs, range| {
                let rb = &batch[range];
                let xv = tape.input_rows_from(&x, rb);
                let yv = tape.input_rows_from(&y, rb);
                let wv = tape.input_gather_col(&weights, rb);
                let z = mlp.forward(tape, vs, xv);
                let lp = tape.log_softmax_rows(z);
                let prod = tape.mul(yv, lp);
                let per_row = tape.row_sum(prod);
                let weighted = tape.mul_col_broadcast(per_row, wv);
                let total = tape.sum_div(weighted, rows as f64);
                tape.scale(total, -1.0)
            });
            clip_grad_norm(&mut vs, 5.0);
            opt.step(&mut vs);
        };
        for _ in 0..3 {
            clf_step();
        }
        for i in 0..5 {
            let n = count_allocs(&mut clf_step);
            assert_eq!(n, 0, "sharded clf step {i} performed {n} allocations");
        }

        // ---- Telemetry gate states --------------------------------------
        // Disabled (the default): every instrumented call site must be a
        // true no-op — the contract is zero allocations AND no recorded
        // metric movement.
        targad_obs::set_enabled(false);
        targad_obs::metrics::reset_all();
        for i in 0..3 {
            let n = count_allocs(&mut clf_step);
            assert_eq!(n, 0, "telemetry-off clf step {i} allocated {n} times");
        }
        assert_eq!(
            targad_obs::metrics::POOL_JOBS.get() + targad_obs::metrics::TAPE_POOL_HITS.get(),
            0,
            "disabled telemetry recorded metrics"
        );

        // Enabled, metrics + span path (no sink): counters, histograms,
        // and phase timers are atomics — the hot path stays allocation-free
        // with telemetry on.
        targad_obs::set_enabled(true);
        clf_step(); // warm-up under the new gate state
        for i in 0..3 {
            let n = count_allocs(&mut clf_step);
            assert_eq!(n, 0, "telemetry-on clf step {i} allocated {n} times");
        }
        assert!(
            targad_obs::metrics::TAPE_POOL_HITS.get() > 0,
            "enabled telemetry recorded nothing"
        );
        targad_obs::set_enabled(false);
    }
    println!("alloc_zero_dp: steady-state sharded steps performed 0 allocations");
}
