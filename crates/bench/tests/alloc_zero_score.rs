//! Zero-allocation contract for the **inference engine**: after a warm-up
//! batch, a pooled [`targad_nn::ScoreEngine`] scoring pass — fused layer
//! pipeline over ping-pong scratch, row-block streaming over the runtime
//! pool, ascending gather into the caller's output — performs **zero**
//! heap allocations, at any worker count. Run in CI with
//! `TARGAD_THREADS=4` alongside `alloc_zero_dp`. A separate binary because
//! `#[global_allocator]` is per-binary, and `harness = false` because the
//! libtest harness keeps a main thread alive whose occasional allocations
//! would trip the process-global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use targad_autograd::VarStore;
use targad_core::Runtime;
use targad_linalg::rng as lrng;
use targad_nn::{Activation, AutoEncoder, Mlp, ScoreEngine};

/// Counts allocation events (alloc + realloc) while the gate is open;
/// frees are untracked since only acquisition breaks the contract.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `step` under the allocation counter and returns the event count.
fn count_allocs(mut step: impl FnMut()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    step();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn main() {
    // `from_env` honors the CI job's TARGAD_THREADS=4; Runtime::new(4)
    // pins the multi-worker configuration regardless of environment. 1037
    // rows split into 5 ragged 256-row blocks, so block dispatch on pool
    // workers, the per-worker ping-pong scratch, and the ascending gather
    // all run for real.
    for rt in [Runtime::from_env(), Runtime::new(4)] {
        // ---- Classifier-shaped stack (the Eq. 9 scoring path) ----------
        let rows = 1037usize;
        let mut rng = lrng::seeded(21);
        let x = lrng::normal_matrix(&mut rng, rows, 16, 0.0, 1.0);
        let mut vs = VarStore::new();
        let mlp = Mlp::new(
            &mut vs,
            &mut rng,
            &[16, 32, 24, 6],
            Activation::Relu,
            Activation::None,
        );
        let mut engine = ScoreEngine::new();
        let mut out = vec![0.0; rows];
        {
            let mut score_batch = || {
                engine.score_into(
                    &[(&mlp, &vs)],
                    &x,
                    &rt,
                    |_r, z| z.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    &mut out,
                );
            };
            // Warm-up: spawn pool workers and grow the block/scratch pools.
            for _ in 0..3 {
                score_batch();
            }
            for i in 0..5 {
                let n = count_allocs(&mut score_batch);
                assert_eq!(n, 0, "engine batch {i} performed {n} heap allocations");
            }
        }

        // ---- AE-shaped stack (the Eq. 2 recon-error ranking path) ------
        // A two-model stack whose intermediate widths differ from the
        // classifier's, scored through the SAME engine: the grow-only
        // pools must absorb the shape change after one warm batch.
        let mut rng = lrng::seeded(23);
        let mut ae_vs = VarStore::new();
        let ae = AutoEncoder::new(&mut ae_vs, &mut rng, &[16, 8, 4]);
        let stack = [(ae.encoder(), &ae_vs), (ae.decoder(), &ae_vs)];
        let mut recon_batch = || {
            engine.score_into(
                &stack,
                &x,
                &rt,
                |r, xhat| {
                    x.row(r)
                        .iter()
                        .zip(xhat)
                        .map(|(&xv, &hv)| {
                            let d = hv - xv;
                            d * d
                        })
                        .sum()
                },
                &mut out,
            );
        };
        recon_batch();
        for i in 0..5 {
            let n = count_allocs(&mut recon_batch);
            assert_eq!(n, 0, "AE engine batch {i} performed {n} allocations");
        }

        // ---- Telemetry-on state ----------------------------------------
        // The score.* counters and the engine-pool gauge are atomics; the
        // hot path stays allocation-free with telemetry enabled, and the
        // instrumentation actually moves.
        targad_obs::set_enabled(true);
        targad_obs::metrics::reset_all();
        recon_batch(); // warm-up under the new gate state
        for i in 0..3 {
            let n = count_allocs(&mut recon_batch);
            assert_eq!(n, 0, "telemetry-on engine batch {i} allocated {n} times");
        }
        assert!(
            targad_obs::metrics::SCORE_BATCHES.get() > 0
                && targad_obs::metrics::SCORE_ENGINE_POOL_BYTES.get() > 0,
            "enabled telemetry recorded nothing"
        );
        targad_obs::set_enabled(false);
    }
    println!("alloc_zero_score: steady-state engine batches performed 0 allocations");
}
