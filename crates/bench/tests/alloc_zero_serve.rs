//! Zero-overhead contract for **serve observability**: every telemetry
//! primitive the `/score` hot path touches — ungated counters and
//! histograms, labeled per-tenant families, the score sketch, request
//! trace spans, Prometheus rendering into a warm buffer — performs zero
//! heap allocations in steady state, gate up or down. And the gate must
//! be invisible to the math: the same rows scored through a
//! [`targad_serve::MicroBatcher`] with tracing off and on produce
//! bit-identical scores. A separate binary because `#[global_allocator]`
//! is per-binary, and `harness = false` because the libtest harness keeps
//! a main thread alive whose occasional allocations would trip the
//! process-global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use targad_core::{OodStrategy, Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_obs::{labeled, metrics, sketch, RequestTrace, ServePhase};
use targad_serve::{MicroBatcher, ModelRegistry, ModelSnapshot, ServeConfig};

/// Counts allocation events (alloc + realloc) while the gate is open;
/// frees are untracked since only acquisition breaks the contract.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `step` under the allocation counter and returns the event count.
fn count_allocs(mut step: impl FnMut()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    step();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// One pass over every obs primitive the serve request path exercises.
/// `trace` is threaded in so the gate state sampled at `begin()` applies.
fn obs_hot_pass(label: labeled::LabelId, trace: &mut RequestTrace) {
    metrics::SERVE_REQUESTS.inc_always();
    metrics::SERVE_ROWS.add_always(8);
    metrics::SERVE_QUEUE_DEPTH.set_always(3);
    metrics::SERVE_QUEUE_WAIT_NS.record_always(12_345);
    metrics::SERVE_REQUEST_NS.record_always(1_234_567);
    metrics::SERVE_BATCH_FILL.record_always(8);
    labeled::TENANT_REQUESTS.inc(label);
    labeled::TENANT_ROWS.add(label, 8);
    labeled::TENANT_REQUEST_ROWS.record(label, 8);
    labeled::TENANT_REQUEST_NS.record(label, 1_234_567);
    sketch::SERVE_SCORES.record(0.7314);
    sketch::TENANT_SCORES.record(label, 0.7314);
    trace.add(ServePhase::QueueWait, 1_000);
    {
        let _span = trace.span(ServePhase::Serialize);
    }
}

/// Fits a small calibrated snapshot plus held-out rows, mirroring the
/// serve test fixture.
fn fitted_snapshot(seed: u64) -> (ModelSnapshot, targad_linalg::Matrix) {
    let bundle = GeneratorSpec::quick_demo().generate(seed);
    let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
    model.fit(&bundle.train, seed).expect("fit");
    let thresholds = model
        .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
        .expect("calibrate");
    let snapshot = ModelSnapshot::new(
        model.classifier().unwrap().clone(),
        thresholds,
        "alloc-zero-serve",
    );
    (snapshot, bundle.test.features)
}

fn main() {
    // ---- Obs primitives allocate nothing, gate down then up ------------
    // The label is interned ONCE up front (interning leaks a Box by
    // design); steady-state requests only ever touch interned labels.
    let label = labeled::tenants().intern("alloc-zero-tenant");
    for enabled in [false, true] {
        targad_obs::set_enabled(enabled);
        let mut trace = RequestTrace::begin();
        assert_eq!(trace.is_active(), enabled);
        obs_hot_pass(label, &mut trace); // warm-up under this gate state
        for i in 0..5 {
            let n = count_allocs(|| {
                let mut trace = RequestTrace::begin();
                obs_hot_pass(label, &mut trace);
            });
            assert_eq!(
                n, 0,
                "obs pass {i} (enabled={enabled}) performed {n} heap allocations"
            );
        }
        if enabled {
            assert!(
                trace.phase_ns(ServePhase::QueueWait) == 1_000 && trace.total_ns() >= 1_000,
                "enabled trace recorded nothing"
            );
        } else {
            assert_eq!(trace.total_ns(), 0, "disabled trace must stay inert");
        }
    }
    targad_obs::set_enabled(false);
    assert!(
        metrics::SERVE_REQUESTS.get() >= 12 && sketch::SERVE_SCORES.count() >= 12,
        "ungated serve metrics must move regardless of the gate"
    );

    // ---- Prometheus exposition renders into a warm buffer alloc-free ---
    // The /metrics handler reuses one String across scrapes; after the
    // first render grows it, subsequent renders must not allocate.
    let mut buf = String::new();
    targad_obs::prom::render_into(&mut buf);
    assert!(buf.contains("targad_serve_requests_total"));
    let warm_cap = buf.capacity();
    for i in 0..3 {
        let n = count_allocs(|| targad_obs::prom::render_into(&mut buf));
        assert_eq!(n, 0, "warm /metrics render {i} allocated {n} times");
    }
    assert_eq!(buf.capacity(), warm_cap, "warm renders must reuse capacity");

    // ---- Tracing on vs off is bit-identical through the batcher --------
    let (snapshot, x) = fitted_snapshot(51);
    let dims = x.cols();
    let rows = 32.min(x.rows());
    let flat: Vec<f64> = (0..rows).flat_map(|r| x.row(r).to_vec()).collect();
    let config = ServeConfig::builder()
        .max_batch(16)
        .max_queue_wait(Duration::from_micros(200))
        .build()
        .expect("valid config");
    let registry = Arc::new(ModelRegistry::new(snapshot));
    let batcher = MicroBatcher::start(&config, registry, Runtime::new(2));

    let score_bits = |batcher: &MicroBatcher| -> Vec<(u64, targad_core::VerdictClass)> {
        batcher
            .submit(flat.clone(), rows, dims, OodStrategy::Msp)
            .expect("submit")
            .iter()
            .map(|s| (s.score.to_bits(), s.class))
            .collect()
    };
    targad_obs::set_enabled(false);
    let off = score_bits(&batcher);
    targad_obs::set_enabled(true);
    let on = score_bits(&batcher);
    targad_obs::set_enabled(false);
    let off_again = score_bits(&batcher);
    assert_eq!(off, on, "tracing on changed the scored results");
    assert_eq!(off, off_again, "toggling the gate left residue in scores");
    batcher.shutdown();

    println!("alloc_zero_serve: obs hot path performed 0 allocations; gate is bit-invisible");
}
