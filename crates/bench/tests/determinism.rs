//! The determinism contract of the parallel runtime, checked end to end:
//! every parallel code path must produce bit-identical results at any
//! worker count. Worker counts {1, 2, 7} cover the serial path, an even
//! split, and a ragged split with more workers than some inputs have rows.

use proptest::prelude::*;
use targad_baselines::{DeepSad, IForest, TrainView};
use targad_bench::{harness_config, run_suite_rt};
use targad_core::{Detector, Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::rng as lrng;

const WORKERS: [usize; 3] = [1, 2, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel matmul is bit-identical to serial for random shapes.
    #[test]
    fn matmul_is_worker_count_invariant(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = lrng::seeded(seed);
        let a = lrng::normal_matrix(&mut rng, m, k, 0.0, 1.0);
        let b = lrng::normal_matrix(&mut rng, k, n, 0.0, 1.0);
        let serial = a.matmul(&b);
        for workers in WORKERS {
            let par = a.matmul_rt(&b, &Runtime::new(workers));
            prop_assert_eq!(par.as_slice(), serial.as_slice(), "workers = {}", workers);
        }
    }
}

/// An iForest built and scored in parallel matches the serial build
/// bit for bit (per-tree RNG streams are derived from the fit seed, not
/// from the partition).
#[test]
fn iforest_is_worker_count_invariant() {
    let bundle = GeneratorSpec::quick_demo().generate(17);
    let view = TrainView::from_dataset(&bundle.train);
    let serial = {
        let mut f = IForest::new(50, 64).with_runtime(Runtime::serial());
        f.fit(&view, 5).unwrap();
        f.score(&bundle.test.features)
    };
    for workers in WORKERS {
        let mut f = IForest::new(50, 64).with_runtime(Runtime::new(workers));
        f.fit(&view, 5).unwrap();
        assert_eq!(
            f.score(&bundle.test.features),
            serial,
            "workers = {workers}"
        );
    }
}

/// TargAD scoring through the runtime-parallel forward pass is
/// bit-identical at any worker count.
#[test]
fn targad_scores_are_worker_count_invariant() {
    let bundle = GeneratorSpec::quick_demo().generate(23);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 3;
    cfg.clf_epochs = 4;
    let serial = {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::serial());
        model.fit(&bundle.train, 9).expect("fit");
        model.try_score_dataset(&bundle.test).expect("fitted")
    };
    for workers in WORKERS {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::new(workers));
        model.fit(&bundle.train, 9).expect("fit");
        let scores = model.try_score_dataset(&bundle.test).expect("fitted");
        assert_eq!(scores, serial, "workers = {workers}");
    }
}

/// The pooled-tape training path produces bit-identical per-epoch losses
/// (AE and classifier) at every worker count: buffer recycling replays the
/// same floating-point operations in the same order regardless of how
/// scoring work is partitioned.
#[test]
fn pooled_tape_training_losses_are_worker_count_invariant() {
    let bundle = GeneratorSpec::quick_demo().generate(41);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 3;
    cfg.clf_epochs = 4;
    let serial = {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::serial());
        model.fit(&bundle.train, 13).expect("fit");
        model.history().clone()
    };
    assert!(!serial.clf_loss.is_empty());
    for workers in WORKERS {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::new(workers));
        model.fit(&bundle.train, 13).expect("fit");
        let history = model.history();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&history.clf_loss),
            bits(&serial.clf_loss),
            "clf losses diverged at workers = {workers}"
        );
        assert_eq!(
            bits(&history.ae_loss),
            bits(&serial.ae_loss),
            "AE losses diverged at workers = {workers}"
        );
    }
}

/// The trained classifier itself — not just its loss trace — is
/// bit-identical at every worker count: each step's shard gradients land in
/// disjoint buffers and are reduced in fixed shard order before the single
/// optimizer apply, so the whole parameter trajectory is worker-count-free.
#[test]
fn targad_trained_weights_are_worker_count_invariant() {
    let bundle = GeneratorSpec::quick_demo().generate(47);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let serial = {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::serial());
        model.fit(&bundle.train, 29).expect("fit");
        model.classifier().expect("fitted").parameter_matrices()
    };
    assert!(!serial.is_empty());
    for workers in WORKERS {
        let mut model = TargAd::try_new(cfg.clone())
            .expect("valid config")
            .with_runtime(Runtime::new(workers));
        model.fit(&bundle.train, 29).expect("fit");
        let params = model.classifier().expect("fitted").parameter_matrices();
        assert_eq!(params.len(), serial.len());
        for (i, (p, s)) in params.iter().zip(&serial).enumerate() {
            let bits = |m: &targad_linalg::Matrix| {
                m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(
                bits(p),
                bits(s),
                "parameter {i} diverged at workers = {workers}"
            );
        }
    }
}

/// A sharded baseline trains to the same model at every worker count —
/// DeepSAD stands in for the eleven converted epoch loops.
#[test]
fn deepsad_fit_is_worker_count_invariant() {
    let bundle = GeneratorSpec::quick_demo().generate(53);
    let view = TrainView::from_dataset(&bundle.train);
    let build = || {
        let mut m = DeepSad::default();
        m.pretrain_epochs = 3;
        m.epochs = 4;
        m
    };
    let serial = {
        let mut m = build().with_runtime(Runtime::serial());
        m.fit(&view, 19).unwrap();
        m.score(&bundle.test.features)
    };
    for workers in WORKERS {
        let mut m = build().with_runtime(Runtime::new(workers));
        m.fit(&view, 19).unwrap();
        let scores = m.score(&bundle.test.features);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&scores), bits(&serial), "workers = {workers}");
    }
}

/// The full Table II grid is independent of the suite runtime (and hence
/// of `TARGAD_THREADS`): every `(model, seed)` cell depends only on the
/// model and the seed.
#[test]
fn run_suite_is_worker_count_invariant() {
    let mut spec = GeneratorSpec::quick_demo();
    spec.train_unlabeled = 150;
    spec.test_counts.normal = 60;
    let bundle = spec.generate(31);
    let mut cfg = harness_config(spec.normal_groups);
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let seeds = [1u64];

    let serial = run_suite_rt(&bundle, &cfg, &seeds, Runtime::serial());
    for workers in [2usize, 7] {
        let par = run_suite_rt(&bundle, &cfg, &seeds, Runtime::new(workers));
        assert_eq!(par.len(), serial.len());
        for (p, s) in par.iter().zip(&serial) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.auprc.mean.to_bits(), s.auprc.mean.to_bits(), "{}", p.name);
            assert_eq!(p.auroc.mean.to_bits(), s.auroc.mean.to_bits(), "{}", p.name);
        }
    }
}
