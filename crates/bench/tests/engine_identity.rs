//! Exact-equality contract for the pooled [`targad_nn::ScoreEngine`]:
//! every engine-backed scoring path — TargAD's Eq. 9 target scores and all
//! ten MLP-backed baselines — must be **bit-identical** to its retained
//! reference implementation (the unfused `Mlp::eval` chain), at every
//! worker count. Worker counts {1, 2, 7} cover the serial inline path, an
//! even split, and a ragged split with more workers than row blocks; CI
//! additionally runs the whole binary under `TARGAD_THREADS` ∈ {1, 2, 7}
//! so the `Runtime::from_env` construction path is exercised too.

use targad_baselines::{
    Adoa, DeepSad, DevNet, Dplan, DualMgan, Feawad, PiaWal, PreNet, Pumad, Repen,
};
use targad_core::{Detector, Runtime, TargAd, TargAdConfig, TrainView};
use targad_data::GeneratorSpec;

const WORKERS: [usize; 3] = [1, 2, 7];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Fits one baseline per worker count and asserts the engine-backed
/// `Detector::score` equals the reference `score_reference` bit for bit.
/// (Fitting is worker-count invariant by the determinism contract, so each
/// refit trains the identical model; the comparison isolates scoring.)
macro_rules! assert_engine_matches_reference {
    ($build:expr) => {{
        let bundle = GeneratorSpec::quick_demo().generate(67);
        let view = TrainView::from_dataset(&bundle.train);
        for workers in WORKERS {
            let mut m = ($build)().with_runtime(Runtime::new(workers));
            m.fit(&view, 11).unwrap();
            let engine = m.score(&bundle.test.features);
            let reference = m.score_reference(&bundle.test.features);
            assert_eq!(
                bits(&engine),
                bits(&reference),
                "engine diverged from reference at workers = {workers}"
            );
        }
    }};
}

/// TargAD: `target_scores_rt` (engine) vs `target_scores` (reference
/// softmax-max chain), plus the public `try_score_matrix` entry point that
/// rides the same engine on the model's own runtime.
#[test]
fn targad_engine_scores_match_reference_exactly() {
    let bundle = GeneratorSpec::quick_demo().generate(61);
    let mut cfg = TargAdConfig::fast();
    cfg.ae_epochs = 2;
    cfg.clf_epochs = 3;
    let mut model = TargAd::try_new(cfg).expect("valid config");
    model.fit(&bundle.train, 3).expect("fit");
    let x = &bundle.test.features;
    let clf = model.classifier().expect("fitted");
    let reference = clf.target_scores(x);
    for workers in WORKERS {
        let engine = clf.target_scores_rt(x, &Runtime::new(workers));
        assert_eq!(bits(&engine), bits(&reference), "workers = {workers}");
    }
    let public = model.try_score_matrix(x).expect("fitted");
    assert_eq!(bits(&public), bits(&reference), "try_score_matrix path");
}

#[test]
fn devnet_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = DevNet::default();
        m.epochs = 3;
        m
    });
}

#[test]
fn deepsad_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = DeepSad::default();
        m.pretrain_epochs = 2;
        m.epochs = 3;
        m
    });
}

#[test]
fn prenet_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = PreNet::default();
        m.steps = 30;
        m
    });
}

#[test]
fn feawad_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = Feawad::default();
        m.pretrain_epochs = 2;
        m.epochs = 3;
        m
    });
}

#[test]
fn repen_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = Repen::default();
        m.steps = 30;
        m
    });
}

#[test]
fn dplan_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = Dplan::default();
        m.steps = 40;
        m
    });
}

#[test]
fn pumad_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = Pumad::default();
        m.epochs = 3;
        m
    });
}

#[test]
fn adoa_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = Adoa::default();
        m.epochs = 3;
        m
    });
}

#[test]
fn piawal_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = PiaWal::default();
        m.epochs = 3;
        m
    });
}

#[test]
fn dualmgan_engine_matches_reference() {
    assert_engine_matches_reference!(|| {
        let mut m = DualMgan::default();
        m.gan_epochs = 2;
        m.clf_epochs = 3;
        m
    });
}
