//! The f32 tolerance harness: the SIMD serving path against the f64
//! ranking oracle, on the Table II suite.
//!
//! The f32 kernels promise bit-identical results *within* the f32 world
//! (SIMD vs scalar, any worker count — pinned in `targad-linalg` and
//! `targad-nn`). Against the f64 oracle they promise *ranking fidelity*,
//! which is what this harness measures on every Table II preset:
//!
//! - AUC-PR of the Eq. 9 target score moves by less than `1e-3`;
//! - the three-way §III-C verdict agrees with the oracle on more than
//!   99.9% of decisions, across all three OOD strategies;
//! - f32 scores are worker-count invariant on the trained classifier.
//!
//! Scale is small by default so the harness fits the tier-1 budget; set
//! `TARGAD_PARITY_SCALE` (e.g. `0.2`) for a heavier sweep.

use targad_bench::harness_config;
use targad_core::{EnginePrecision, OodStrategy, Runtime, TargAd};
use targad_data::Preset;
use targad_metrics::average_precision;

fn parity_scale() -> f64 {
    std::env::var("TARGAD_PARITY_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03)
}

#[test]
fn f32_matches_the_f64_oracle_on_the_table2_suite() {
    let scale = parity_scale();
    let rt = Runtime::new(2);
    let mut decisions = 0u64;
    let mut disagreements = 0u64;

    for preset in Preset::all() {
        let spec = preset.spec(scale);
        let bundle = spec.generate(11);
        // Training depth does not matter for an inference-precision
        // comparison — only that the classifier is fitted and calibrated —
        // so epochs are trimmed to keep the harness in the tier-1 budget.
        let mut config = harness_config(spec.normal_groups);
        config.ae_epochs = 6;
        config.clf_epochs = 10;
        let mut model = TargAd::try_new(config).expect("valid config");
        model.fit(&bundle.train, 11).expect("fit");
        let thresholds = model
            .calibrate_thresholds(&bundle.val.features, &bundle.val.three_way_labels())
            .expect("calibrate");
        let clf = model.classifier().expect("fitted");
        let x = &bundle.test.features;
        let labels = bundle.test.target_labels();

        // Ranking fidelity: AUC-PR of the Eq. 9 score barely moves.
        let s64 = clf.target_scores_rt_prec(x, &rt, EnginePrecision::F64);
        let s32 = clf.target_scores_rt_prec(x, &rt, EnginePrecision::F32);
        let ap64 = average_precision(&s64, &labels);
        let ap32 = average_precision(&s32, &labels);
        assert!(
            (ap64 - ap32).abs() < 1e-3,
            "{}: AUC-PR drift {:.2e} (f64 {ap64:.6} vs f32 {ap32:.6})",
            preset.name(),
            (ap64 - ap32).abs()
        );

        // Decision fidelity: three-way verdict agreement per strategy.
        for strategy in OodStrategy::all() {
            let tau = thresholds.get(strategy).expect("calibrated");
            let v64 = clf.verdicts_rt_with_prec(x, &rt, EnginePrecision::F64, |_| (strategy, tau));
            let v32 = clf.verdicts_rt_with_prec(x, &rt, EnginePrecision::F32, |_| (strategy, tau));
            decisions += v64.len() as u64;
            disagreements += v64
                .iter()
                .zip(&v32)
                .filter(|((_, c64), (_, c32))| c64 != c32)
                .count() as u64;
        }

        // Worker invariance on the *trained* classifier: the f32 path must
        // return bit-identical scores at any thread count (the synthetic
        // model version lives in `targad-nn`).
        let serial = clf.target_scores_rt_prec(x, &Runtime::serial(), EnginePrecision::F32);
        for workers in [2usize, 7] {
            let par = clf.target_scores_rt_prec(x, &Runtime::new(workers), EnginePrecision::F32);
            assert_eq!(
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: f32 scores changed at {workers} workers",
                preset.name()
            );
        }
    }

    let agreement = 1.0 - disagreements as f64 / decisions as f64;
    assert!(
        agreement > 0.999,
        "three-way verdict agreement {agreement:.6} (\u{2264} 0.999) over {decisions} decisions \
         ({disagreements} disagreements)"
    );
    println!(
        "f32 parity: {decisions} decisions, {disagreements} disagreements, \
         agreement {agreement:.6}"
    );
}
