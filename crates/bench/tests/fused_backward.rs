//! The fused dense backward path vs the retained unfused reference arms:
//! bit identity end to end.
//!
//! The fused `Dense` tape node replays the exact floating-point chains of
//! the unfused matmul / row-broadcast / activation triplet (forward and
//! backward), so fitted weights and per-epoch losses must be *exactly*
//! equal with fusion on and off — at any worker count, since the sharded
//! reduction is already order-fixed. Run in CI at `TARGAD_THREADS`
//! ∈ {1, 2, 7} alongside the engine-identity legs.

use targad_autograd::{force_grad_prune, Tape, VarStore};
use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::{force_fused_backward, Activation, Adam, Mlp, Optimizer};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn weight_bits(mlp: &Mlp, store: &VarStore) -> Vec<Vec<u64>> {
    mlp.layers()
        .iter()
        .flat_map(|l| {
            let (w, b) = l.params();
            [
                bits(store.value(w).as_slice()),
                bits(store.value(b).as_slice()),
            ]
        })
        .collect()
}

/// Trains a small MLP for `steps` Adam steps and returns the bit patterns
/// of every fitted parameter plus the per-step losses.
fn train_mlp(
    fused: bool,
    hidden_act: Activation,
    out_act: Activation,
    steps: usize,
) -> (Vec<Vec<u64>>, Vec<u64>) {
    let _g = force_fused_backward(fused);
    let mut rng = lrng::seeded(97);
    let x = lrng::normal_matrix(&mut rng, 24, 5, 0.0, 1.0);
    let true_w = lrng::normal_matrix(&mut rng, 5, 3, 0.0, 1.0);
    let y = x.matmul(&true_w).map(|v| v.tanh());

    let mut store = VarStore::new();
    let mlp = Mlp::new(&mut store, &mut rng, &[5, 7, 3], hidden_act, out_act);
    let mut opt = Adam::new(1e-2);
    let mut tape = Tape::new();
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        store.zero_grads();
        tape.reset();
        let xv = tape.input_from(&x);
        let yv = tape.input_from(&y);
        let pred = mlp.forward(&mut tape, &store, xv);
        let loss = tape.mse(pred, yv);
        losses.push(tape.value(loss)[(0, 0)].to_bits());
        tape.backward(loss, &mut store);
        opt.step(&mut store);
    }
    (weight_bits(&mlp, &store), losses)
}

/// Every activation pairing the model zoo uses: fused and unfused training
/// must agree on every parameter bit and every per-step loss bit.
#[test]
fn mlp_training_is_fused_invariant() {
    for &(hidden, out) in &[
        (Activation::Relu, Activation::None),
        (Activation::Tanh, Activation::Sigmoid),
        (Activation::LeakyRelu, Activation::Tanh),
        (Activation::Sigmoid, Activation::None),
    ] {
        let (w_ref, l_ref) = train_mlp(false, hidden, out, 40);
        let (w_fused, l_fused) = train_mlp(true, hidden, out, 40);
        assert_eq!(l_fused, l_ref, "losses diverged for {hidden:?}/{out:?}");
        assert_eq!(w_fused, w_ref, "weights diverged for {hidden:?}/{out:?}");
    }
}

/// Dead-gradient pruning only skips gradients nothing can consume (input
/// leaves and the chains that feed solely into them), so training must be
/// bit-identical — every parameter bit, every per-step loss bit — with
/// pruning on and off, fused and unfused alike.
#[test]
fn mlp_training_is_prune_invariant() {
    for fused in [false, true] {
        let run = |prune: bool| {
            let _p = force_grad_prune(prune);
            train_mlp(fused, Activation::Relu, Activation::None, 40)
        };
        assert_eq!(run(true), run(false), "fused = {fused}");
    }
}

/// Gradients through a *frozen* module (the GAN generator-step pattern:
/// trainable generator, frozen discriminator in the loss) are also
/// bit-identical fused vs unfused.
#[test]
fn frozen_forward_gradients_are_fused_invariant() {
    let run = |fused: bool| -> Vec<Vec<u64>> {
        let _g = force_fused_backward(fused);
        let mut rng = lrng::seeded(131);
        let mut gen_store = VarStore::new();
        let gen = Mlp::new(
            &mut gen_store,
            &mut rng,
            &[4, 6, 5],
            Activation::LeakyRelu,
            Activation::Tanh,
        );
        let mut disc_store = VarStore::new();
        let disc = Mlp::new(
            &mut disc_store,
            &mut rng,
            &[5, 6, 1],
            Activation::LeakyRelu,
            Activation::Sigmoid,
        );
        let z = lrng::normal_matrix(&mut rng, 16, 4, 0.0, 1.0);
        let target = Matrix::ones(16, 1);

        gen_store.zero_grads();
        let mut tape = Tape::new();
        let zv = tape.input_from(&z);
        let tv = tape.input_from(&target);
        let fake = gen.forward(&mut tape, &gen_store, zv);
        let verdict = disc.forward_frozen(&mut tape, &disc_store, fake);
        let loss = tape.mse(verdict, tv);
        tape.backward(loss, &mut gen_store);
        gen_store
            .ids()
            .map(|id| bits(gen_store.grad(id).as_slice()))
            .collect()
    };
    assert_eq!(run(true), run(false));
}

/// Whole-pipeline oracle: a full `TargAd::fit` (AE selection + sharded
/// classifier training) yields bit-identical fitted classifier weights and
/// per-epoch loss histories with fusion on and off, with the fused arm
/// checked across worker counts {1, 2, 7} against the serial unfused
/// reference.
#[test]
fn targad_fit_is_fused_invariant_across_worker_counts() {
    type Fit = (Vec<Vec<u64>>, Vec<u64>, Vec<u64>);
    let fit = |fused: bool, workers: usize| -> Fit {
        let _g = force_fused_backward(fused);
        let bundle = GeneratorSpec::quick_demo().generate(29);
        let mut cfg = TargAdConfig::fast();
        cfg.ae_epochs = 3;
        cfg.clf_epochs = 4;
        let mut model = TargAd::try_new(cfg)
            .expect("valid config")
            .with_runtime(Runtime::new(workers));
        model.fit(&bundle.train, 11).expect("fit");
        let weights = model
            .classifier()
            .expect("fitted")
            .parameter_matrices()
            .iter()
            .map(|m| bits(m.as_slice()))
            .collect();
        let h = model.history();
        (weights, bits(&h.clf_loss), bits(&h.ae_loss))
    };

    let reference = fit(false, 1);
    assert!(!reference.1.is_empty());
    for workers in [1usize, 2, 7] {
        assert_eq!(fit(true, workers), reference, "workers = {workers}");
    }

    // The whole pipeline is also prune-invariant: disabling dead-gradient
    // pruning changes how much work backward does, never what it computes.
    let _p = force_grad_prune(false);
    assert_eq!(fit(true, 2), reference, "prune off");
}
