//! CI observability smoke test: telemetry is **read-only**.
//!
//! Trains the same model with telemetry globally disabled and globally
//! enabled (metrics + spans + a JSONL sink receiving every event) at 1 and
//! 4 workers, and asserts the fitted classifier parameters are
//! **bit-identical** in all four runs. Also validates the JSONL stream
//! structurally: one object per line, self-describing `"type"` fields, in
//! emission order.
//!
//! Everything lives in one `#[test]` because the telemetry gate is
//! process-global; concurrent tests toggling it would race.

use targad_core::{Runtime, TargAd, TargAdConfig};
use targad_data::GeneratorSpec;
use targad_obs::events::Recorder;
use targad_obs::sink::JsonlSink;
use targad_obs::Tee;

fn config() -> TargAdConfig {
    let mut c = TargAdConfig::fast();
    c.ae_epochs = 2;
    c.clf_epochs = 3;
    c
}

fn param_bits(model: &TargAd) -> Vec<Vec<u64>> {
    model
        .classifier()
        .expect("fitted")
        .parameter_matrices()
        .iter()
        .map(|m| m.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

#[test]
fn telemetry_is_bit_identical_and_jsonl_is_well_formed() {
    let seed = 23;
    let bundle = GeneratorSpec::quick_demo().generate(seed);

    // Reference: telemetry off, serial.
    targad_obs::set_enabled(false);
    let reference = {
        let mut model = TargAd::try_new(config())
            .expect("valid config")
            .with_runtime(Runtime::serial());
        model.fit(&bundle.train, seed).expect("fit");
        param_bits(&model)
    };
    assert!(!reference.is_empty());

    for workers in [1usize, 4] {
        for enabled in [false, true] {
            targad_obs::set_enabled(enabled);
            let mut model = TargAd::try_new(config())
                .expect("valid config")
                .with_runtime(Runtime::new(workers));
            let mut rec = Recorder::new();
            let mut sink = JsonlSink::new(Vec::new());
            let mut tee = Tee(&mut rec, &mut sink);
            model
                .fit_observed(&bundle.train, seed, &mut tee)
                .expect("fit");
            assert_eq!(
                param_bits(&model),
                reference,
                "trained weights drifted (workers={workers}, telemetry={enabled})"
            );

            // The observer stream is emitted regardless of the metrics
            // gate; its payload must match the reference run's shape.
            assert_eq!(rec.epochs.len(), 3);
            assert!(rec.fit_start.is_some() && rec.selection.is_some());

            // JSONL round-trip: fit_start, selection, 2 AE epochs,
            // 3 classifier epochs, fit_end = 8 self-describing lines.
            let out = String::from_utf8(sink.into_inner()).expect("utf8");
            let lines: Vec<&str> = out.lines().collect();
            let types: Vec<&str> = lines
                .iter()
                .map(|l| {
                    assert!(l.starts_with('{') && l.ends_with('}'), "not JSON: {l}");
                    let start = l.find("\"type\":\"").expect("type field") + 8;
                    &l[start..start + l[start..].find('"').expect("closing quote")]
                })
                .collect();
            assert_eq!(
                types,
                [
                    "fit_start",
                    "ae_epoch",
                    "ae_epoch",
                    "selection",
                    "epoch",
                    "epoch",
                    "epoch",
                    "fit_end",
                ],
                "unexpected stream: {out}"
            );
        }
    }
    targad_obs::set_enabled(false);
}
