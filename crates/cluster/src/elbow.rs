//! The elbow method for choosing `k` (§IV-C of the paper).

use crate::kmeans::{KMeans, KMeansConfig};
use targad_linalg::Matrix;

/// Picks `k` within `[k_min, k_max]` by the elbow (maximum-curvature)
/// heuristic: fit k-means for each candidate, then select the `k` whose
/// point on the inertia curve lies farthest from the chord connecting the
/// curve's endpoints.
///
/// Returns `(k, inertias)` where `inertias[i]` is the inertia at
/// `k = k_min + i`.
///
/// # Panics
/// Panics if `k_min == 0`, `k_min > k_max`, or `data` has fewer rows than
/// `k_max`.
pub fn choose_k_elbow(data: &Matrix, k_min: usize, k_max: usize, seed: u64) -> (usize, Vec<f64>) {
    assert!(
        k_min >= 1 && k_min <= k_max,
        "elbow: invalid range [{k_min}, {k_max}]"
    );
    assert!(data.rows() >= k_max, "elbow: need at least k_max rows");

    let inertias: Vec<f64> = (k_min..=k_max)
        .map(|k| {
            KMeans::fit(
                data,
                KMeansConfig::new(k),
                seed ^ (k as u64).wrapping_mul(0x9e37),
            )
            .inertia()
        })
        .collect();

    if inertias.len() <= 2 {
        return (k_min, inertias);
    }

    // Distance from each curve point to the chord between the endpoints.
    // Work on log-inertia: the inertia of well-separated clusters drops by
    // orders of magnitude at the true k, and a linear scale lets the first
    // (largest) drop mask later decisive ones.
    let n = inertias.len();
    let logs: Vec<f64> = inertias.iter().map(|&v| (v + 1e-12).ln()).collect();
    let y0 = logs[0];
    let y1 = logs[n - 1];
    let y_range = (y0 - y1).abs().max(1e-12);
    let mut best = 0;
    let mut best_dist = f64::NEG_INFINITY;
    for (i, &y) in logs.iter().enumerate() {
        let xn = i as f64 / (n - 1) as f64;
        let yn = (y - y1) / y_range;
        // chord from (0, y0n=1) to (1, 0): yn_chord = 1 − xn
        let dist = (1.0 - xn) - yn;
        // The elbow bulges *below* the chord: dist > 0.
        if dist > best_dist {
            best_dist = dist;
            best = i;
        }
    }
    (k_min + best, inertias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_linalg::rng as lrng;

    fn blobs(k_true: usize, per: usize, seed: u64) -> Matrix {
        let mut rng = lrng::seeded(seed);
        let mut rows = Vec::new();
        for c in 0..k_true {
            let cx = (c as f64 + 0.5) / k_true as f64;
            for _ in 0..per {
                rows.push(vec![
                    cx + lrng::normal(&mut rng, 0.0, 0.01),
                    (cx * 7.0).sin() * 0.4 + 0.5 + lrng::normal(&mut rng, 0.0, 0.01),
                ]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn finds_true_k_on_clean_blobs() {
        for k_true in [2usize, 3, 4] {
            let data = blobs(k_true, 60, 42 + k_true as u64);
            let (k, inertias) = choose_k_elbow(&data, 1, 8, 7);
            assert_eq!(inertias.len(), 8);
            assert_eq!(k, k_true, "inertias {inertias:?}");
        }
    }

    #[test]
    fn degenerate_range_returns_k_min() {
        let data = blobs(2, 10, 1);
        let (k, inertias) = choose_k_elbow(&data, 2, 2, 3);
        assert_eq!(k, 2);
        assert_eq!(inertias.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_bad_range() {
        let data = blobs(2, 10, 1);
        let _ = choose_k_elbow(&data, 3, 2, 3);
    }
}
