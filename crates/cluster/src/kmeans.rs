//! Lloyd's k-means with k-means++ seeding.

use rand::Rng;
use targad_linalg::{rng as lrng, Matrix};

/// Configuration for a k-means fit.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on the relative inertia improvement.
    pub tol: f64,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters (100 iterations, tol `1e-6`).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-6,
        }
    }
}

/// A fitted k-means model.
#[derive(Clone, Debug)]
pub struct KMeans {
    centroids: Matrix,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits k-means to `data` (instances are rows) with k-means++ seeding.
    ///
    /// # Panics
    /// Panics if `k == 0` or `data` has fewer rows than `k`.
    pub fn fit(data: &Matrix, config: KMeansConfig, seed: u64) -> Self {
        let n = data.rows();
        let k = config.k;
        assert!(k > 0, "k-means: k must be positive");
        assert!(n >= k, "k-means: need at least k={k} instances, got {n}");
        let mut rng = lrng::seeded(seed);

        let mut centroids = plus_plus_init(data, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;
        // Per-sweep accumulators, allocated once and re-zeroed each Lloyd
        // iteration (`sums` doubles as the next centroid matrix via swap).
        let mut sums = Matrix::zeros(k, data.cols());
        let mut counts = vec![0usize; k];

        for it in 0..config.max_iter {
            iterations = it + 1;
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, slot) in assignments.iter_mut().enumerate() {
                let (best, dist) = nearest_centroid(data.row(i), &centroids);
                *slot = best;
                new_inertia += dist;
            }

            // Update step.
            sums.fill(0.0);
            counts.fill(0);
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (s, &v) in sums.row_mut(c).iter_mut().zip(data.row(i)) {
                    *s += v;
                }
            }
            #[allow(clippy::needless_range_loop)] // counts and sums walk in lockstep
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty-cluster repair: re-seed at the point farthest
                    // from its current centroid.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = data.row_sq_dist(a, centroids.row(assignments[a]));
                            let db = data.row_sq_dist(b, centroids.row(assignments[b]));
                            da.partial_cmp(&db).expect("NaN distance")
                        })
                        .expect("nonempty data");
                    sums.row_mut(c).copy_from_slice(data.row(far));
                    counts[c] = 1;
                }
                let inv = 1.0 / counts[c] as f64;
                for s in sums.row_mut(c) {
                    *s *= inv;
                }
            }
            // The repair above reads the *old* centroids, so the swap must
            // come last; the retired centroid matrix becomes next sweep's
            // accumulator.
            std::mem::swap(&mut centroids, &mut sums);

            let improved = inertia - new_inertia;
            let converged = improved.abs() <= config.tol * inertia.max(1e-12);
            inertia = new_inertia;
            if converged && it > 0 {
                break;
            }
        }

        // Final assignment against the last centroid update.
        let mut final_inertia = 0.0;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (best, dist) = nearest_centroid(data.row(i), &centroids);
            *slot = best;
            final_inertia += dist;
        }

        Self {
            centroids,
            assignments,
            inertia: final_inertia,
            iterations,
        }
    }

    /// Cluster centroids, one per row.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Training-data cluster assignments.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances from instances to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Assigns a new instance to its nearest centroid.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        nearest_centroid(row, &self.centroids).0
    }

    /// Assigns every row of `data` to its nearest centroid.
    pub fn predict(&self, data: &Matrix) -> Vec<usize> {
        (0..data.rows())
            .map(|i| self.predict_row(data.row(i)))
            .collect()
    }

    /// Indices of training instances per cluster.
    pub fn cluster_members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignments.iter().enumerate() {
            members[c].push(i);
        }
        members
    }
}

fn nearest_centroid(row: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d: f64 = centroids
            .row(c)
            .iter()
            .zip(row)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        if d < best_dist {
            best = c;
            best_dist = d;
        }
    }
    (best, best_dist)
}

/// k-means++ seeding (Arthur & Vassilvitskii).
fn plus_plus_init(data: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    let n = data.rows();
    let mut centers: Vec<usize> = Vec::with_capacity(k);
    centers.push(rng.random_range(0..n));

    let mut dists: Vec<f64> = (0..n)
        .map(|i| data.row_sq_dist(i, data.row(centers[0])))
        .collect();

    while centers.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centers.
            rng.random_range(0..n)
        } else {
            let mut draw = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                draw -= d;
                if draw <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(next);
        for (i, best) in dists.iter_mut().enumerate() {
            let d = data.row_sq_dist(i, data.row(next));
            if d < *best {
                *best = d;
            }
        }
    }

    data.take_rows(&centers)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs(seed: u64, per_cluster: usize) -> (Matrix, Vec<usize>) {
        let centers = [(0.1, 0.1), (0.9, 0.1), (0.5, 0.9)];
        let mut rng = lrng::seeded(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per_cluster {
                rows.push(vec![
                    cx + lrng::normal(&mut rng, 0.0, 0.02),
                    cy + lrng::normal(&mut rng, 0.0, 0.02),
                ]);
                truth.push(ci);
            }
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs(1, 50);
        let km = KMeans::fit(&data, KMeansConfig::new(3), 7);
        // Every ground-truth blob should map to exactly one cluster.
        for blob in 0..3 {
            let ids: Vec<usize> = truth
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == blob)
                .map(|(i, _)| km.assignments()[i])
                .collect();
            assert!(
                ids.windows(2).all(|w| w[0] == w[1]),
                "blob {blob} split across clusters"
            );
        }
        assert!(km.inertia() < 1.0);
    }

    #[test]
    fn k_equals_one_gives_mean_centroid() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        let km = KMeans::fit(&data, KMeansConfig::new(1), 3);
        assert_eq!(km.centroids().row(0), &[1.0, 2.0]);
        assert_eq!(km.assignments(), &[0, 0]);
    }

    #[test]
    fn k_equals_n_achieves_zero_inertia() {
        let (data, _) = blobs(2, 2);
        let km = KMeans::fit(&data, KMeansConfig::new(6), 5);
        assert!(km.inertia() < 1e-20, "inertia {}", km.inertia());
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let (data, _) = blobs(3, 40);
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            // Best of 3 seeds to smooth out local minima.
            let best = (0..3)
                .map(|s| KMeans::fit(&data, KMeansConfig::new(k), s).inertia())
                .fold(f64::INFINITY, f64::min);
            assert!(best <= last + 1e-9, "k={k}: {best} > {last}");
            last = best;
        }
    }

    #[test]
    fn predict_is_consistent_with_training_assignments() {
        let (data, _) = blobs(4, 30);
        let km = KMeans::fit(&data, KMeansConfig::new(3), 11);
        assert_eq!(&km.predict(&data), km.assignments());
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]);
        let km = KMeans::fit(&data, KMeansConfig::new(3), 2);
        assert_eq!(km.inertia(), 0.0);
        assert_eq!(km.predict(&data).len(), 10);
    }

    #[test]
    fn cluster_members_partition_indices() {
        let (data, _) = blobs(5, 20);
        let km = KMeans::fit(&data, KMeansConfig::new(3), 9);
        let members = km.cluster_members();
        let mut all: Vec<usize> = members.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..60).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let data = Matrix::ones(3, 2);
        let _ = KMeans::fit(&data, KMeansConfig::new(0), 1);
    }
}
