//! k-means clustering for TargAD's candidate selection.
//!
//! Algorithm 1 of the paper starts by partitioning the unlabeled data into
//! `k` groups with k-means so that a per-group autoencoder can learn each
//! normal pattern; `k` is "selected based on the elbow method" (§IV-C).
//! This crate provides both pieces:
//!
//! - [`KMeans`]: Lloyd iterations with k-means++ seeding and empty-cluster
//!   repair;
//! - [`choose_k_elbow`]: the elbow heuristic over the inertia curve.

pub mod elbow;
pub mod kmeans;

pub use elbow::choose_k_elbow;
pub use kmeans::{KMeans, KMeansConfig};
