//! Property tests for k-means invariants.

use proptest::prelude::*;
use targad_cluster::{KMeans, KMeansConfig};
use targad_linalg::Matrix;

fn data_strategy() -> impl Strategy<Value = Matrix> {
    (4usize..40, 1usize..5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(0.0f64..1.0, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every instance is assigned to its nearest centroid (local optimality
    /// of the assignment step).
    #[test]
    fn assignments_are_nearest(data in data_strategy(), seed in 0u64..1000) {
        let k = 3.min(data.rows());
        let km = KMeans::fit(&data, KMeansConfig::new(k), seed);
        for i in 0..data.rows() {
            let assigned = km.assignments()[i];
            let d_assigned = data.row_sq_dist(i, km.centroids().row(assigned));
            for c in 0..km.k() {
                let d = data.row_sq_dist(i, km.centroids().row(c));
                prop_assert!(d_assigned <= d + 1e-9, "row {i}: {d_assigned} > {d}");
            }
        }
    }

    /// Inertia equals the sum of assigned squared distances.
    #[test]
    fn inertia_is_consistent(data in data_strategy(), seed in 0u64..1000) {
        let k = 2.min(data.rows());
        let km = KMeans::fit(&data, KMeansConfig::new(k), seed);
        let recomputed: f64 = (0..data.rows())
            .map(|i| data.row_sq_dist(i, km.centroids().row(km.assignments()[i])))
            .sum();
        prop_assert!((km.inertia() - recomputed).abs() < 1e-9);
    }

    /// predict() on the training data reproduces the stored assignments.
    #[test]
    fn predict_matches_assignments(data in data_strategy(), seed in 0u64..1000) {
        let k = 3.min(data.rows());
        let km = KMeans::fit(&data, KMeansConfig::new(k), seed);
        prop_assert_eq!(&km.predict(&data), km.assignments());
    }

    /// Cluster membership lists partition 0..n.
    #[test]
    fn members_partition(data in data_strategy(), seed in 0u64..1000) {
        let k = 4.min(data.rows());
        let km = KMeans::fit(&data, KMeansConfig::new(k), seed);
        let mut all: Vec<usize> = km.cluster_members().into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..data.rows()).collect::<Vec<_>>());
    }

    /// Fitting is deterministic for a fixed seed.
    #[test]
    fn deterministic(data in data_strategy(), seed in 0u64..1000) {
        let k = 2.min(data.rows());
        let a = KMeans::fit(&data, KMeansConfig::new(k), seed);
        let b = KMeans::fit(&data, KMeansConfig::new(k), seed);
        prop_assert_eq!(a.assignments(), b.assignments());
        prop_assert_eq!(a.centroids(), b.centroids());
    }
}
