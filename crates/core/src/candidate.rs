//! Candidate selection (§III-B1, Lines 1–7 of Algorithm 1).
//!
//! The unlabeled data `D_U` is clustered with k-means; each cluster trains
//! its own autoencoder with the DeepSAD-modified loss
//!
//! ```text
//! L_AE_i = mean_{x ∈ D_Ui} ‖x − φ_D(φ_E(x))‖²
//!        + η · mean_{x ∈ D_L} (‖x − φ_D(φ_E(x))‖²)⁻¹           (Eq. 1)
//! ```
//!
//! so labeled target anomalies are pushed toward *high* reconstruction
//! error. All unlabeled instances are then ranked by reconstruction error
//! (Eq. 2); the top `α%` become the non-target anomaly candidate set
//! `D_U^A`, the rest the normal candidate set `D_U^N`.

use targad_autograd::VarStore;
use targad_cluster::{choose_k_elbow, KMeans, KMeansConfig};
use targad_linalg::{rng as lrng, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Adam, AutoEncoder, EngineCell, Optimizer, ShardedStep};
use targad_runtime::Runtime;

use crate::config::TargAdConfig;

/// Maximum rows used when running the elbow method (k-means over the full
/// unlabeled set once per candidate k would dominate runtime at paper
/// scale; inertia curves stabilize long before this subsample size).
const ELBOW_SUBSAMPLE: usize = 2_000;

/// One trained per-cluster autoencoder with its parameters.
pub struct ClusterAutoEncoder {
    store: VarStore,
    ae: AutoEncoder,
    /// Pooled inference engine for the frozen Eq. 2 forward pass.
    engine: EngineCell,
    /// Mean Eq. 1 loss per epoch (diagnostics).
    pub loss_history: Vec<f64>,
}

impl ClusterAutoEncoder {
    /// Squared reconstruction errors (Eq. 2) for each row of `x`, via the
    /// reference (unfused) forward pass — the implementation
    /// [`ClusterAutoEncoder::recon_errors_rt`] is exact-equality tested
    /// against.
    pub fn recon_errors(&self, x: &Matrix) -> Vec<f64> {
        self.ae.recon_errors(&self.store, x)
    }

    /// [`ClusterAutoEncoder::recon_errors`] through the pooled
    /// `ScoreEngine` on `rt`: the encoder–decoder chain runs as one fused
    /// block-streamed pipeline and each reconstruction row reduces to its
    /// squared error in place. Bit-identical to the reference: the engine
    /// reproduces the exact reconstruction chains, and the per-row finish
    /// accumulates `(x̂_j − x_j)²` in the same ascending-`j` order as
    /// `row_sq_norms` over the materialized difference matrix (each `d_j`
    /// round-trips through an f64 exactly).
    pub fn recon_errors_rt(&self, x: &Matrix, rt: &Runtime) -> Vec<f64> {
        let stack = [
            (self.ae.encoder(), &self.store),
            (self.ae.decoder(), &self.store),
        ];
        self.engine.with(|e| {
            e.score(&stack, x, rt, |r, xhat| {
                x.row(r)
                    .iter()
                    .zip(xhat)
                    .map(|(&xv, &hv)| {
                        let d = hv - xv;
                        d * d
                    })
                    .sum()
            })
        })
    }

    /// The underlying autoencoder.
    pub fn autoencoder(&self) -> &AutoEncoder {
        &self.ae
    }
}

/// Output of candidate selection over the unlabeled view `D_U`.
pub struct CandidateSelection {
    /// Number of clusters `k` actually used.
    pub k: usize,
    /// Cluster index per unlabeled row.
    pub cluster_of: Vec<usize>,
    /// Reconstruction error (Eq. 2) per unlabeled row.
    pub recon_errors: Vec<f64>,
    /// Rows (indices into the unlabeled view) selected as non-target
    /// anomaly candidates `D_U^A`.
    pub anomaly_candidates: Vec<usize>,
    /// Rows selected as normal candidates `D_U^N`.
    pub normal_candidates: Vec<usize>,
    /// The per-cluster autoencoders (kept for scoring/diagnostics).
    pub autoencoders: Vec<ClusterAutoEncoder>,
}

impl CandidateSelection {
    /// Runs candidate selection on the unlabeled features `xu` using the
    /// labeled target anomalies `xl`, on [`Runtime::from_env`].
    pub fn run(xu: &Matrix, xl: &Matrix, config: &TargAdConfig, seed: u64) -> Self {
        Self::run_rt(xu, xl, config, seed, &Runtime::from_env())
    }

    /// [`CandidateSelection::run`] on an explicit [`Runtime`]: autoencoder
    /// training steps shard across `rt`'s workers, bit-identical to serial
    /// execution at any worker count.
    pub fn run_rt(
        xu: &Matrix,
        xl: &Matrix,
        config: &TargAdConfig,
        seed: u64,
        rt: &Runtime,
    ) -> Self {
        let _select_span = targad_obs::span(&targad_obs::profile::PHASE_SELECT);
        let (k, km) = {
            let _kmeans_span = targad_obs::span(&targad_obs::profile::PHASE_SELECT_KMEANS);
            let k = match config.k {
                Some(k) => k.min(xu.rows()),
                None => {
                    let (lo, hi) = config.elbow_range;
                    let sub = elbow_subsample(xu, seed);
                    let hi = hi.min(sub.rows());
                    let (k, _) = choose_k_elbow(&sub, lo.min(hi), hi, seed);
                    k
                }
            };
            (k, KMeans::fit(xu, KMeansConfig::new(k), seed ^ 0xC1D2))
        };
        let cluster_of = km.assignments().to_vec();
        let members = km.cluster_members();

        // Train one AE per cluster — in parallel, as in the paper.
        let _ae_span = targad_obs::span(&targad_obs::profile::PHASE_SELECT_AE);
        let mut autoencoders: Vec<Option<ClusterAutoEncoder>> = (0..k).map(|_| None).collect();
        let jobs: Vec<(usize, Matrix)> = members
            .iter()
            .enumerate()
            .map(|(c, m)| (c, xu.take_rows(m)))
            .collect();
        if config.parallel_aes && k > 1 {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|(c, data)| {
                        let c = *c;
                        scope.spawn(move || {
                            (
                                c,
                                train_cluster_ae(
                                    data,
                                    xl,
                                    config,
                                    seed ^ ((c as u64 + 1) * 0x9E3779B9),
                                    rt,
                                ),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("AE thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (c, ae) in results {
                autoencoders[c] = Some(ae);
            }
        } else {
            for (c, data) in &jobs {
                autoencoders[*c] = Some(train_cluster_ae(
                    data,
                    xl,
                    config,
                    seed ^ ((*c as u64 + 1) * 0x9E3779B9),
                    rt,
                ));
            }
        }
        let autoencoders: Vec<ClusterAutoEncoder> = autoencoders
            .into_iter()
            .map(|a| a.expect("every cluster trained"))
            .collect();

        drop(_ae_span);

        // Reconstruction errors per unlabeled row, via that row's cluster AE.
        let _rank_span = targad_obs::span(&targad_obs::profile::PHASE_SELECT_RANK);
        let mut recon_errors = vec![0.0; xu.rows()];
        for (c, member_rows) in members.iter().enumerate() {
            if member_rows.is_empty() {
                continue;
            }
            let errs = autoencoders[c].recon_errors_rt(&xu.take_rows(member_rows), rt);
            for (&row, err) in member_rows.iter().zip(errs) {
                recon_errors[row] = err;
            }
        }

        // Rank descending; top α% are non-target anomaly candidates.
        let mut order: Vec<usize> = (0..xu.rows()).collect();
        order.sort_by(|&a, &b| {
            recon_errors[b]
                .partial_cmp(&recon_errors[a])
                .expect("NaN reconstruction error")
        });
        let n_anom = ((config.alpha * xu.rows() as f64).round() as usize).clamp(1, xu.rows() - 1);
        let anomaly_candidates: Vec<usize> = order[..n_anom].to_vec();
        let normal_candidates: Vec<usize> = order[n_anom..].to_vec();

        Self {
            k,
            cluster_of,
            recon_errors,
            anomaly_candidates,
            normal_candidates,
            autoencoders,
        }
    }
}

fn elbow_subsample(xu: &Matrix, seed: u64) -> Matrix {
    if xu.rows() <= ELBOW_SUBSAMPLE {
        xu.clone()
    } else {
        let mut rng = lrng::seeded(seed ^ 0xE1B0);
        let idx = lrng::sample_indices(&mut rng, xu.rows(), ELBOW_SUBSAMPLE);
        xu.take_rows(&idx)
    }
}

/// Trains the autoencoder of one cluster with the Eq. 1 loss.
///
/// Each mini-batch shards across `rt`'s workers with a fixed partition and
/// fixed-order gradient reduction, so the trained parameters are
/// bit-identical at any worker count. The labeled push-away term (the
/// whole of `D_L`) is a whole-set term: it is built exactly once per step,
/// on the shard whose range starts at row 0.
fn train_cluster_ae(
    data: &Matrix,
    xl: &Matrix,
    config: &TargAdConfig,
    seed: u64,
    rt: &Runtime,
) -> ClusterAutoEncoder {
    let mut rng = lrng::seeded(seed);
    let mut store = VarStore::new();
    let dims = config.ae_dims(data.cols());
    let ae = AutoEncoder::new(&mut store, &mut rng, &dims);
    let mut opt = Adam::new(config.ae_lr);
    let use_labeled = config.eta > 0.0 && xl.rows() > 0;
    let eta = config.eta;
    let mut loss_history = Vec::with_capacity(config.ae_epochs);
    let mut step = ShardedStep::new();

    for _ in 0..config.ae_epochs {
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for batch in shuffled_batches(&mut rng, data.rows(), config.ae_batch) {
            store.zero_grads();
            let n_total = batch.len();
            let loss = step.accumulate(rt, &mut store, n_total, |tape, store, range| {
                let xb = tape.input_rows_from(data, &batch[range.clone()]);
                let err = ae.recon_error_rows(tape, store, xb);
                let term_u = tape.sum_div(err, n_total as f64);
                if use_labeled && range.start == 0 {
                    // Whole D_L each step — it is tiny by construction
                    // (§IV-A: 0.16%–0.48% of the training data).
                    let xl_v = tape.input_from(xl);
                    let err_l = ae.recon_error_rows(tape, store, xl_v);
                    let inv = tape.recip(err_l);
                    let term_l = tape.mean_all(inv);
                    tape.add_scaled(term_u, term_l, eta)
                } else {
                    term_u
                }
            });
            epoch_loss += loss;
            batches += 1;
            clip_grad_norm(&mut store, config.grad_clip);
            opt.step(&mut store);
        }
        loss_history.push(if batches > 0 {
            epoch_loss / batches as f64
        } else {
            0.0
        });
    }

    ClusterAutoEncoder {
        store,
        ae,
        engine: EngineCell::new(),
        loss_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;

    fn small_config() -> TargAdConfig {
        let mut c = TargAdConfig::fast();
        c.ae_epochs = 10;
        c
    }

    #[test]
    fn partitions_unlabeled_data_completely() {
        let bundle = GeneratorSpec::quick_demo().generate(3);
        let (xu, _) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let sel = CandidateSelection::run(&xu, &xl, &small_config(), 1);

        let mut all: Vec<usize> = sel
            .anomaly_candidates
            .iter()
            .chain(&sel.normal_candidates)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..xu.rows()).collect::<Vec<_>>());
        assert_eq!(sel.cluster_of.len(), xu.rows());
        assert_eq!(sel.recon_errors.len(), xu.rows());
        assert_eq!(sel.autoencoders.len(), sel.k);
    }

    #[test]
    fn candidate_count_matches_alpha() {
        let bundle = GeneratorSpec::quick_demo().generate(4);
        let (xu, _) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let mut config = small_config();
        config.alpha = 0.10;
        let sel = CandidateSelection::run(&xu, &xl, &config, 2);
        let expected = (0.10 * xu.rows() as f64).round() as usize;
        assert_eq!(sel.anomaly_candidates.len(), expected);
    }

    #[test]
    fn candidates_have_the_largest_errors() {
        let bundle = GeneratorSpec::quick_demo().generate(5);
        let (xu, _) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let sel = CandidateSelection::run(&xu, &xl, &small_config(), 3);
        let min_candidate = sel
            .anomaly_candidates
            .iter()
            .map(|&i| sel.recon_errors[i])
            .fold(f64::INFINITY, f64::min);
        let max_normal = sel
            .normal_candidates
            .iter()
            .map(|&i| sel.recon_errors[i])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_candidate >= max_normal);
    }

    #[test]
    fn selection_enriches_anomalies() {
        // The candidate set must hold a far higher anomaly fraction than the
        // unlabeled pool at large — the property the detection phase relies
        // on.
        let bundle = GeneratorSpec::quick_demo().generate(6);
        let (xu, u_idx) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let sel = CandidateSelection::run(&xu, &xl, &small_config(), 4);

        let is_anom = |view_row: usize| bundle.train.truth[u_idx[view_row]].is_anomaly();
        let cand_frac = sel
            .anomaly_candidates
            .iter()
            .filter(|&&i| is_anom(i))
            .count() as f64
            / sel.anomaly_candidates.len() as f64;
        let base_frac = (0..xu.rows()).filter(|&i| is_anom(i)).count() as f64 / xu.rows() as f64;
        assert!(
            cand_frac > 2.0 * base_frac,
            "candidates {cand_frac:.3} vs base rate {base_frac:.3}"
        );
    }

    #[test]
    fn serial_and_parallel_training_agree() {
        let bundle = GeneratorSpec::quick_demo().generate(7);
        let (xu, _) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let mut config = small_config();
        config.parallel_aes = false;
        let serial = CandidateSelection::run(&xu, &xl, &config, 5);
        config.parallel_aes = true;
        let parallel = CandidateSelection::run(&xu, &xl, &config, 5);
        // Same seeds per cluster → identical errors regardless of threading.
        assert_eq!(serial.recon_errors, parallel.recon_errors);
        assert_eq!(serial.anomaly_candidates, parallel.anomaly_candidates);
    }

    #[test]
    fn elbow_path_runs_when_k_unset() {
        let bundle = GeneratorSpec::quick_demo().generate(8);
        let (xu, _) = bundle.train.unlabeled_view();
        let (xl, _) = bundle.train.labeled_view();
        let mut config = small_config();
        config.k = None;
        config.elbow_range = (1, 4);
        let sel = CandidateSelection::run(&xu, &xl, &config, 6);
        assert!((1..=4).contains(&sel.k));
    }
}
