//! TargAD hyper-parameters.

/// Full hyper-parameter set for [`crate::TargAd`].
///
/// [`TargAdConfig::paper`] mirrors §IV-C of the paper;
/// [`TargAdConfig::fast`] shrinks the networks and epochs for tests,
/// examples, and quick experiments. The `use_*` flags drive the ablations
/// of Table III and the extension ablations listed in DESIGN.md §6.
#[derive(Clone, Debug)]
pub struct TargAdConfig {
    /// Number of k-means clusters `k`; `None` selects via the elbow method
    /// over [`TargAdConfig::elbow_range`] (the paper's procedure).
    pub k: Option<usize>,
    /// Candidate `k` range for the elbow method.
    pub elbow_range: (usize, usize),
    /// Candidate-selection threshold `α` (fraction, paper default 0.05):
    /// the top `α` of unlabeled data by reconstruction error becomes
    /// `D_U^A`.
    pub alpha: f64,
    /// Trade-off `η` of the inverse-reconstruction penalty in Eq. 1.
    pub eta: f64,
    /// Trade-off `λ₁` on `L_OE` in Eq. 8.
    pub lambda1: f64,
    /// Trade-off `λ₂` on `L_RE` in Eq. 8.
    pub lambda2: f64,
    /// Autoencoder hidden sizes as fractions of the input dimensionality,
    /// e.g. `[0.5, 0.25]` gives encoder `D → D/2 → D/4`.
    pub ae_hidden_fracs: Vec<f64>,
    /// Classifier hidden layer sizes (absolute).
    pub clf_hidden: Vec<usize>,
    /// Autoencoder training epochs (paper: 30).
    pub ae_epochs: usize,
    /// Classifier training epochs (paper: 30).
    pub clf_epochs: usize,
    /// Autoencoder Adam learning rate (paper: 1e-4).
    pub ae_lr: f64,
    /// Classifier Adam learning rate (paper: 1e-5).
    pub clf_lr: f64,
    /// Autoencoder batch size (paper: 256).
    pub ae_batch: usize,
    /// Classifier batch size (paper: 128).
    pub clf_batch: usize,
    /// Gradient-norm clip applied during both training phases; the inverse
    /// reconstruction penalty of Eq. 1 can produce extreme gradients when a
    /// labeled anomaly is momentarily well-reconstructed.
    pub grad_clip: f64,
    /// Include `L_OE` (Table III ablation `TargAD₋O` sets this false).
    pub use_oe: bool,
    /// Include `L_RE` (Table III ablation `TargAD₋R` sets this false).
    pub use_re: bool,
    /// Update candidate weights each epoch via Eq. 4 (false freezes the
    /// Eq. 5 initialization — the DESIGN.md §6 weight ablation).
    pub update_weights: bool,
    /// Use the vanilla outlier-exposure pseudo-label `1/(m+k)` everywhere
    /// instead of the paper's `(1/m, …, 1/m, 0, …, 0)` (pseudo-label
    /// ablation).
    pub vanilla_oe_labels: bool,
    /// Train the per-cluster autoencoders on parallel threads (the paper
    /// trains them in parallel).
    pub parallel_aes: bool,
    /// Train the classifier with plain SGD instead of Adam (optimizer
    /// ablation; the paper uses Adam everywhere).
    pub clf_sgd: bool,
}

impl TargAdConfig {
    /// The configuration of §IV-C of the paper.
    pub fn paper() -> Self {
        Self {
            k: None,
            elbow_range: (1, 8),
            alpha: 0.05,
            eta: 1.0,
            lambda1: 0.1,
            lambda2: 1.0,
            ae_hidden_fracs: vec![0.5, 0.25],
            clf_hidden: vec![64, 32],
            ae_epochs: 30,
            clf_epochs: 30,
            ae_lr: 1e-4,
            clf_lr: 1e-5,
            ae_batch: 256,
            clf_batch: 128,
            grad_clip: 5.0,
            use_oe: true,
            use_re: true,
            update_weights: true,
            vanilla_oe_labels: false,
            parallel_aes: true,
            clf_sgd: false,
        }
    }

    /// The default used by the experiment harness: identical to
    /// [`TargAdConfig::paper`] except for learning rates adapted to the
    /// synthetic benchmarks (the paper tuned its rates on the real
    /// datasets; our substitutes are smaller, so slightly larger rates
    /// reach the same converged regime within the same 30 epochs).
    pub fn default_tuned() -> Self {
        Self { ae_lr: 1e-3, clf_lr: 1e-3, ..Self::paper() }
    }

    /// A small/fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            k: Some(2),
            ae_hidden_fracs: vec![0.5],
            clf_hidden: vec![64, 32],
            ae_epochs: 15,
            clf_epochs: 30,
            ae_lr: 2e-3,
            clf_lr: 5e-3,
            ae_batch: 128,
            clf_batch: 128,
            ..Self::paper()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on non-positive rates/sizes or `alpha` outside `(0, 1)`.
    pub fn validate(&self) {
        assert!(self.alpha > 0.0 && self.alpha < 1.0, "alpha must be in (0,1), got {}", self.alpha);
        assert!(self.eta >= 0.0, "eta must be non-negative");
        assert!(self.lambda1 >= 0.0 && self.lambda2 >= 0.0, "lambdas must be non-negative");
        assert!(self.ae_lr > 0.0 && self.clf_lr > 0.0, "learning rates must be positive");
        assert!(self.ae_batch > 0 && self.clf_batch > 0, "batch sizes must be positive");
        assert!(self.ae_epochs > 0 && self.clf_epochs > 0, "epochs must be positive");
        if let Some(k) = self.k {
            assert!(k > 0, "k must be positive");
        }
        let (lo, hi) = self.elbow_range;
        assert!(lo >= 1 && lo <= hi, "invalid elbow range ({lo}, {hi})");
        assert!(
            self.ae_hidden_fracs.iter().all(|&f| f > 0.0 && f <= 1.0),
            "ae hidden fractions must be in (0, 1]"
        );
    }

    /// Concrete autoencoder layer dims for input dimensionality `d`.
    pub fn ae_dims(&self, d: usize) -> Vec<usize> {
        let mut dims = vec![d];
        for &f in &self.ae_hidden_fracs {
            let next = ((d as f64 * f).round() as usize).max(2);
            // Keep the network a strict bottleneck.
            let prev = *dims.last().expect("nonempty");
            dims.push(next.min(prev.saturating_sub(1).max(2)));
        }
        dims
    }
}

impl Default for TargAdConfig {
    fn default() -> Self {
        Self::default_tuned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4c() {
        let c = TargAdConfig::paper();
        assert_eq!(c.alpha, 0.05);
        assert_eq!(c.eta, 1.0);
        assert_eq!(c.lambda1, 0.1);
        assert_eq!(c.lambda2, 1.0);
        assert_eq!(c.ae_lr, 1e-4);
        assert_eq!(c.clf_lr, 1e-5);
        assert_eq!(c.ae_batch, 256);
        assert_eq!(c.clf_batch, 128);
        assert_eq!(c.ae_epochs, 30);
        assert_eq!(c.clf_epochs, 30);
        assert!(c.use_oe && c.use_re && c.update_weights);
        c.validate();
    }

    #[test]
    fn ae_dims_form_a_bottleneck() {
        let c = TargAdConfig::paper();
        assert_eq!(c.ae_dims(196), vec![196, 98, 49]);
        let dims = c.ae_dims(8);
        assert!(dims.windows(2).all(|w| w[1] < w[0] || w[1] == 2), "{dims:?}");
        // Tiny inputs never collapse below 2.
        assert!(c.ae_dims(3).iter().all(|&d| d >= 2));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn validate_rejects_bad_alpha() {
        let mut c = TargAdConfig::paper();
        c.alpha = 0.0;
        c.validate();
    }

    #[test]
    fn fast_config_is_valid() {
        TargAdConfig::fast().validate();
        TargAdConfig::default().validate();
    }
}
