//! TargAD hyper-parameters.

use crate::error::TargAdError;

/// Full hyper-parameter set for [`crate::TargAd`].
///
/// [`TargAdConfig::paper`] mirrors §IV-C of the paper;
/// [`TargAdConfig::fast`] shrinks the networks and epochs for tests,
/// examples, and quick experiments. The `use_*` flags drive the ablations
/// of Table III and the extension ablations listed in DESIGN.md §6.
#[derive(Clone, Debug)]
pub struct TargAdConfig {
    /// Number of k-means clusters `k`; `None` selects via the elbow method
    /// over [`TargAdConfig::elbow_range`] (the paper's procedure).
    pub k: Option<usize>,
    /// Candidate `k` range for the elbow method.
    pub elbow_range: (usize, usize),
    /// Candidate-selection threshold `α` (fraction, paper default 0.05):
    /// the top `α` of unlabeled data by reconstruction error becomes
    /// `D_U^A`.
    pub alpha: f64,
    /// Trade-off `η` of the inverse-reconstruction penalty in Eq. 1.
    pub eta: f64,
    /// Trade-off `λ₁` on `L_OE` in Eq. 8.
    pub lambda1: f64,
    /// Trade-off `λ₂` on `L_RE` in Eq. 8.
    pub lambda2: f64,
    /// Autoencoder hidden sizes as fractions of the input dimensionality,
    /// e.g. `[0.5, 0.25]` gives encoder `D → D/2 → D/4`.
    pub ae_hidden_fracs: Vec<f64>,
    /// Classifier hidden layer sizes (absolute).
    pub clf_hidden: Vec<usize>,
    /// Autoencoder training epochs (paper: 30).
    pub ae_epochs: usize,
    /// Classifier training epochs (paper: 30).
    pub clf_epochs: usize,
    /// Autoencoder Adam learning rate (paper: 1e-4).
    pub ae_lr: f64,
    /// Classifier Adam learning rate (paper: 1e-5).
    pub clf_lr: f64,
    /// Autoencoder batch size (paper: 256).
    pub ae_batch: usize,
    /// Classifier batch size (paper: 128).
    pub clf_batch: usize,
    /// Gradient-norm clip applied during both training phases; the inverse
    /// reconstruction penalty of Eq. 1 can produce extreme gradients when a
    /// labeled anomaly is momentarily well-reconstructed.
    pub grad_clip: f64,
    /// Include `L_OE` (Table III ablation `TargAD₋O` sets this false).
    pub use_oe: bool,
    /// Include `L_RE` (Table III ablation `TargAD₋R` sets this false).
    pub use_re: bool,
    /// Update candidate weights each epoch via Eq. 4 (false freezes the
    /// Eq. 5 initialization — the DESIGN.md §6 weight ablation).
    pub update_weights: bool,
    /// Use the vanilla outlier-exposure pseudo-label `1/(m+k)` everywhere
    /// instead of the paper's `(1/m, …, 1/m, 0, …, 0)` (pseudo-label
    /// ablation).
    pub vanilla_oe_labels: bool,
    /// Train the per-cluster autoencoders on parallel threads (the paper
    /// trains them in parallel).
    pub parallel_aes: bool,
    /// Train the classifier with plain SGD instead of Adam (optimizer
    /// ablation; the paper uses Adam everywhere).
    pub clf_sgd: bool,
}

impl TargAdConfig {
    /// The configuration of §IV-C of the paper.
    pub fn paper() -> Self {
        Self {
            k: None,
            elbow_range: (1, 8),
            alpha: 0.05,
            eta: 1.0,
            lambda1: 0.1,
            lambda2: 1.0,
            ae_hidden_fracs: vec![0.5, 0.25],
            clf_hidden: vec![64, 32],
            ae_epochs: 30,
            clf_epochs: 30,
            ae_lr: 1e-4,
            clf_lr: 1e-5,
            ae_batch: 256,
            clf_batch: 128,
            grad_clip: 5.0,
            use_oe: true,
            use_re: true,
            update_weights: true,
            vanilla_oe_labels: false,
            parallel_aes: true,
            clf_sgd: false,
        }
    }

    /// The default used by the experiment harness: identical to
    /// [`TargAdConfig::paper`] except for learning rates adapted to the
    /// synthetic benchmarks (the paper tuned its rates on the real
    /// datasets; our substitutes are smaller, so slightly larger rates
    /// reach the same converged regime within the same 30 epochs).
    pub fn default_tuned() -> Self {
        Self {
            ae_lr: 1e-3,
            clf_lr: 1e-3,
            ..Self::paper()
        }
    }

    /// A small/fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            k: Some(2),
            ae_hidden_fracs: vec![0.5],
            clf_hidden: vec![64, 32],
            ae_epochs: 15,
            clf_epochs: 30,
            ae_lr: 2e-3,
            clf_lr: 5e-3,
            ae_batch: 128,
            clf_batch: 128,
            ..Self::paper()
        }
    }

    /// A builder pre-filled with [`TargAdConfig::default_tuned`], whose
    /// [`TargAdConfigBuilder::build`] validates every field and returns a
    /// typed [`TargAdError::InvalidConfig`] instead of panicking.
    ///
    /// ```
    /// use targad_core::TargAdConfig;
    /// let config = TargAdConfig::builder().alpha(0.05).lambda1(0.1).build().unwrap();
    /// assert_eq!(config.alpha, 0.05);
    /// assert!(TargAdConfig::builder().alpha(2.0).build().is_err());
    /// ```
    pub fn builder() -> TargAdConfigBuilder {
        TargAdConfigBuilder {
            config: Self::default_tuned(),
        }
    }

    /// Validates internal consistency, returning the first violated
    /// constraint as a typed [`TargAdError::InvalidConfig`].
    pub fn try_validate(&self) -> Result<(), TargAdError> {
        fn bad(field: &'static str, reason: String) -> Result<(), TargAdError> {
            Err(TargAdError::InvalidConfig { field, reason })
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return bad("alpha", format!("must be in (0, 1), got {}", self.alpha));
        }
        if self.eta.is_nan() || self.eta < 0.0 {
            return bad("eta", format!("must be non-negative, got {}", self.eta));
        }
        if self.lambda1.is_nan() || self.lambda1 < 0.0 {
            return bad(
                "lambda1",
                format!("must be non-negative, got {}", self.lambda1),
            );
        }
        if self.lambda2.is_nan() || self.lambda2 < 0.0 {
            return bad(
                "lambda2",
                format!("must be non-negative, got {}", self.lambda2),
            );
        }
        if self.ae_lr.is_nan() || self.ae_lr <= 0.0 {
            return bad("ae_lr", format!("must be positive, got {}", self.ae_lr));
        }
        if self.clf_lr.is_nan() || self.clf_lr <= 0.0 {
            return bad("clf_lr", format!("must be positive, got {}", self.clf_lr));
        }
        if self.ae_batch == 0 {
            return bad("ae_batch", "must be positive".into());
        }
        if self.clf_batch == 0 {
            return bad("clf_batch", "must be positive".into());
        }
        if self.ae_epochs == 0 {
            return bad("ae_epochs", "must be positive".into());
        }
        if self.clf_epochs == 0 {
            return bad("clf_epochs", "must be positive".into());
        }
        if self.k == Some(0) {
            return bad("k", "must be positive when fixed".into());
        }
        let (lo, hi) = self.elbow_range;
        if lo < 1 || lo > hi {
            return bad("elbow_range", format!("invalid range ({lo}, {hi})"));
        }
        if !self.ae_hidden_fracs.iter().all(|&f| f > 0.0 && f <= 1.0) {
            return bad(
                "ae_hidden_fracs",
                format!(
                    "fractions must be in (0, 1], got {:?}",
                    self.ae_hidden_fracs
                ),
            );
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on non-positive rates/sizes or `alpha` outside `(0, 1)`.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_validate`, which returns a typed error"
    )]
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Concrete autoencoder layer dims for input dimensionality `d`.
    pub fn ae_dims(&self, d: usize) -> Vec<usize> {
        let mut dims = vec![d];
        for &f in &self.ae_hidden_fracs {
            let next = ((d as f64 * f).round() as usize).max(2);
            // Keep the network a strict bottleneck.
            let prev = *dims.last().expect("nonempty");
            dims.push(next.min(prev.saturating_sub(1).max(2)));
        }
        dims
    }
}

impl Default for TargAdConfig {
    fn default() -> Self {
        Self::default_tuned()
    }
}

/// Validating builder for [`TargAdConfig`], started via
/// [`TargAdConfig::builder`].
///
/// Setters accept any value; all constraints are checked once in
/// [`TargAdConfigBuilder::build`], which returns
/// [`TargAdError::InvalidConfig`] naming the offending field.
#[derive(Clone, Debug)]
pub struct TargAdConfigBuilder {
    config: TargAdConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $field(mut self, value: $ty) -> Self {
            self.config.$field = value;
            self
        }
    )+};
}

impl TargAdConfigBuilder {
    builder_setters! {
        /// Fixed cluster count `k` (`None` = elbow method).
        k: Option<usize>,
        /// Candidate `k` range for the elbow method.
        elbow_range: (usize, usize),
        /// Candidate-selection threshold `α` in `(0, 1)`.
        alpha: f64,
        /// Trade-off `η` of the inverse-reconstruction penalty (Eq. 1).
        eta: f64,
        /// Trade-off `λ₁` on `L_OE` (Eq. 8).
        lambda1: f64,
        /// Trade-off `λ₂` on `L_RE` (Eq. 8).
        lambda2: f64,
        /// Autoencoder hidden sizes as fractions of the input dim.
        ae_hidden_fracs: Vec<f64>,
        /// Classifier hidden layer sizes (absolute).
        clf_hidden: Vec<usize>,
        /// Autoencoder training epochs.
        ae_epochs: usize,
        /// Classifier training epochs.
        clf_epochs: usize,
        /// Autoencoder Adam learning rate.
        ae_lr: f64,
        /// Classifier Adam learning rate.
        clf_lr: f64,
        /// Autoencoder batch size.
        ae_batch: usize,
        /// Classifier batch size.
        clf_batch: usize,
        /// Gradient-norm clip for both training phases.
        grad_clip: f64,
        /// Include `L_OE` (ablation `TargAD₋O` sets this false).
        use_oe: bool,
        /// Include `L_RE` (ablation `TargAD₋R` sets this false).
        use_re: bool,
        /// Update candidate weights each epoch via Eq. 4.
        update_weights: bool,
        /// Use the vanilla outlier-exposure pseudo-label `1/(m+k)`.
        vanilla_oe_labels: bool,
        /// Train per-cluster autoencoders on parallel threads.
        parallel_aes: bool,
        /// Train the classifier with SGD instead of Adam.
        clf_sgd: bool,
    }

    /// Starts from an existing configuration instead of the defaults.
    pub fn from_config(config: TargAdConfig) -> Self {
        Self { config }
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`TargAdError::InvalidConfig`] naming the first field that violates
    /// its constraint.
    pub fn build(self) -> Result<TargAdConfig, TargAdError> {
        self.config.try_validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4c() {
        let c = TargAdConfig::paper();
        assert_eq!(c.alpha, 0.05);
        assert_eq!(c.eta, 1.0);
        assert_eq!(c.lambda1, 0.1);
        assert_eq!(c.lambda2, 1.0);
        assert_eq!(c.ae_lr, 1e-4);
        assert_eq!(c.clf_lr, 1e-5);
        assert_eq!(c.ae_batch, 256);
        assert_eq!(c.clf_batch, 128);
        assert_eq!(c.ae_epochs, 30);
        assert_eq!(c.clf_epochs, 30);
        assert!(c.use_oe && c.use_re && c.update_weights);
        c.try_validate().unwrap();
    }

    #[test]
    fn ae_dims_form_a_bottleneck() {
        let c = TargAdConfig::paper();
        assert_eq!(c.ae_dims(196), vec![196, 98, 49]);
        let dims = c.ae_dims(8);
        assert!(
            dims.windows(2).all(|w| w[1] < w[0] || w[1] == 2),
            "{dims:?}"
        );
        // Tiny inputs never collapse below 2.
        assert!(c.ae_dims(3).iter().all(|&d| d >= 2));
    }

    #[test]
    fn try_validate_rejects_bad_alpha_with_typed_error() {
        let mut c = TargAdConfig::paper();
        c.alpha = 0.0;
        assert!(matches!(
            c.try_validate(),
            Err(TargAdError::InvalidConfig { field: "alpha", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    #[allow(deprecated)]
    fn deprecated_validate_still_panics() {
        let mut c = TargAdConfig::paper();
        c.alpha = 0.0;
        c.validate();
    }

    #[test]
    fn fast_config_is_valid() {
        TargAdConfig::fast().try_validate().unwrap();
        TargAdConfig::default().try_validate().unwrap();
    }

    #[test]
    fn builder_sets_fields_and_validates() {
        let c = TargAdConfig::builder()
            .alpha(0.1)
            .eta(2.0)
            .lambda1(0.5)
            .k(Some(3))
            .clf_sgd(true)
            .build()
            .unwrap();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.eta, 2.0);
        assert_eq!(c.lambda1, 0.5);
        assert_eq!(c.k, Some(3));
        assert!(c.clf_sgd);
    }

    #[test]
    fn builder_surfaces_each_constraint_as_a_typed_error() {
        let field_of = |r: Result<TargAdConfig, TargAdError>| match r {
            Err(TargAdError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert_eq!(
            field_of(TargAdConfig::builder().alpha(1.0).build()),
            "alpha"
        );
        assert_eq!(field_of(TargAdConfig::builder().eta(-0.1).build()), "eta");
        assert_eq!(
            field_of(TargAdConfig::builder().lambda1(-1.0).build()),
            "lambda1"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().lambda2(-1.0).build()),
            "lambda2"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().ae_lr(0.0).build()),
            "ae_lr"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().clf_lr(-1.0).build()),
            "clf_lr"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().ae_batch(0).build()),
            "ae_batch"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().clf_batch(0).build()),
            "clf_batch"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().ae_epochs(0).build()),
            "ae_epochs"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().clf_epochs(0).build()),
            "clf_epochs"
        );
        assert_eq!(field_of(TargAdConfig::builder().k(Some(0)).build()), "k");
        assert_eq!(
            field_of(TargAdConfig::builder().elbow_range((3, 2)).build()),
            "elbow_range"
        );
        assert_eq!(
            field_of(TargAdConfig::builder().ae_hidden_fracs(vec![1.5]).build()),
            "ae_hidden_fracs"
        );
    }

    #[test]
    fn builder_from_config_preserves_the_seed_configuration() {
        let c = TargAdConfigBuilder::from_config(TargAdConfig::fast())
            .clf_epochs(7)
            .build()
            .unwrap();
        assert_eq!(c.k, Some(2));
        assert_eq!(c.clf_epochs, 7);
    }
}
