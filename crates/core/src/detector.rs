//! The unified [`Detector`] interface shared by TargAD and every baseline.
//!
//! Historically this trait lived in `targad-baselines` and the experiment
//! harness special-cased TargAD through a separate code path. It now lives
//! here so that [`crate::TargAd`] implements it too: one trait covers all
//! twelve models, and the harness evaluates every `(model, seed)` cell
//! through the same entry point. `targad-baselines` re-exports these types
//! from their old paths.

use targad_data::{Dataset, Truth};
use targad_linalg::Matrix;

use crate::error::TargAdError;
use crate::ood::OodStrategy;
use crate::verdict::{calibrate_score_threshold, Calibration, ScoreOutput, VerdictClass};

/// The training data as detectors see it: labeled target anomalies plus
/// the unlabeled pool.
///
/// Baselines treat the labeled rows as one undifferentiated "anomaly"
/// class; TargAD additionally uses [`TrainView::labeled_classes`] to keep
/// the `m` target classes apart, and — when present —
/// [`TrainView::unlabeled_truth`] to record training telemetry (Fig. 5).
/// Truth never influences the fitted model; it is diagnostics only.
#[derive(Clone, Debug)]
pub struct TrainView {
    /// Labeled anomalies, `r x D`.
    pub labeled: Matrix,
    /// Target class of each labeled row, in `0..m` (all zeros when the
    /// class structure is unknown).
    pub labeled_classes: Vec<usize>,
    /// Unlabeled instances, `N x D`.
    pub unlabeled: Matrix,
    /// Ground truth of each unlabeled row, when known. Used only for
    /// telemetry ([`crate::TrainHistory`]); `None` disables it.
    pub unlabeled_truth: Option<Vec<Truth>>,
}

impl TrainView {
    /// Extracts the detector view from a [`Dataset`], carrying the target
    /// classes and the unlabeled ground truth (telemetry).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let (labeled, labeled_classes) = dataset.labeled_view();
        let (unlabeled, u_idx) = dataset.unlabeled_view();
        let unlabeled_truth = Some(u_idx.iter().map(|&i| dataset.truth[i]).collect());
        Self {
            labeled,
            labeled_classes,
            unlabeled,
            unlabeled_truth,
        }
    }

    /// A view from bare matrices: single labeled class, no telemetry.
    pub fn from_matrices(labeled: Matrix, unlabeled: Matrix) -> Self {
        let labeled_classes = vec![0; labeled.rows()];
        Self {
            labeled,
            labeled_classes,
            unlabeled,
            unlabeled_truth: None,
        }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.unlabeled.cols()
    }
}

/// A fitted or fittable anomaly detector. Scores are "higher = more
/// anomalous".
pub trait Detector {
    /// Display name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Fits the detector; deterministic given `seed`.
    ///
    /// # Errors
    /// Detectors with data requirements (e.g. TargAD needs labeled
    /// anomalies and enough unlabeled rows) return a [`TargAdError`];
    /// baselines without such requirements always return `Ok`.
    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError>;

    /// Scores each row of `x`.
    ///
    /// # Panics
    /// Implementations panic when called before a successful `fit`.
    fn score(&self, x: &Matrix) -> Vec<f64>;

    /// Fallible variant of [`Detector::score`] — the entry point new code
    /// should use. The default forwards to `score` (whose contract is to
    /// panic before a successful fit); detectors with richer error
    /// reporting (TargAD) override it to return typed errors instead.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] / [`TargAdError::DimMismatch`] on
    /// overriding detectors.
    fn try_score(&self, x: &Matrix) -> Result<Vec<f64>, TargAdError> {
        Ok(self.score(x))
    }

    /// Calibrates the decision thresholds this detector needs to turn
    /// scores into [`crate::Verdict`]s, on validation data with three-way
    /// ground truth (0 normal / 1 target / 2 non-target).
    ///
    /// The default — shared by every scalar baseline — sweeps a scalar
    /// score threshold maximizing the two-way target-vs-rest macro-F1;
    /// `strategy` is recorded but does not influence the default's
    /// decisions (a scalar scorer has no OOD head). TargAD overrides this
    /// to additionally calibrate the strategy's §III-C `tau`.
    ///
    /// # Errors
    /// Same contract as [`Detector::try_score`].
    fn calibrate(
        &self,
        val_x: &Matrix,
        val_truth3: &[usize],
        strategy: OodStrategy,
    ) -> Result<Calibration, TargAdError> {
        let scores = self.try_score(val_x)?;
        let score_threshold = calibrate_score_threshold(&scores, val_truth3);
        Ok(Calibration {
            strategy,
            tau: score_threshold,
            score_threshold,
        })
    }

    /// Scores each row of `x` and attaches a decision per row — the
    /// verdict-first surface every detector shares.
    ///
    /// The default gives all scalar baselines a *two-way* verdict for
    /// free: `Target` when the anomaly score clears the calibrated
    /// [`Calibration::score_threshold`], `Normal` otherwise (a scalar
    /// scorer cannot tell non-target anomalies apart from target ones).
    /// TargAD overrides this with the full three-way §III-C rule.
    ///
    /// # Errors
    /// Same contract as [`Detector::try_score`].
    fn try_verdicts(
        &self,
        x: &Matrix,
        calibration: &Calibration,
    ) -> Result<ScoreOutput, TargAdError> {
        let scores = self.try_score(x)?;
        let classes = scores
            .iter()
            .map(|&s| {
                if s >= calibration.score_threshold {
                    VerdictClass::Target
                } else {
                    VerdictClass::Normal
                }
            })
            .collect();
        Ok(ScoreOutput::new(
            scores,
            classes,
            calibration.strategy,
            calibration.score_threshold,
        ))
    }

    /// Like [`Detector::fit`], reporting anomaly scores on `probe` after
    /// each training epoch (used for the Fig. 3b convergence plot).
    /// Non-iterative detectors report once after fitting.
    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        self.fit(train, seed)?;
        trace(0, self.score(probe));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;

    #[test]
    fn from_dataset_carries_classes_and_truth() {
        let bundle = GeneratorSpec::quick_demo().generate(13);
        let view = TrainView::from_dataset(&bundle.train);
        assert_eq!(view.labeled.rows(), view.labeled_classes.len());
        let truth = view.unlabeled_truth.as_ref().expect("truth carried");
        assert_eq!(truth.len(), view.unlabeled.rows());
        assert_eq!(view.dims(), bundle.train.dims());
    }

    #[test]
    fn from_matrices_defaults_to_one_class_and_no_telemetry() {
        let view = TrainView::from_matrices(Matrix::ones(3, 4), Matrix::zeros(10, 4));
        assert_eq!(view.labeled_classes, vec![0; 3]);
        assert!(view.unlabeled_truth.is_none());
        assert_eq!(view.dims(), 4);
    }
}
