//! Error type for TargAD training and inference.

use std::fmt;

/// Failures surfaced by [`crate::TargAd`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargAdError {
    /// A hyper-parameter failed validation (see
    /// [`crate::TargAdConfig::try_validate`]).
    InvalidConfig {
        /// The offending field, e.g. `"alpha"`.
        field: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// `fit` requires at least one labeled target anomaly.
    NoLabeledAnomalies,
    /// Too little unlabeled data to run candidate selection.
    TooFewUnlabeled {
        /// Rows available.
        have: usize,
        /// Rows required.
        need: usize,
    },
    /// Inference was requested before a successful `fit`.
    NotFitted,
    /// A verdict was requested under a strategy whose decision threshold
    /// has not been calibrated (see [`crate::TargAd::calibrate_thresholds`]).
    NotCalibrated {
        /// The uncalibrated strategy.
        strategy: crate::OodStrategy,
    },
    /// Feature dimensionality differs from the fitted model's.
    DimMismatch {
        /// Dimensionality the model was trained with.
        expected: usize,
        /// Dimensionality of the offending input.
        got: usize,
    },
}

impl fmt::Display for TargAdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargAdError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: `{field}` {reason}")
            }
            TargAdError::NoLabeledAnomalies => {
                write!(
                    f,
                    "training set contains no labeled target anomalies (D_L is empty)"
                )
            }
            TargAdError::TooFewUnlabeled { have, need } => {
                write!(
                    f,
                    "too few unlabeled instances: have {have}, need at least {need}"
                )
            }
            TargAdError::NotFitted => write!(f, "model is not fitted; call fit() first"),
            TargAdError::NotCalibrated { strategy } => {
                write!(
                    f,
                    "no calibrated threshold for OOD strategy {}; call calibrate_thresholds() first",
                    strategy.name()
                )
            }
            TargAdError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimensionality mismatch: model expects {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for TargAdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let bad = TargAdError::InvalidConfig {
            field: "alpha",
            reason: "must be in (0, 1), got 2".into(),
        };
        assert!(bad.to_string().contains("alpha"));
        assert!(TargAdError::NoLabeledAnomalies.to_string().contains("D_L"));
        assert!(TargAdError::TooFewUnlabeled { have: 3, need: 10 }
            .to_string()
            .contains("3"));
        assert!(TargAdError::NotFitted.to_string().contains("fit"));
        assert!(TargAdError::DimMismatch {
            expected: 4,
            got: 7
        }
        .to_string()
        .contains("7"));
    }
}
