//! **TargAD** — target-class anomaly detection (ICDE 2024).
//!
//! Implements the full model of *"A Robust Prioritized Anomaly Detection
//! when Not All Anomalies are of Primary Interest"*:
//!
//! 1. **Candidate selection** ([`candidate`]): k-means over the unlabeled
//!    data, one autoencoder per cluster trained with the DeepSAD-modified
//!    loss (Eq. 1), reconstruction-error ranking (Eq. 2), and the top-`α%`
//!    split into non-target anomaly candidates `D_U^A` vs normal candidates
//!    `D_U^N`.
//! 2. **Detection** ([`model`]): an MLP classifier over `m + k` outputs
//!    trained with `L_clf = L_CE + λ₁·L_OE + λ₂·L_RE` (Eqs. 3, 6, 7, 8),
//!    including the pseudo-label design and the per-instance
//!    weight-updating mechanism (Eqs. 4, 5).
//! 3. **Inference**: the target-anomaly score `S^tar` (Eq. 9), the
//!    three-way normal / target / non-target classification of §III-C, and
//!    the MSP / Energy-Score / Energy-Discrepancy OOD strategies
//!    ([`ood`]) evaluated in Table IV.
//!
//! Training telemetry (loss curve, per-epoch candidate weights by true
//! instance type) is captured in [`TrainHistory`] to regenerate Figs. 3
//! and 5.
//!
//! # Example
//!
//! ```
//! use targad_core::{TargAd, TargAdConfig};
//! use targad_data::GeneratorSpec;
//! use targad_metrics::average_precision;
//!
//! let bundle = GeneratorSpec::quick_demo().generate(7);
//! let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
//! model.fit(&bundle.train, 7).expect("fit");
//! let scores = model.try_score_matrix(&bundle.test.features).expect("fitted");
//! let ap = average_precision(&scores, &bundle.test.target_labels());
//! assert!(ap > 0.3, "AP = {ap}");
//! ```

pub mod candidate;
pub mod config;
pub mod detector;
pub mod error;
pub mod model;
pub mod ood;
pub mod snapshot;
pub mod verdict;

pub use candidate::{CandidateSelection, ClusterAutoEncoder};
pub use config::{TargAdConfig, TargAdConfigBuilder};
pub use detector::{Detector, TrainView};
pub use error::TargAdError;
pub use model::{CandidateComposition, Classifier, TargAd, TrainHistory, WeightMeans};
pub use ood::OodStrategy;
pub use targad_nn::EnginePrecision;
pub use targad_obs::{NullObserver, TrainObserver};
pub use targad_runtime::Runtime;
pub use verdict::{Calibration, ScoreOutput, ThresholdCache, Verdict, VerdictClass, VerdictCounts};
