//! The TargAD detection component (§III-B2/B3, Lines 8–17 of Algorithm 1)
//! and the public model API.

use targad_autograd::{Tape, Var, VarStore};
use targad_data::Dataset;
use targad_linalg::{rng as lrng, stats, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{
    shuffled_batches, Activation, Adam, EngineCell, EnginePrecision, F32Plan, Mlp, Optimizer,
    Parts, Sgd, ShardedStep,
};
use targad_obs::{
    AeEpochEvent, EpochEvent, FitEndEvent, FitStartEvent, LossDecomposition, NullObserver,
    SelectionEvent, TrainObserver, WeightSummary,
};
use targad_runtime::Runtime;

use crate::candidate::CandidateSelection;
use crate::config::TargAdConfig;
use crate::detector::{Detector, TrainView};
use crate::error::TargAdError;
use crate::ood::{calibrate_tau, verdict_of_row, verdict_of_row_f32, OodStrategy};
use crate::verdict::{Calibration, ScoreOutput, ThresholdCache, VerdictClass};

/// Index of the `L_CE` partial in a step's [`Parts`] array.
const PART_CE: usize = 0;
/// Index of the (unscaled) `L_OE` partial.
const PART_OE: usize = 1;
/// Index of the (unscaled) `L_RE` partial.
const PART_RE: usize = 2;

/// The trained `m + k`-way classifier `f`.
///
/// The first `m` output dimensions correspond to the target anomaly
/// classes, the last `k` to the hidden normal groups discovered by k-means.
pub struct Classifier {
    store: VarStore,
    mlp: Mlp,
    m: usize,
    k: usize,
    /// Pooled inference engine for the batched scoring paths. Held on the
    /// classifier so repeated scoring — per-epoch probe traces, suite-table
    /// regeneration — reuses one warm buffer pool across calls.
    engine: EngineCell,
    /// Lazily built f32 cast of the fitted weights (packed for the SIMD
    /// micro-kernels). Built at most once per classifier instance — eagerly
    /// via [`Classifier::warm_f32`] (the serve registry does this at
    /// insert/hot-swap) or on the first f32 scoring call.
    f32_plan: std::sync::OnceLock<F32Plan>,
}

impl Clone for Classifier {
    /// Clones the network; the clone gets its own fresh (cold) engine
    /// pool and unbuilt f32 plan, since pooled scratch and cast weights
    /// are per-instance derived state, not part of the model.
    fn clone(&self) -> Self {
        Self {
            store: self.store.clone(),
            mlp: self.mlp.clone(),
            m: self.m,
            k: self.k,
            engine: EngineCell::new(),
            f32_plan: std::sync::OnceLock::new(),
        }
    }
}

impl Classifier {
    /// Number of target anomaly classes `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of normal groups `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    /// Raw logits, one row per instance.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        self.mlp.eval(&self.store, x)
    }

    /// [`Classifier::logits`] executed on `rt`: the batched forward pass
    /// parallelizes over rows, bit-identical to the serial path at any
    /// worker count.
    pub fn logits_rt(&self, x: &Matrix, rt: &Runtime) -> Matrix {
        self.mlp.eval_rt(&self.store, x, rt)
    }

    /// Softmax probabilities over the `m + k` outputs.
    pub fn probabilities(&self, x: &Matrix) -> Matrix {
        let mut p = self.logits(x);
        p.softmax_rows_inplace();
        p
    }

    /// [`Classifier::probabilities`] executed on `rt`.
    pub fn probabilities_rt(&self, x: &Matrix, rt: &Runtime) -> Matrix {
        let mut p = self.logits_rt(x, rt);
        p.softmax_rows_inplace();
        p
    }

    /// Target-anomaly scores (Eq. 9) via the reference (unfused) forward
    /// pass: `S^tar(x) = max_{j ≤ m} p_j(x)`. Kept as the implementation
    /// the engine-backed [`Classifier::target_scores_rt`] is exact-equality
    /// tested against.
    pub fn target_scores(&self, x: &Matrix) -> Vec<f64> {
        self.target_scores_from(self.probabilities(x))
    }

    /// [`Classifier::target_scores`] through the pooled `ScoreEngine` on
    /// `rt`: fused layer pipeline, zero steady-state allocations, and a
    /// per-row softmax-max finish. Bit-identical to the serial reference at
    /// any worker count: the engine reproduces the exact logit chains, and
    /// `max_j e_j / S` equals `max_j (e_j / S)` bitwise because dividing by
    /// the shared positive row sum is monotone and the winning element's
    /// quotient is the same division either way.
    pub fn target_scores_rt(&self, x: &Matrix, rt: &Runtime) -> Vec<f64> {
        let m = self.m;
        // The reference row chain: max over all logits, exponentials (and
        // their sum) accumulated in ascending column order, then the best
        // target-class exponential normalized once.
        let finish = move |_r: usize, z: &[f64]| {
            let mx = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            let mut best = f64::NEG_INFINITY;
            for (j, &v) in z.iter().enumerate() {
                let e = (v - mx).exp();
                sum += e;
                if j < m {
                    best = best.max(e);
                }
            }
            best / sum
        };
        self.engine
            .with(|e| e.score(&[(&self.mlp, &self.store)], x, rt, finish))
    }

    /// The fitted weights cast and packed for the f32 micro-kernels, built
    /// on first use and cached for this classifier instance.
    fn f32_plan(&self) -> &F32Plan {
        self.f32_plan
            .get_or_init(|| F32Plan::from_stack(&[(&self.mlp, &self.store)]))
    }

    /// Eagerly builds the f32 cast plan (a no-op when already built). The
    /// serve registry calls this at model insert and hot-swap so the first
    /// f32-precision batch after a swap does not pay the cast+pack cost.
    pub fn warm_f32(&self) {
        self.f32_plan();
    }

    /// [`Classifier::target_scores_rt`] under an explicit engine
    /// precision. [`EnginePrecision::F64`] is the bit-exact oracle;
    /// [`EnginePrecision::F32`] runs the SIMD micro-kernel path with the
    /// same per-row softmax-max finish evaluated in f32 and widened at the
    /// end — ranking fidelity vs the oracle is tolerance-tested in
    /// `targad-bench`.
    pub fn target_scores_rt_prec(
        &self,
        x: &Matrix,
        rt: &Runtime,
        precision: EnginePrecision,
    ) -> Vec<f64> {
        match precision {
            EnginePrecision::F64 => self.target_scores_rt(x, rt),
            EnginePrecision::F32 => {
                let m = self.m;
                let finish = move |_r: usize, z: &[f32]| {
                    let mx = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0f32;
                    let mut best = f32::NEG_INFINITY;
                    for (j, &v) in z.iter().enumerate() {
                        let e = (v - mx).exp();
                        sum += e;
                        if j < m {
                            best = best.max(e);
                        }
                    }
                    f64::from(best / sum)
                };
                let plan = self.f32_plan();
                self.engine.with(|e| e.score_f32(plan, x, rt, finish))
            }
        }
    }

    /// Eq. 9 scores *and* three-way §III-C classes for each row of `x`,
    /// via the reference (unfused) forward pass. This is the Table IV
    /// decision path; [`Classifier::verdicts_rt`] is the engine-backed
    /// variant that is exact-equality tested against it.
    pub fn verdicts(&self, x: &Matrix, strategy: OodStrategy, tau: f64) -> ScoreOutput {
        let logits = self.logits(x);
        let mut scores = Vec::with_capacity(logits.rows());
        let mut classes = Vec::with_capacity(logits.rows());
        for r in 0..logits.rows() {
            let (s, c) = verdict_of_row(logits.row(r), self.m, self.k, strategy, tau);
            scores.push(s);
            classes.push(c);
        }
        ScoreOutput::new(scores, classes, strategy, tau)
    }

    /// [`Classifier::verdicts`] through the pooled `ScoreEngine` on `rt`:
    /// one fused forward pass produces both the Eq. 9 score and the
    /// three-way class per row. Bit-identical to the reference at any
    /// worker count — the engine reproduces the exact logit chains and the
    /// per-row decision kernel is shared verbatim with the reference path.
    pub fn verdicts_rt(
        &self,
        x: &Matrix,
        rt: &Runtime,
        strategy: OodStrategy,
        tau: f64,
    ) -> ScoreOutput {
        let pairs = self.verdicts_rt_with(x, rt, |_| (strategy, tau));
        let mut scores = Vec::with_capacity(pairs.len());
        let mut classes = Vec::with_capacity(pairs.len());
        for (s, c) in pairs {
            scores.push(s);
            classes.push(c);
        }
        ScoreOutput::new(scores, classes, strategy, tau)
    }

    /// Engine-backed verdicts with a *per-row* decision rule: row `r` is
    /// decided under `select(r) = (strategy, tau)`. This is the serving
    /// micro-batcher's entry point — one coalesced batch can carry
    /// requests that each selected a different OOD strategy, and grouping
    /// them would forfeit the fused-batch advantage the batcher exists to
    /// amortize.
    ///
    /// Per-row results are independent of batch composition (the forward
    /// pass is row-wise and the decision kernel is per-row), so a row
    /// scored in any coalesced batch is bit-identical to the same row
    /// scored alone.
    pub fn verdicts_rt_with<F>(
        &self,
        x: &Matrix,
        rt: &Runtime,
        select: F,
    ) -> Vec<(f64, VerdictClass)>
    where
        F: Fn(usize) -> (OodStrategy, f64) + Sync,
    {
        let m = self.m;
        let k = self.k;
        let finish = move |r: usize, z: &[f64]| {
            let (strategy, tau) = select(r);
            let (score, class) = verdict_of_row(z, m, k, strategy, tau);
            // The class rides the engine's second f64 slot; codes 0/1/2 are
            // exactly representable, so the round-trip is lossless.
            (score, class.code() as f64)
        };
        self.engine
            .with(|e| e.score_pairs(&[(&self.mlp, &self.store)], x, rt, finish))
            .into_iter()
            .map(|(s, c)| {
                let class = VerdictClass::from_code(c as usize).expect("engine class code");
                (s, class)
            })
            .collect()
    }

    /// [`Classifier::verdicts_rt_with`] under an explicit engine precision
    /// — the serving batcher's entry point once a `ServeConfig` opts into
    /// f32 scoring. The f32 arm runs the packed SIMD forward pass and the
    /// single-precision twin of the §III-C decision kernel; thresholds stay
    /// the f64-calibrated ones (scores widen before the comparison).
    pub fn verdicts_rt_with_prec<F>(
        &self,
        x: &Matrix,
        rt: &Runtime,
        precision: EnginePrecision,
        select: F,
    ) -> Vec<(f64, VerdictClass)>
    where
        F: Fn(usize) -> (OodStrategy, f64) + Sync,
    {
        match precision {
            EnginePrecision::F64 => self.verdicts_rt_with(x, rt, select),
            EnginePrecision::F32 => {
                let m = self.m;
                let k = self.k;
                let finish = move |r: usize, z: &[f32]| {
                    let (strategy, tau) = select(r);
                    let (score, class) = verdict_of_row_f32(z, m, k, strategy, tau);
                    (score, class.code() as f64)
                };
                let plan = self.f32_plan();
                self.engine
                    .with(|e| e.score_pairs_f32(plan, x, rt, finish))
                    .into_iter()
                    .map(|(s, c)| {
                        let class = VerdictClass::from_code(c as usize).expect("engine class code");
                        (s, class)
                    })
                    .collect()
            }
        }
    }

    fn target_scores_from(&self, p: Matrix) -> Vec<f64> {
        (0..p.rows())
            .map(|r| {
                p.row(r)[..self.m]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// §III-C normality rule: an instance is normal iff the probability
    /// mass on the last `k` dimensions exceeds `k / (m + k)`.
    pub fn is_normal_row(&self, prob_row: &[f64]) -> bool {
        let mass: f64 = prob_row[self.m..].iter().sum();
        mass > self.k as f64 / (self.m + self.k) as f64
    }

    /// The `[in, h1, …, m + k]` layer dimensions (for persistence).
    pub fn layer_dims(&self) -> Vec<usize> {
        self.mlp.dims()
    }

    /// All parameter matrices in layer order: `w1, b1, w2, b2, …`.
    pub fn parameter_matrices(&self) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(2 * self.mlp.num_layers());
        for layer in self.mlp.layers() {
            let (w, b) = layer.params();
            out.push(self.store.value(w).clone());
            out.push(self.store.value(b).clone());
        }
        out
    }

    /// Builds a classifier directly over fitted parameter matrices in
    /// layer order `w1, b1, w2, b2, …` — the model-store load path.
    ///
    /// Unlike rebuilding an initialized skeleton and overwriting its
    /// weights, this never allocates parameter storage that is immediately
    /// thrown away, and the given matrices are registered as-is: matrices
    /// borrowing an `mmap`ed
    /// snapshot (see `targad_linalg::Matrix::from_shared`) stay borrowed,
    /// so the rebuilt classifier scores with zero weight-byte copies.
    pub fn from_parameters(matrices: Vec<Matrix>, m: usize, k: usize) -> Result<Self, String> {
        if matrices.is_empty() || matrices.len() % 2 != 0 {
            return Err(format!(
                "expected a non-empty even number of matrices (w, b per layer), got {}",
                matrices.len()
            ));
        }
        let out_dim = matrices[matrices.len() - 1].cols();
        if m + k != out_dim {
            return Err(format!(
                "m + k = {} does not match the network's {out_dim} outputs",
                m + k
            ));
        }
        let mut pairs: Vec<(Matrix, Matrix)> = Vec::with_capacity(matrices.len() / 2);
        let mut it = matrices.into_iter();
        while let (Some(w), Some(b)) = (it.next(), it.next()) {
            if b.rows() != 1 || b.cols() != w.cols() {
                return Err(format!(
                    "layer {}: bias shape {:?} does not match weights {:?}",
                    pairs.len(),
                    b.shape(),
                    w.shape()
                ));
            }
            if let Some((prev_w, _)) = pairs.last() {
                let prev_out = prev_w.cols();
                if w.rows() != prev_out {
                    return Err(format!(
                        "layer {}: input dim {} does not chain from previous output {prev_out}",
                        pairs.len(),
                        w.rows()
                    ));
                }
            }
            pairs.push((w, b));
        }
        let mut store = VarStore::new();
        let mlp = Mlp::from_params(&mut store, pairs, Activation::Relu, Activation::None);
        Ok(Self {
            store,
            mlp,
            m,
            k,
            engine: EngineCell::new(),
            f32_plan: std::sync::OnceLock::new(),
        })
    }

    /// Heap bytes exclusively owned by the parameter matrices: the f64
    /// element storage for owned weights, `0` contribution from matrices
    /// borrowing a shared buffer (their bytes are accounted by the
    /// mapping's owner). The residency cost the serve LRU charges per
    /// tenant, together with [`Classifier::f32_plan_bytes`].
    pub fn parameter_bytes(&self) -> usize {
        self.mlp
            .layers()
            .iter()
            .flat_map(|l| {
                let (w, b) = l.params();
                [self.store.value(w), self.store.value(b)]
            })
            .map(Matrix::owned_bytes)
            .sum()
    }

    /// Bytes held by the cached f32 cast plan (`0` until built).
    pub fn f32_plan_bytes(&self) -> usize {
        self.f32_plan.get().map_or(0, F32Plan::bytes)
    }

    /// Whether any parameter matrix borrows shared (e.g. `mmap`ed)
    /// storage rather than owning its elements.
    pub fn has_borrowed_parameters(&self) -> bool {
        self.mlp.layers().iter().any(|l| {
            let (w, b) = l.params();
            self.store.value(w).is_borrowed() || self.store.value(b).is_borrowed()
        })
    }
}

// The per-epoch summary structs now live in `targad-obs` (they are event
// payloads); re-exported here so existing `targad_core` paths keep
// resolving.
pub use targad_obs::{CandidateComposition, WeightMeans};

/// Telemetry captured during [`TargAd::fit`], sufficient to regenerate
/// Fig. 3(a) and Fig. 5 of the paper.
///
/// `TrainHistory` is itself a [`TrainObserver`]: every fit drives one
/// internally (that is how [`TargAd::history`] is populated), and tests
/// or tools can attach their own instance to any observed fit.
#[derive(Clone, Debug, Default)]
pub struct TrainHistory {
    /// Mean total classifier loss per epoch (Fig. 3a).
    pub clf_loss: Vec<f64>,
    /// Mean candidate weight per true instance type per epoch (Fig. 5a).
    pub weight_means: Vec<WeightMeans>,
    /// `(three_way_truth, weight)` per candidate at the final epoch
    /// (Fig. 5b's density plot data). Codes: 0 normal / 1 target /
    /// 2 non-target.
    pub final_weights: Vec<(usize, f64)>,
    /// Ground-truth composition of `D_U^A`.
    pub candidate_composition: CandidateComposition,
    /// Mean per-epoch autoencoder losses, averaged over clusters.
    pub ae_loss: Vec<f64>,
}

impl TrainObserver for TrainHistory {
    fn on_selection(&mut self, e: &SelectionEvent<'_>) {
        self.candidate_composition = e.composition.unwrap_or_default();
    }

    fn on_ae_epoch(&mut self, e: &AeEpochEvent) {
        self.ae_loss.push(e.mean_loss);
    }

    fn on_epoch(&mut self, e: &EpochEvent<'_>) {
        self.clf_loss.push(e.loss.total);
        self.weight_means.push(e.weight_means);
    }

    fn on_fit_end(&mut self, e: &FitEndEvent<'_>) {
        if let Some(codes) = e.truth_codes {
            self.final_weights = codes
                .iter()
                .copied()
                .zip(e.final_weights.iter().copied())
                .collect();
        }
    }
}

/// The TargAD model. See the crate docs for the algorithm outline.
pub struct TargAd {
    config: TargAdConfig,
    runtime: Runtime,
    classifier: Option<Classifier>,
    selection: Option<CandidateSelection>,
    history: TrainHistory,
    /// Per-strategy §III-C thresholds calibrated on the fitted classifier
    /// (see [`TargAd::calibrate_thresholds`]); cleared by every fit.
    thresholds: ThresholdCache,
}

impl TargAd {
    /// Creates an unfitted model after validating the configuration.
    ///
    /// Inference runs on [`Runtime::from_env`] (the `TARGAD_THREADS`
    /// environment variable, falling back to the machine's parallelism);
    /// override with [`TargAd::with_runtime`]. The thread count never
    /// affects results — scoring is bit-identical at any worker count.
    ///
    /// # Errors
    /// [`TargAdError::InvalidConfig`] naming the first invalid field (see
    /// [`TargAdConfig::try_validate`]).
    pub fn try_new(config: TargAdConfig) -> Result<Self, TargAdError> {
        config.try_validate()?;
        Ok(Self {
            config,
            runtime: Runtime::from_env(),
            classifier: None,
            selection: None,
            history: TrainHistory::default(),
            thresholds: ThresholdCache::default(),
        })
    }

    /// Creates an unfitted model.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    #[deprecated(since = "0.1.0", note = "use `try_new`, which returns a typed error")]
    pub fn new(config: TargAdConfig) -> Self {
        match Self::try_new(config) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// Replaces the execution runtime used for inference.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The execution runtime used for inference.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &TargAdConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `train`.
    ///
    /// # Errors
    /// [`TargAdError::NoLabeledAnomalies`] if `D_L` is empty and
    /// [`TargAdError::TooFewUnlabeled`] if `D_U` is smaller than the number
    /// of requested clusters.
    pub fn fit(&mut self, train: &Dataset, seed: u64) -> Result<(), TargAdError> {
        self.fit_observed(train, seed, &mut NullObserver)
    }

    /// Like [`TargAd::fit`], streaming structured telemetry into
    /// `observer` (see [`TrainObserver`]): typed per-epoch events carrying
    /// the `L_CE`/`L_OE`/`L_RE` loss decomposition, OE-weight summaries
    /// (Eqs. 4–5), candidate churn, and gradient-clip activations.
    ///
    /// Telemetry is strictly read-only: the fitted model is bit-identical
    /// with any observer attached, including none.
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    pub fn fit_observed(
        &mut self,
        train: &Dataset,
        seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> Result<(), TargAdError> {
        self.fit_view_observed(&TrainView::from_dataset(train), seed, observer)
    }

    /// Like [`TargAd::fit`], invoking `monitor(epoch, classifier)` after
    /// every classifier epoch — used to trace test AUPRC per epoch
    /// (Fig. 3b).
    #[deprecated(
        since = "0.1.0",
        note = "use `fit_observed` (typed `TrainObserver` events) or \
                `Detector::fit_traced` (per-epoch probe scores)"
    )]
    pub fn fit_with_monitor(
        &mut self,
        train: &Dataset,
        seed: u64,
        mut monitor: impl FnMut(usize, &Classifier),
    ) -> Result<(), TargAdError> {
        self.fit_inner(
            &TrainView::from_dataset(train),
            seed,
            &mut NullObserver,
            &mut monitor,
        )
    }

    /// Runs Algorithm 1 on a [`TrainView`] — the [`Detector`] entry point.
    ///
    /// Telemetry that needs ground truth ([`TrainHistory::final_weights`],
    /// [`TrainHistory::candidate_composition`], per-type
    /// [`TrainHistory::weight_means`]) is recorded only when
    /// [`TrainView::unlabeled_truth`] is present; the fitted model itself
    /// never depends on truth.
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    pub fn fit_view(&mut self, view: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_view_observed(view, seed, &mut NullObserver)
    }

    /// [`TargAd::fit_view`] streaming telemetry into `observer` — the
    /// [`TrainView`] variant of [`TargAd::fit_observed`].
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    pub fn fit_view_observed(
        &mut self,
        view: &TrainView,
        seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> Result<(), TargAdError> {
        self.fit_inner(view, seed, observer, &mut |_, _| {})
    }

    /// [`TargAd::fit_view`] with a per-epoch classifier monitor.
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    #[deprecated(
        since = "0.1.0",
        note = "use `fit_view_observed` (typed `TrainObserver` events) or \
                `Detector::fit_traced` (per-epoch probe scores)"
    )]
    pub fn fit_view_with_monitor(
        &mut self,
        view: &TrainView,
        seed: u64,
        mut monitor: impl FnMut(usize, &Classifier),
    ) -> Result<(), TargAdError> {
        self.fit_inner(view, seed, &mut NullObserver, &mut monitor)
    }

    /// The one fit implementation behind every public entry point: runs
    /// Algorithm 1, drives `observer` (plus the model's own
    /// [`TrainHistory`]) with typed events, and calls `monitor` after each
    /// classifier epoch.
    fn fit_inner(
        &mut self,
        view: &TrainView,
        seed: u64,
        observer: &mut dyn TrainObserver,
        monitor: &mut dyn FnMut(usize, &Classifier),
    ) -> Result<(), TargAdError> {
        let xl = &view.labeled;
        let labeled_classes = &view.labeled_classes;
        if xl.rows() == 0 {
            return Err(TargAdError::NoLabeledAnomalies);
        }
        let xu = &view.unlabeled;
        let need = self.config.k.unwrap_or(self.config.elbow_range.1).max(10);
        if xu.rows() < need {
            return Err(TargAdError::TooFewUnlabeled {
                have: xu.rows(),
                need,
            });
        }

        let m = labeled_classes.iter().copied().max().map_or(1, |c| c + 1);

        let fit_clock = std::time::Instant::now();
        let _fit_span = targad_obs::span(&targad_obs::profile::PHASE_FIT);
        let mut history = TrainHistory::default();
        {
            let e = FitStartEvent {
                model: "TargAD",
                n_labeled: xl.rows(),
                n_unlabeled: xu.rows(),
                dims: view.dims(),
                m,
                epochs: self.config.clf_epochs,
                threads: self.runtime.threads(),
                lambda1: self.config.lambda1,
                lambda2: self.config.lambda2,
            };
            history.on_fit_start(&e);
            observer.on_fit_start(&e);
        }

        // ---- Candidate selection (Lines 1–7) ----------------------------
        let selection = CandidateSelection::run_rt(xu, xl, &self.config, seed, &self.runtime);
        let k = selection.k;

        if !selection.autoencoders.is_empty() {
            let epochs = selection.autoencoders[0].loss_history.len();
            for e in 0..epochs {
                let mean_loss = stats::mean(
                    &selection
                        .autoencoders
                        .iter()
                        .map(|ae| ae.loss_history[e])
                        .collect::<Vec<_>>(),
                );
                let ev = AeEpochEvent {
                    epoch: e,
                    mean_loss,
                };
                history.on_ae_epoch(&ev);
                observer.on_ae_epoch(&ev);
            }
        }

        // ---- Detection data assembly ------------------------------------
        let xn = xu.take_rows(&selection.normal_candidates);
        let xa = xu.take_rows(&selection.anomaly_candidates);

        // Pseudo-labels (§III-B2). Targets: one-hot in the first m dims.
        let yl = one_hot_rows(labeled_classes, 0, m + k);
        // Normal candidates: one-hot at m + cluster index.
        let normal_clusters: Vec<usize> = selection
            .normal_candidates
            .iter()
            .map(|&i| m + selection.cluster_of[i])
            .collect();
        let yn = one_hot_rows(&normal_clusters, 0, m + k);
        // Non-target candidates: (1/m, …, 1/m, 0, …, 0) — or the vanilla OE
        // uniform 1/(m+k) under the pseudo-label ablation.
        let yo_row: Vec<f64> = if self.config.vanilla_oe_labels {
            vec![1.0 / (m + k) as f64; m + k]
        } else {
            let mut row = vec![0.0; m + k];
            for v in row.iter_mut().take(m) {
                *v = 1.0 / m as f64;
            }
            row
        };
        let ya = Matrix::from_rows(&vec![yo_row; xa.rows().max(1)])
            .take_rows(&(0..xa.rows()).collect::<Vec<_>>());

        // Candidate ground truth (telemetry only; absent without truth).
        let cand_truth: Option<Vec<usize>> = view.unlabeled_truth.as_ref().map(|truth| {
            selection
                .anomaly_candidates
                .iter()
                .map(|&i| truth[i].three_way())
                .collect()
        });
        let composition = cand_truth.as_ref().map(|codes| {
            let mut comp = CandidateComposition::default();
            for &t in codes {
                match t {
                    0 => comp.normal += 1,
                    1 => comp.target += 1,
                    _ => comp.non_target += 1,
                }
            }
            comp
        });
        {
            let clusters = cluster_recon_stats(&selection.cluster_of, &selection.recon_errors, k);
            let threshold = selection
                .anomaly_candidates
                .iter()
                .map(|&i| selection.recon_errors[i])
                .fold(f64::NAN, f64::min);
            let e = SelectionEvent {
                k,
                n_anomaly: selection.anomaly_candidates.len(),
                n_normal: selection.normal_candidates.len(),
                threshold,
                clusters: &clusters,
                composition,
            };
            history.on_selection(&e);
            observer.on_selection(&e);
        }

        // Initial weights from reconstruction errors (Eq. 5).
        let cand_errors: Vec<f64> = selection
            .anomaly_candidates
            .iter()
            .map(|&i| selection.recon_errors[i])
            .collect();
        let mut weights = normalize_inverted(&cand_errors);

        // ---- Classifier training (Lines 8–16) ---------------------------
        let mut rng = lrng::seeded(seed ^ 0xCAFE);
        let mut store = VarStore::new();
        let mut dims = vec![view.dims()];
        dims.extend_from_slice(&self.config.clf_hidden);
        dims.push(m + k);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            &dims,
            Activation::Relu,
            Activation::None,
        );
        let mut clf = Classifier {
            store,
            mlp,
            m,
            k,
            engine: EngineCell::new(),
            f32_plan: std::sync::OnceLock::new(),
        };
        let mut opt: Box<dyn Optimizer> = if self.config.clf_sgd {
            Box::new(Sgd::with_momentum(self.config.clf_lr, 0.9))
        } else {
            Box::new(Adam::new(self.config.clf_lr))
        };

        let bs = self.config.clf_batch;
        // One sharded-step driver for the whole fit: its per-worker tape
        // pools and per-shard gradient buffers are allocated on the first
        // step and reused by every later one.
        let mut sharded = ShardedStep::new();
        // §III-C normality verdict per candidate at the previous epoch's
        // weight update — flips between epochs measure how unsettled the
        // candidate split still is (telemetry only).
        let mut prev_verdicts: Option<Vec<bool>> = None;
        let _clf_span = targad_obs::span(&targad_obs::profile::PHASE_CLF);
        for epoch in 0..self.config.clf_epochs {
            let _epoch_span = targad_obs::span(&targad_obs::profile::PHASE_CLF_EPOCH);
            let mut eps_used: Option<Vec<f64>> = None;
            let mut candidate_flips: Option<usize> = None;
            if epoch > 0 && self.config.update_weights && !weights.is_empty() {
                // Eq. 4: weight from the max predicted probability.
                let p = clf.probabilities(&xa);
                let eps: Vec<f64> = (0..p.rows()).map(|r| p.max_row(r)).collect();
                weights = normalize_inverted(&eps);
                // Candidate churn, from the same probabilities Eq. 4
                // already computed (no extra forward pass).
                let verdicts: Vec<bool> =
                    (0..p.rows()).map(|r| clf.is_normal_row(p.row(r))).collect();
                candidate_flips = prev_verdicts
                    .as_ref()
                    .map(|prev| prev.iter().zip(&verdicts).filter(|(a, b)| a != b).count());
                prev_verdicts = Some(verdicts);
                eps_used = Some(eps);
            }
            let weight_means = match &cand_truth {
                Some(codes) => weight_means_of(codes, &weights),
                None => WeightMeans {
                    normal: f64::NAN,
                    target: f64::NAN,
                    non_target: f64::NAN,
                },
            };

            let n_batches = shuffled_batches(&mut rng, xn.rows(), bs);
            let steps = n_batches.len().max(1);
            let a_chunk = xa.rows().div_ceil(steps).max(1);
            let a_perm = lrng::permutation(&mut rng, xa.rows());
            let l_perm = lrng::permutation(&mut rng, xl.rows());
            let l_chunk = xl.rows().clamp(1, 256);

            let mut epoch_loss = 0.0;
            let mut epoch_parts = Parts::default();
            let mut clip_activations = 0usize;
            for (step, n_batch) in n_batches.iter().enumerate() {
                let a_batch: Vec<usize> = a_perm
                    .iter()
                    .copied()
                    .skip(step * a_chunk % xa.rows().max(1))
                    .take(a_chunk.min(xa.rows()))
                    .collect();
                let l_start = (step * l_chunk) % xl.rows();
                let l_batch: Vec<usize> = (0..l_chunk)
                    .map(|i| l_perm[(l_start + i) % xl.rows()])
                    .collect();

                let stats = self.train_step(
                    &mut sharded,
                    &mut clf,
                    opt.as_mut(),
                    xl,
                    &yl,
                    &l_batch,
                    &xn,
                    &yn,
                    n_batch,
                    &xa,
                    &ya,
                    &weights,
                    &a_batch,
                );
                epoch_loss += stats.loss;
                for (acc, p) in epoch_parts.iter_mut().zip(stats.parts) {
                    *acc += p;
                }
                clip_activations += usize::from(stats.clipped);
            }
            {
                let steps_f = steps as f64;
                let e = EpochEvent {
                    epoch,
                    steps,
                    loss: LossDecomposition {
                        ce: epoch_parts[PART_CE] / steps_f,
                        oe: epoch_parts[PART_OE] / steps_f,
                        re: epoch_parts[PART_RE] / steps_f,
                        lambda1: self.config.lambda1,
                        lambda2: self.config.lambda2,
                        total: epoch_loss / steps_f,
                    },
                    oe_weights: WeightSummary::from_weights(&weights),
                    weights: &weights,
                    eps: eps_used.as_deref(),
                    weight_means,
                    candidate_flips,
                    clip_activations,
                    grad_clip: self.config.grad_clip,
                };
                history.on_epoch(&e);
                observer.on_epoch(&e);
            }
            targad_obs::metrics::TRAIN_EPOCHS.inc();
            monitor(epoch, &clf);
        }

        {
            let e = FitEndEvent {
                epochs: self.config.clf_epochs,
                final_weights: &weights,
                truth_codes: cand_truth.as_deref(),
                wall_ns: u64::try_from(fit_clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
            };
            history.on_fit_end(&e);
            observer.on_fit_end(&e);
        }

        self.classifier = Some(clf);
        self.selection = Some(selection);
        self.history = history;
        // Thresholds calibrated against a previous fit's classifier are
        // meaningless for this one.
        self.thresholds = ThresholdCache::default();
        Ok(())
    }

    /// One optimizer step over the three pseudo-labeled batches; returns
    /// the scalar loss, its CE/OE/RE decomposition, and whether the
    /// gradient clip engaged.
    ///
    /// Each set's batch is split into fixed worker-count-independent shards
    /// ([`targad_nn::SHARD_ROWS`] rows each); shard gradients accumulate in
    /// disjoint buffers and reduce into the store in ascending shard order,
    /// so the step — and hence the whole fit — is bit-identical at any
    /// `TARGAD_THREADS`. The decomposition partials are *values of nodes
    /// the forward graph builds anyway* (recorded via
    /// [`ShardedStep::accumulate_parts`]), so collecting them adds no tape
    /// nodes and cannot perturb gradients or the total loss.
    #[allow(clippy::too_many_arguments)]
    fn train_step(
        &self,
        step: &mut ShardedStep,
        clf: &mut Classifier,
        opt: &mut dyn Optimizer,
        xl: &Matrix,
        yl: &Matrix,
        l_batch: &[usize],
        xn: &Matrix,
        yn: &Matrix,
        n_batch: &[usize],
        xa: &Matrix,
        ya: &Matrix,
        weights: &[f64],
        a_batch: &[usize],
    ) -> StepStats {
        let rt = &self.runtime;
        let store = &mut clf.store;
        let mlp = &clf.mlp;
        store.zero_grads();

        let use_re = self.config.use_re;
        let lambda2 = self.config.lambda2;
        let w_l = xl.rows() as f64 / (xl.rows() + xn.rows()) as f64;

        // L_CE over D_L (Eq. 3) plus D_L's share of L_RE (Eq. 7). Sign
        // convention for L_RE: we minimize the *entropy* H(p) = −Σ p log p
        // so the regularizer boosts prediction confidence, which is the
        // behaviour the paper describes for this term (its Eq. 7 prints
        // Σ p log p; minimizing that literal expression would maximize
        // entropy instead).
        let (mut loss, mut parts) =
            step.accumulate_parts(rt, store, l_batch.len(), |tape, store, range, parts| {
                let rows = &l_batch[range];
                let xb = tape.input_rows_from(xl, rows);
                let z = mlp.forward(tape, store, xb);
                let ce = ce_partial(tape, z, yl, rows, l_batch.len());
                parts[PART_CE] += tape.value(ce)[(0, 0)];
                if use_re {
                    let ent = entropy_partial(tape, z, l_batch.len());
                    parts[PART_RE] += w_l * tape.value(ent)[(0, 0)];
                    tape.add_scaled(ce, ent, lambda2 * w_l)
                } else {
                    ce
                }
            });

        // L_CE and L_RE over D_U^N.
        let (l2, p2) =
            step.accumulate_parts(rt, store, n_batch.len(), |tape, store, range, parts| {
                let rows = &n_batch[range];
                let xb = tape.input_rows_from(xn, rows);
                let z = mlp.forward(tape, store, xb);
                let ce = ce_partial(tape, z, yn, rows, n_batch.len());
                parts[PART_CE] += tape.value(ce)[(0, 0)];
                if use_re {
                    let ent = entropy_partial(tape, z, n_batch.len());
                    parts[PART_RE] += (1.0 - w_l) * tape.value(ent)[(0, 0)];
                    tape.add_scaled(ce, ent, lambda2 * (1.0 - w_l))
                } else {
                    ce
                }
            });
        loss += l2;
        for (acc, p) in parts.iter_mut().zip(p2) {
            *acc += p;
        }

        // L_OE over D_U^A (Eq. 6) with the per-instance Eq. 4/5 weights.
        if self.config.use_oe && !a_batch.is_empty() {
            let lambda1 = self.config.lambda1;
            let (l3, p3) =
                step.accumulate_parts(rt, store, a_batch.len(), |tape, store, range, parts| {
                    let rows = &a_batch[range];
                    let xb = tape.input_rows_from(xa, rows);
                    let z = mlp.forward(tape, store, xb);
                    let oe = weighted_ce_partial(tape, z, ya, rows, weights, a_batch.len());
                    parts[PART_OE] += tape.value(oe)[(0, 0)];
                    tape.scale(oe, lambda1)
                });
            loss += l3;
            for (acc, p) in parts.iter_mut().zip(p3) {
                *acc += p;
            }
        }

        let _apply_span = targad_obs::span(&targad_obs::profile::PHASE_STEP_APPLY);
        let norm = clip_grad_norm(store, self.config.grad_clip);
        opt.step(store);
        StepStats {
            loss,
            parts,
            clipped: norm > self.config.grad_clip,
        }
    }

    /// The fitted classifier.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] before a successful [`TargAd::fit`].
    pub fn classifier(&self) -> Result<&Classifier, TargAdError> {
        self.classifier.as_ref().ok_or(TargAdError::NotFitted)
    }

    /// The candidate-selection output of the last fit.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] before a successful [`TargAd::fit`].
    pub fn selection(&self) -> Result<&CandidateSelection, TargAdError> {
        self.selection.as_ref().ok_or(TargAdError::NotFitted)
    }

    /// Training telemetry of the last fit.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Target-anomaly scores (Eq. 9) for each row of `x`.
    ///
    /// The forward pass runs on this model's [`Runtime`]; results are
    /// bit-identical at any worker count.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] / [`TargAdError::DimMismatch`].
    pub fn try_score_matrix(&self, x: &Matrix) -> Result<Vec<f64>, TargAdError> {
        let clf = self.checked_classifier(x)?;
        Ok(clf.target_scores_rt(x, &self.runtime))
    }

    /// Convenience: scores a whole [`Dataset`].
    ///
    /// # Errors
    /// Same contract as [`TargAd::try_score_matrix`].
    pub fn try_score_dataset(&self, dataset: &Dataset) -> Result<Vec<f64>, TargAdError> {
        self.try_score_matrix(&dataset.features)
    }

    /// The fitted classifier after a dimensionality check against `x`.
    fn checked_classifier(&self, x: &Matrix) -> Result<&Classifier, TargAdError> {
        let clf = self.classifier()?;
        if x.cols() != clf.input_dim() {
            return Err(TargAdError::DimMismatch {
                expected: clf.input_dim(),
                got: x.cols(),
            });
        }
        Ok(clf)
    }

    /// Calibrates and caches the §III-C `tau` for **all three** OOD
    /// strategies on validation data with three-way truth (0 normal /
    /// 1 target / 2 non-target), so later verdict calls do zero
    /// calibration work — the fix the serving path depends on. Returns the
    /// resulting cache (also retrievable via [`TargAd::thresholds`]).
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] / [`TargAdError::DimMismatch`].
    pub fn calibrate_thresholds(
        &mut self,
        val_x: &Matrix,
        val_truth3: &[usize],
    ) -> Result<ThresholdCache, TargAdError> {
        let clf = self.checked_classifier(val_x)?;
        let mut cache = ThresholdCache::default();
        for strategy in OodStrategy::all() {
            cache.set(strategy, calibrate_tau(clf, val_x, val_truth3, strategy));
        }
        self.thresholds = cache;
        Ok(cache)
    }

    /// The calibrated per-strategy threshold cache (empty until
    /// [`TargAd::calibrate_thresholds`] or [`TargAd::set_thresholds`]).
    pub fn thresholds(&self) -> &ThresholdCache {
        &self.thresholds
    }

    /// Installs externally produced thresholds (e.g. restored from a v2
    /// snapshot alongside the classifier).
    pub fn set_thresholds(&mut self, thresholds: ThresholdCache) {
        self.thresholds = thresholds;
    }

    /// Verdict-first scoring: Eq. 9 score plus the three-way §III-C class
    /// for each row of `x`, under `strategy`'s cached threshold. Runs one
    /// fused engine pass on this model's [`Runtime`]; bit-identical to the
    /// Table IV reference path at any worker count.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] / [`TargAdError::DimMismatch`] /
    /// [`TargAdError::NotCalibrated`] when `strategy` has no cached
    /// threshold (call [`TargAd::calibrate_thresholds`] first).
    pub fn try_verdict_matrix(
        &self,
        x: &Matrix,
        strategy: OodStrategy,
    ) -> Result<ScoreOutput, TargAdError> {
        let clf = self.checked_classifier(x)?;
        let tau = self
            .thresholds
            .get(strategy)
            .ok_or(TargAdError::NotCalibrated { strategy })?;
        Ok(clf.verdicts_rt(x, &self.runtime, strategy, tau))
    }

    /// Convenience: verdicts for a whole [`Dataset`].
    ///
    /// # Errors
    /// Same contract as [`TargAd::try_verdict_matrix`].
    pub fn try_verdict_dataset(
        &self,
        dataset: &Dataset,
        strategy: OodStrategy,
    ) -> Result<ScoreOutput, TargAdError> {
        self.try_verdict_matrix(&dataset.features, strategy)
    }

    /// Target-anomaly scores (Eq. 9) for each row of `x`.
    ///
    /// # Panics
    /// Panics when unfitted or on a dimensionality mismatch.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_score_matrix`, which returns a typed error"
    )]
    pub fn score_matrix(&self, x: &Matrix) -> Vec<f64> {
        self.try_score_matrix(x).expect("TargAd::score_matrix")
    }

    /// Convenience: scores a whole [`Dataset`].
    ///
    /// # Panics
    /// Panics when unfitted or on a dimensionality mismatch.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_score_dataset`, which returns a typed error"
    )]
    pub fn score_dataset(&self, dataset: &Dataset) -> Vec<f64> {
        self.try_score_dataset(dataset)
            .expect("TargAd::score_dataset")
    }
}

impl Detector for TargAd {
    fn name(&self) -> &'static str {
        "TargAD"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_view(train, seed)
    }

    /// # Panics
    /// Panics when called before a successful fit (the [`Detector::score`]
    /// contract); [`TargAd::try_score_matrix`] is the fallible variant.
    fn score(&self, x: &Matrix) -> Vec<f64> {
        self.try_score_matrix(x)
            .expect("TargAd: score before successful fit")
    }

    fn try_score(&self, x: &Matrix) -> Result<Vec<f64>, TargAdError> {
        self.try_score_matrix(x)
    }

    /// TargAD calibrates both thresholds: the §III-C `tau` splitting
    /// target from non-target anomalies (the default trait impl has no
    /// OOD head and reuses the scalar threshold) plus the scalar score
    /// threshold for two-way interop.
    fn calibrate(
        &self,
        val_x: &Matrix,
        val_truth3: &[usize],
        strategy: OodStrategy,
    ) -> Result<Calibration, TargAdError> {
        let clf = self.checked_classifier(val_x)?;
        let tau = calibrate_tau(clf, val_x, val_truth3, strategy);
        let scores = self.try_score_matrix(val_x)?;
        let score_threshold = crate::verdict::calibrate_score_threshold(&scores, val_truth3);
        Ok(Calibration {
            strategy,
            tau,
            score_threshold,
        })
    }

    /// The full three-way §III-C verdict (the default trait impl can only
    /// do two-way), via one fused engine pass.
    fn try_verdicts(
        &self,
        x: &Matrix,
        calibration: &Calibration,
    ) -> Result<ScoreOutput, TargAdError> {
        let clf = self.checked_classifier(x)?;
        Ok(clf.verdicts_rt(x, &self.runtime, calibration.strategy, calibration.tau))
    }

    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        let runtime = self.runtime;
        self.fit_inner(train, seed, &mut NullObserver, &mut |epoch, clf| {
            trace(epoch, clf.target_scores_rt(probe, &runtime));
        })
    }
}

/// Builds a one-hot matrix with ones at `offset + code[i]`.
fn one_hot_rows(codes: &[usize], offset: usize, width: usize) -> Matrix {
    let mut m = Matrix::zeros(codes.len(), width);
    for (r, &c) in codes.iter().enumerate() {
        m[(r, offset + c)] = 1.0;
    }
    m
}

/// `(max − v) / (max − min)` normalization shared by Eq. 4 and Eq. 5
/// (all-ones when the values are degenerate).
fn normalize_inverted(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = stats::max(values);
    let min = stats::min(values);
    if max - min <= f64::EPSILON {
        return vec![1.0; values.len()];
    }
    values.iter().map(|&v| (max - v) / (max - min)).collect()
}

fn weight_means_of(truth: &[usize], weights: &[f64]) -> WeightMeans {
    let mean_of = |code: usize| -> f64 {
        let vals: Vec<f64> = truth
            .iter()
            .zip(weights)
            .filter(|(&t, _)| t == code)
            .map(|(_, &w)| w)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            stats::mean(&vals)
        }
    };
    WeightMeans {
        normal: mean_of(0),
        target: mean_of(1),
        non_target: mean_of(2),
    }
}

/// One optimizer step's telemetry: total loss, CE/OE/RE partials, and
/// whether gradient clipping engaged.
struct StepStats {
    loss: f64,
    parts: Parts,
    clipped: bool,
}

/// Reconstruction-error quantiles (`[min, q25, median, q75, max]`) per
/// cluster, for the selection telemetry event.
fn cluster_recon_stats(
    cluster_of: &[usize],
    recon_errors: &[f64],
    k: usize,
) -> Vec<targad_obs::ClusterReconStats> {
    (0..k)
        .map(|c| {
            let mut errs: Vec<f64> = cluster_of
                .iter()
                .zip(recon_errors)
                .filter(|(&cl, _)| cl == c)
                .map(|(_, &e)| e)
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).expect("NaN recon error"));
            let q = |frac: f64| -> f64 {
                if errs.is_empty() {
                    return f64::NAN;
                }
                errs[((frac * (errs.len() - 1) as f64).round() as usize).min(errs.len() - 1)]
            };
            targad_obs::ClusterReconStats {
                cluster: c,
                size: errs.len(),
                quantiles: [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
            }
        })
        .collect()
}

/// Shard partial of `−(1/n_total) Σ_rows Σ_j y_j log p_j` from logits `z`
/// and the listed rows of a constant target matrix. Partials over a shard
/// partition of a batch sum to the batch's cross-entropy mean.
fn ce_partial(tape: &mut Tape, z: Var, targets: &Matrix, rows: &[usize], n_total: usize) -> Var {
    let n = n_total.max(1) as f64;
    let y = tape.input_rows_from(targets, rows);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(y, lp);
    let total = tape.sum_all(prod);
    tape.scale(total, -1.0 / n)
}

/// Weighted variant of [`ce_partial`] (Eq. 6): row `i` of the shard is
/// weighted by `weights[rows[i]]`, gathered straight into a pooled tape
/// input (no per-step `Vec` of weights).
fn weighted_ce_partial(
    tape: &mut Tape,
    z: Var,
    targets: &Matrix,
    rows: &[usize],
    weights: &[f64],
    n_total: usize,
) -> Var {
    let n = n_total.max(1) as f64;
    let y = tape.input_rows_from(targets, rows);
    let w = tape.input_gather_col(weights, rows);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(y, lp);
    let per_row = tape.row_sum(prod);
    let weighted = tape.mul_col_broadcast(per_row, w);
    let total = tape.sum_all(weighted);
    tape.scale(total, -1.0 / n)
}

/// Shard partial of the mean entropy `H(p) = −Σ p log p` of the softmax of
/// logits `z`: the shard's entropy sum divided by the full batch size.
fn entropy_partial(tape: &mut Tape, z: Var, n_total: usize) -> Var {
    let p = tape.softmax_rows(z);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(p, lp);
    let rows = tape.row_sum(prod);
    let sum = tape.sum_div(rows, n_total.max(1) as f64);
    tape.scale(sum, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::{auroc, average_precision};

    fn fitted_model(seed: u64) -> (TargAd, targad_data::DatasetBundle) {
        let bundle = GeneratorSpec::quick_demo().generate(seed);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, seed).expect("fit succeeds");
        (model, bundle)
    }

    #[test]
    fn fit_rejects_empty_labeled_set() {
        let bundle = GeneratorSpec::quick_demo().generate(1);
        let mut unlabeled = bundle.train.clone();
        unlabeled.labeled.iter_mut().for_each(|l| *l = false);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        assert_eq!(
            model.fit(&unlabeled, 1),
            Err(TargAdError::NoLabeledAnomalies)
        );
    }

    #[test]
    fn unfitted_model_errors() {
        let model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        assert_eq!(model.classifier().err(), Some(TargAdError::NotFitted));
        assert_eq!(
            model.try_score_matrix(&Matrix::ones(1, 12)).err(),
            Some(TargAdError::NotFitted)
        );
    }

    #[test]
    fn dim_mismatch_detected() {
        let (model, _) = fitted_model(2);
        assert!(matches!(
            model.try_score_matrix(&Matrix::ones(1, 5)),
            Err(TargAdError::DimMismatch {
                expected: 12,
                got: 5
            })
        ));
    }

    #[test]
    fn detects_target_anomalies_well_above_chance() {
        let (model, bundle) = fitted_model(3);
        let scores = model.try_score_dataset(&bundle.test).unwrap();
        let labels = bundle.test.target_labels();
        let prevalence = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        let ap = average_precision(&scores, &labels);
        let roc = auroc(&scores, &labels);
        assert!(ap > 3.0 * prevalence, "AP {ap} vs prevalence {prevalence}");
        assert!(roc > 0.8, "AUROC {roc}");
    }

    #[test]
    fn scores_are_valid_probabilities() {
        let (model, bundle) = fitted_model(4);
        let scores = model.try_score_dataset(&bundle.test).unwrap();
        assert!(scores
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s) && s.is_finite()));
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let (model, bundle) = fitted_model(5);
        let clf = model.classifier().unwrap();
        let p = clf.probabilities(&bundle.test.features);
        assert_eq!(p.cols(), clf.m() + clf.k());
        for r in 0..p.rows().min(50) {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn history_records_all_epochs() {
        let (model, _) = fitted_model(6);
        let h = model.history();
        let epochs = model.config().clf_epochs;
        assert_eq!(h.clf_loss.len(), epochs);
        assert_eq!(h.weight_means.len(), epochs);
        assert!(!h.final_weights.is_empty());
        assert!(!h.ae_loss.is_empty());
        let comp = h.candidate_composition;
        assert_eq!(
            comp.normal + comp.target + comp.non_target,
            model.selection().unwrap().anomaly_candidates.len()
        );
    }

    #[test]
    fn loss_decreases_during_training() {
        let (model, _) = fitted_model(7);
        let loss = &model.history().clf_loss;
        let early = loss[..3].iter().sum::<f64>() / 3.0;
        let late = loss[loss.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late < early,
            "loss did not decrease: early {early}, late {late}"
        );
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        let (model, _) = fitted_model(8);
        assert!(model
            .history()
            .final_weights
            .iter()
            .all(|&(_, w)| (0.0..=1.0).contains(&w)));
    }

    #[test]
    fn non_targets_gain_weight_over_training() {
        // Fig. 5a's headline effect: by the final epochs the mean weight of
        // true non-target anomalies exceeds the mean weight of normal
        // instances hiding among the candidates.
        let (model, _) = fitted_model(9);
        let last = model.history().weight_means.last().unwrap();
        if !last.non_target.is_nan() && !last.normal.is_nan() {
            assert!(
                last.non_target > last.normal,
                "non-target {} vs normal {}",
                last.non_target,
                last.normal
            );
        }
    }

    /// The deprecated monitor shim must keep working until removal.
    #[test]
    #[allow(deprecated)]
    fn monitor_is_called_every_epoch() {
        let bundle = GeneratorSpec::quick_demo().generate(10);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        let mut calls = Vec::new();
        model
            .fit_with_monitor(&bundle.train, 10, |epoch, clf| {
                assert_eq!(clf.input_dim(), 12);
                calls.push(epoch);
            })
            .expect("fit");
        assert_eq!(calls, (0..model.config().clf_epochs).collect::<Vec<_>>());
    }

    /// The observer API delivers one epoch event per configured epoch with
    /// the same loss trace the history records, and a final-weights event.
    #[test]
    fn observer_receives_full_event_stream() {
        let bundle = GeneratorSpec::quick_demo().generate(13);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        let mut rec = targad_obs::events::Recorder::new();
        model
            .fit_observed(&bundle.train, 13, &mut rec)
            .expect("fit");
        let epochs = model.config().clf_epochs;
        assert!(rec.fit_start.is_some());
        assert!(rec.selection.is_some());
        assert_eq!(rec.epochs.len(), epochs);
        let history_loss: Vec<f64> = model.history().clf_loss.clone();
        let event_loss: Vec<f64> = rec.epochs.iter().map(|e| e.loss.total).collect();
        assert_eq!(history_loss, event_loss);
        assert!(!rec.final_weights.is_empty());
        assert!(!rec.clusters.is_empty());
        assert!(rec.epochs.iter().all(|e| e.steps > 0));
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let bundle = GeneratorSpec::quick_demo().generate(11);
        let mut a = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        a.fit(&bundle.train, 42).unwrap();
        let mut b = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        b.fit(&bundle.train, 42).unwrap();
        assert_eq!(
            a.try_score_dataset(&bundle.test).unwrap(),
            b.try_score_dataset(&bundle.test).unwrap()
        );
    }

    #[test]
    fn ablation_flags_change_the_model() {
        let bundle = GeneratorSpec::quick_demo().generate(12);
        let mut full = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        full.fit(&bundle.train, 1).unwrap();
        let mut cfg = TargAdConfig::fast();
        cfg.use_oe = false;
        cfg.use_re = false;
        let mut ablated = TargAd::try_new(cfg).expect("valid config");
        ablated.fit(&bundle.train, 1).unwrap();
        assert_ne!(
            full.try_score_dataset(&bundle.test).unwrap(),
            ablated.try_score_dataset(&bundle.test).unwrap()
        );
    }
}
