//! The TargAD detection component (§III-B2/B3, Lines 8–17 of Algorithm 1)
//! and the public model API.

use targad_autograd::{Tape, Var, VarStore};
use targad_data::Dataset;
use targad_linalg::{rng as lrng, stats, Matrix};
use targad_nn::optim::clip_grad_norm;
use targad_nn::{shuffled_batches, Activation, Adam, Mlp, Optimizer, Sgd, ShardedStep};
use targad_runtime::Runtime;

use crate::candidate::CandidateSelection;
use crate::config::TargAdConfig;
use crate::detector::{Detector, TrainView};
use crate::error::TargAdError;

/// The trained `m + k`-way classifier `f`.
///
/// The first `m` output dimensions correspond to the target anomaly
/// classes, the last `k` to the hidden normal groups discovered by k-means.
pub struct Classifier {
    store: VarStore,
    mlp: Mlp,
    m: usize,
    k: usize,
}

impl Classifier {
    /// Number of target anomaly classes `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of normal groups `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.mlp.in_dim()
    }

    /// Raw logits, one row per instance.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        self.mlp.eval(&self.store, x)
    }

    /// [`Classifier::logits`] executed on `rt`: the batched forward pass
    /// parallelizes over rows, bit-identical to the serial path at any
    /// worker count.
    pub fn logits_rt(&self, x: &Matrix, rt: &Runtime) -> Matrix {
        self.mlp.eval_rt(&self.store, x, rt)
    }

    /// Softmax probabilities over the `m + k` outputs.
    pub fn probabilities(&self, x: &Matrix) -> Matrix {
        self.logits(x).softmax_rows()
    }

    /// [`Classifier::probabilities`] executed on `rt`.
    pub fn probabilities_rt(&self, x: &Matrix, rt: &Runtime) -> Matrix {
        self.logits_rt(x, rt).softmax_rows()
    }

    /// Target-anomaly scores (Eq. 9): `S^tar(x) = max_{j ≤ m} p_j(x)`.
    pub fn target_scores(&self, x: &Matrix) -> Vec<f64> {
        self.target_scores_from(self.probabilities(x))
    }

    /// [`Classifier::target_scores`] executed on `rt`; bit-identical to the
    /// serial path at any worker count.
    pub fn target_scores_rt(&self, x: &Matrix, rt: &Runtime) -> Vec<f64> {
        self.target_scores_from(self.probabilities_rt(x, rt))
    }

    fn target_scores_from(&self, p: Matrix) -> Vec<f64> {
        (0..p.rows())
            .map(|r| {
                p.row(r)[..self.m]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// §III-C normality rule: an instance is normal iff the probability
    /// mass on the last `k` dimensions exceeds `k / (m + k)`.
    pub fn is_normal_row(&self, prob_row: &[f64]) -> bool {
        let mass: f64 = prob_row[self.m..].iter().sum();
        mass > self.k as f64 / (self.m + self.k) as f64
    }

    /// The `[in, h1, …, m + k]` layer dimensions (for persistence).
    pub fn layer_dims(&self) -> Vec<usize> {
        self.mlp.dims()
    }

    /// All parameter matrices in layer order: `w1, b1, w2, b2, …`.
    pub fn parameter_matrices(&self) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(2 * self.mlp.num_layers());
        for layer in self.mlp.layers() {
            let (w, b) = layer.params();
            out.push(self.store.value(w).clone());
            out.push(self.store.value(b).clone());
        }
        out
    }

    /// Builds an untrained classifier skeleton with the given architecture
    /// (used by [`crate::snapshot`] before overwriting the parameters).
    pub(crate) fn with_architecture(
        dims: &[usize],
        m: usize,
        k: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        let mut store = VarStore::new();
        let mlp = Mlp::new(&mut store, rng, dims, Activation::Relu, Activation::None);
        Self { store, mlp, m, k }
    }

    /// Replaces all parameters with `matrices` (layer order `w1, b1, …`).
    pub(crate) fn overwrite_parameters(&mut self, matrices: &[Matrix]) -> Result<(), String> {
        let expected = 2 * self.mlp.num_layers();
        if matrices.len() != expected {
            return Err(format!(
                "expected {expected} matrices, got {}",
                matrices.len()
            ));
        }
        for (i, layer) in self.mlp.layers().to_vec().into_iter().enumerate() {
            let (w, b) = layer.params();
            for (id, matrix) in [(w, &matrices[2 * i]), (b, &matrices[2 * i + 1])] {
                if self.store.value(id).shape() != matrix.shape() {
                    return Err(format!(
                        "matrix {i}: shape {:?} does not match architecture {:?}",
                        matrix.shape(),
                        self.store.value(id).shape()
                    ));
                }
                *self.store.value_mut(id) = matrix.clone();
            }
        }
        Ok(())
    }
}

/// Per-epoch mean weight of the three true instance types hiding inside the
/// non-target anomaly candidate set (Fig. 5a). `NaN` when a type is absent.
#[derive(Clone, Copy, Debug)]
pub struct WeightMeans {
    /// Mean weight of inaccurately-reconstructed *normal* instances.
    pub normal: f64,
    /// Mean weight of hidden *target* anomalies.
    pub target: f64,
    /// Mean weight of *non-target* anomalies.
    pub non_target: f64,
}

/// Composition of the candidate set by ground truth (diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CandidateComposition {
    /// Normal instances erroneously selected.
    pub normal: usize,
    /// Hidden target anomalies selected.
    pub target: usize,
    /// Non-target anomalies selected (the intended content).
    pub non_target: usize,
}

/// Telemetry captured during [`TargAd::fit`], sufficient to regenerate
/// Fig. 3(a) and Fig. 5 of the paper.
#[derive(Clone, Debug, Default)]
pub struct TrainHistory {
    /// Mean total classifier loss per epoch (Fig. 3a).
    pub clf_loss: Vec<f64>,
    /// Mean candidate weight per true instance type per epoch (Fig. 5a).
    pub weight_means: Vec<WeightMeans>,
    /// `(three_way_truth, weight)` per candidate at the final epoch
    /// (Fig. 5b's density plot data). Codes: 0 normal / 1 target /
    /// 2 non-target.
    pub final_weights: Vec<(usize, f64)>,
    /// Ground-truth composition of `D_U^A`.
    pub candidate_composition: CandidateComposition,
    /// Mean per-epoch autoencoder losses, averaged over clusters.
    pub ae_loss: Vec<f64>,
}

/// The TargAD model. See the crate docs for the algorithm outline.
pub struct TargAd {
    config: TargAdConfig,
    runtime: Runtime,
    classifier: Option<Classifier>,
    selection: Option<CandidateSelection>,
    history: TrainHistory,
}

impl TargAd {
    /// Creates an unfitted model after validating the configuration.
    ///
    /// Inference runs on [`Runtime::from_env`] (the `TARGAD_THREADS`
    /// environment variable, falling back to the machine's parallelism);
    /// override with [`TargAd::with_runtime`]. The thread count never
    /// affects results — scoring is bit-identical at any worker count.
    ///
    /// # Errors
    /// [`TargAdError::InvalidConfig`] naming the first invalid field (see
    /// [`TargAdConfig::try_validate`]).
    pub fn try_new(config: TargAdConfig) -> Result<Self, TargAdError> {
        config.try_validate()?;
        Ok(Self {
            config,
            runtime: Runtime::from_env(),
            classifier: None,
            selection: None,
            history: TrainHistory::default(),
        })
    }

    /// Creates an unfitted model.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    #[deprecated(since = "0.1.0", note = "use `try_new`, which returns a typed error")]
    pub fn new(config: TargAdConfig) -> Self {
        match Self::try_new(config) {
            Ok(model) => model,
            Err(e) => panic!("{e}"),
        }
    }

    /// Replaces the execution runtime used for inference.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The execution runtime used for inference.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &TargAdConfig {
        &self.config
    }

    /// Runs Algorithm 1 on `train`.
    ///
    /// # Errors
    /// [`TargAdError::NoLabeledAnomalies`] if `D_L` is empty and
    /// [`TargAdError::TooFewUnlabeled`] if `D_U` is smaller than the number
    /// of requested clusters.
    pub fn fit(&mut self, train: &Dataset, seed: u64) -> Result<(), TargAdError> {
        self.fit_with_monitor(train, seed, |_, _| {})
    }

    /// Like [`TargAd::fit`], invoking `monitor(epoch, classifier)` after
    /// every classifier epoch — used to trace test AUPRC per epoch
    /// (Fig. 3b).
    pub fn fit_with_monitor(
        &mut self,
        train: &Dataset,
        seed: u64,
        monitor: impl FnMut(usize, &Classifier),
    ) -> Result<(), TargAdError> {
        self.fit_view_with_monitor(&TrainView::from_dataset(train), seed, monitor)
    }

    /// Runs Algorithm 1 on a [`TrainView`] — the [`Detector`] entry point.
    ///
    /// Telemetry that needs ground truth ([`TrainHistory::final_weights`],
    /// [`TrainHistory::candidate_composition`], per-type
    /// [`TrainHistory::weight_means`]) is recorded only when
    /// [`TrainView::unlabeled_truth`] is present; the fitted model itself
    /// never depends on truth.
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    pub fn fit_view(&mut self, view: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_view_with_monitor(view, seed, |_, _| {})
    }

    /// [`TargAd::fit_view`] with a per-epoch classifier monitor.
    ///
    /// # Errors
    /// Same contract as [`TargAd::fit`].
    pub fn fit_view_with_monitor(
        &mut self,
        view: &TrainView,
        seed: u64,
        mut monitor: impl FnMut(usize, &Classifier),
    ) -> Result<(), TargAdError> {
        let xl = &view.labeled;
        let labeled_classes = &view.labeled_classes;
        if xl.rows() == 0 {
            return Err(TargAdError::NoLabeledAnomalies);
        }
        let xu = &view.unlabeled;
        let need = self.config.k.unwrap_or(self.config.elbow_range.1).max(10);
        if xu.rows() < need {
            return Err(TargAdError::TooFewUnlabeled {
                have: xu.rows(),
                need,
            });
        }

        let m = labeled_classes.iter().copied().max().map_or(1, |c| c + 1);

        // ---- Candidate selection (Lines 1–7) ----------------------------
        let selection = CandidateSelection::run_rt(xu, xl, &self.config, seed, &self.runtime);
        let k = selection.k;

        let mut history = TrainHistory::default();
        if !selection.autoencoders.is_empty() {
            let epochs = selection.autoencoders[0].loss_history.len();
            history.ae_loss = (0..epochs)
                .map(|e| {
                    stats::mean(
                        &selection
                            .autoencoders
                            .iter()
                            .map(|ae| ae.loss_history[e])
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
        }

        // ---- Detection data assembly ------------------------------------
        let xn = xu.take_rows(&selection.normal_candidates);
        let xa = xu.take_rows(&selection.anomaly_candidates);

        // Pseudo-labels (§III-B2). Targets: one-hot in the first m dims.
        let yl = one_hot_rows(labeled_classes, 0, m + k);
        // Normal candidates: one-hot at m + cluster index.
        let normal_clusters: Vec<usize> = selection
            .normal_candidates
            .iter()
            .map(|&i| m + selection.cluster_of[i])
            .collect();
        let yn = one_hot_rows(&normal_clusters, 0, m + k);
        // Non-target candidates: (1/m, …, 1/m, 0, …, 0) — or the vanilla OE
        // uniform 1/(m+k) under the pseudo-label ablation.
        let yo_row: Vec<f64> = if self.config.vanilla_oe_labels {
            vec![1.0 / (m + k) as f64; m + k]
        } else {
            let mut row = vec![0.0; m + k];
            for v in row.iter_mut().take(m) {
                *v = 1.0 / m as f64;
            }
            row
        };
        let ya = Matrix::from_rows(&vec![yo_row; xa.rows().max(1)])
            .take_rows(&(0..xa.rows()).collect::<Vec<_>>());

        // Candidate ground truth (telemetry only; absent without truth).
        let cand_truth: Option<Vec<usize>> = view.unlabeled_truth.as_ref().map(|truth| {
            selection
                .anomaly_candidates
                .iter()
                .map(|&i| truth[i].three_way())
                .collect()
        });
        if let Some(codes) = &cand_truth {
            for &t in codes {
                match t {
                    0 => history.candidate_composition.normal += 1,
                    1 => history.candidate_composition.target += 1,
                    _ => history.candidate_composition.non_target += 1,
                }
            }
        }

        // Initial weights from reconstruction errors (Eq. 5).
        let cand_errors: Vec<f64> = selection
            .anomaly_candidates
            .iter()
            .map(|&i| selection.recon_errors[i])
            .collect();
        let mut weights = normalize_inverted(&cand_errors);

        // ---- Classifier training (Lines 8–16) ---------------------------
        let mut rng = lrng::seeded(seed ^ 0xCAFE);
        let mut store = VarStore::new();
        let mut dims = vec![view.dims()];
        dims.extend_from_slice(&self.config.clf_hidden);
        dims.push(m + k);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            &dims,
            Activation::Relu,
            Activation::None,
        );
        let mut clf = Classifier { store, mlp, m, k };
        let mut opt: Box<dyn Optimizer> = if self.config.clf_sgd {
            Box::new(Sgd::with_momentum(self.config.clf_lr, 0.9))
        } else {
            Box::new(Adam::new(self.config.clf_lr))
        };

        let bs = self.config.clf_batch;
        // One sharded-step driver for the whole fit: its per-worker tape
        // pools and per-shard gradient buffers are allocated on the first
        // step and reused by every later one.
        let mut sharded = ShardedStep::new();
        for epoch in 0..self.config.clf_epochs {
            if epoch > 0 && self.config.update_weights && !weights.is_empty() {
                // Eq. 4: weight from the max predicted probability.
                let p = clf.probabilities(&xa);
                let eps: Vec<f64> = (0..p.rows()).map(|r| p.max_row(r)).collect();
                weights = normalize_inverted(&eps);
            }
            match &cand_truth {
                Some(codes) => record_weight_means(&mut history, codes, &weights),
                None => history.weight_means.push(WeightMeans {
                    normal: f64::NAN,
                    target: f64::NAN,
                    non_target: f64::NAN,
                }),
            }

            let n_batches = shuffled_batches(&mut rng, xn.rows(), bs);
            let steps = n_batches.len().max(1);
            let a_chunk = xa.rows().div_ceil(steps).max(1);
            let a_perm = lrng::permutation(&mut rng, xa.rows());
            let l_perm = lrng::permutation(&mut rng, xl.rows());
            let l_chunk = xl.rows().clamp(1, 256);

            let mut epoch_loss = 0.0;
            for (step, n_batch) in n_batches.iter().enumerate() {
                let a_batch: Vec<usize> = a_perm
                    .iter()
                    .copied()
                    .skip(step * a_chunk % xa.rows().max(1))
                    .take(a_chunk.min(xa.rows()))
                    .collect();
                let l_start = (step * l_chunk) % xl.rows();
                let l_batch: Vec<usize> = (0..l_chunk)
                    .map(|i| l_perm[(l_start + i) % xl.rows()])
                    .collect();

                epoch_loss += self.train_step(
                    &mut sharded,
                    &mut clf,
                    opt.as_mut(),
                    xl,
                    &yl,
                    &l_batch,
                    &xn,
                    &yn,
                    n_batch,
                    &xa,
                    &ya,
                    &weights,
                    &a_batch,
                );
            }
            history.clf_loss.push(epoch_loss / steps as f64);
            monitor(epoch, &clf);
        }

        if let Some(codes) = &cand_truth {
            history.final_weights = codes.iter().copied().zip(weights.iter().copied()).collect();
        }

        self.classifier = Some(clf);
        self.selection = Some(selection);
        self.history = history;
        Ok(())
    }

    /// One optimizer step over the three pseudo-labeled batches; returns the
    /// scalar loss value.
    ///
    /// Each set's batch is split into fixed worker-count-independent shards
    /// ([`targad_nn::SHARD_ROWS`] rows each); shard gradients accumulate in
    /// disjoint buffers and reduce into the store in ascending shard order,
    /// so the step — and hence the whole fit — is bit-identical at any
    /// `TARGAD_THREADS`.
    #[allow(clippy::too_many_arguments)]
    fn train_step(
        &self,
        step: &mut ShardedStep,
        clf: &mut Classifier,
        opt: &mut dyn Optimizer,
        xl: &Matrix,
        yl: &Matrix,
        l_batch: &[usize],
        xn: &Matrix,
        yn: &Matrix,
        n_batch: &[usize],
        xa: &Matrix,
        ya: &Matrix,
        weights: &[f64],
        a_batch: &[usize],
    ) -> f64 {
        let rt = &self.runtime;
        let store = &mut clf.store;
        let mlp = &clf.mlp;
        store.zero_grads();

        let use_re = self.config.use_re;
        let lambda2 = self.config.lambda2;
        let w_l = xl.rows() as f64 / (xl.rows() + xn.rows()) as f64;

        // L_CE over D_L (Eq. 3) plus D_L's share of L_RE (Eq. 7). Sign
        // convention for L_RE: we minimize the *entropy* H(p) = −Σ p log p
        // so the regularizer boosts prediction confidence, which is the
        // behaviour the paper describes for this term (its Eq. 7 prints
        // Σ p log p; minimizing that literal expression would maximize
        // entropy instead).
        let mut loss = step.accumulate(rt, store, l_batch.len(), |tape, store, range| {
            let rows = &l_batch[range];
            let xb = tape.input_rows_from(xl, rows);
            let z = mlp.forward(tape, store, xb);
            let ce = ce_partial(tape, z, yl, rows, l_batch.len());
            if use_re {
                let ent = entropy_partial(tape, z, l_batch.len());
                tape.add_scaled(ce, ent, lambda2 * w_l)
            } else {
                ce
            }
        });

        // L_CE and L_RE over D_U^N.
        loss += step.accumulate(rt, store, n_batch.len(), |tape, store, range| {
            let rows = &n_batch[range];
            let xb = tape.input_rows_from(xn, rows);
            let z = mlp.forward(tape, store, xb);
            let ce = ce_partial(tape, z, yn, rows, n_batch.len());
            if use_re {
                let ent = entropy_partial(tape, z, n_batch.len());
                tape.add_scaled(ce, ent, lambda2 * (1.0 - w_l))
            } else {
                ce
            }
        });

        // L_OE over D_U^A (Eq. 6) with the per-instance Eq. 4/5 weights.
        if self.config.use_oe && !a_batch.is_empty() {
            let lambda1 = self.config.lambda1;
            loss += step.accumulate(rt, store, a_batch.len(), |tape, store, range| {
                let rows = &a_batch[range];
                let xb = tape.input_rows_from(xa, rows);
                let z = mlp.forward(tape, store, xb);
                let oe = weighted_ce_partial(tape, z, ya, rows, weights, a_batch.len());
                tape.scale(oe, lambda1)
            });
        }

        clip_grad_norm(store, self.config.grad_clip);
        opt.step(store);
        loss
    }

    /// The fitted classifier.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] before a successful [`TargAd::fit`].
    pub fn classifier(&self) -> Result<&Classifier, TargAdError> {
        self.classifier.as_ref().ok_or(TargAdError::NotFitted)
    }

    /// The candidate-selection output of the last fit.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] before a successful [`TargAd::fit`].
    pub fn selection(&self) -> Result<&CandidateSelection, TargAdError> {
        self.selection.as_ref().ok_or(TargAdError::NotFitted)
    }

    /// Training telemetry of the last fit.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Target-anomaly scores (Eq. 9) for each row of `x`.
    ///
    /// The forward pass runs on this model's [`Runtime`]; results are
    /// bit-identical at any worker count.
    ///
    /// # Errors
    /// [`TargAdError::NotFitted`] / [`TargAdError::DimMismatch`].
    pub fn try_score_matrix(&self, x: &Matrix) -> Result<Vec<f64>, TargAdError> {
        let clf = self.classifier()?;
        if x.cols() != clf.input_dim() {
            return Err(TargAdError::DimMismatch {
                expected: clf.input_dim(),
                got: x.cols(),
            });
        }
        Ok(clf.target_scores_rt(x, &self.runtime))
    }

    /// Convenience: scores a whole [`Dataset`].
    ///
    /// # Errors
    /// Same contract as [`TargAd::try_score_matrix`].
    pub fn try_score_dataset(&self, dataset: &Dataset) -> Result<Vec<f64>, TargAdError> {
        self.try_score_matrix(&dataset.features)
    }

    /// Target-anomaly scores (Eq. 9) for each row of `x`.
    ///
    /// # Panics
    /// Panics when unfitted or on a dimensionality mismatch.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_score_matrix`, which returns a typed error"
    )]
    pub fn score_matrix(&self, x: &Matrix) -> Vec<f64> {
        self.try_score_matrix(x).expect("TargAd::score_matrix")
    }

    /// Convenience: scores a whole [`Dataset`].
    ///
    /// # Panics
    /// Panics when unfitted or on a dimensionality mismatch.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_score_dataset`, which returns a typed error"
    )]
    pub fn score_dataset(&self, dataset: &Dataset) -> Vec<f64> {
        self.try_score_dataset(dataset)
            .expect("TargAd::score_dataset")
    }
}

impl Detector for TargAd {
    fn name(&self) -> &'static str {
        "TargAD"
    }

    fn fit(&mut self, train: &TrainView, seed: u64) -> Result<(), TargAdError> {
        self.fit_view(train, seed)
    }

    /// # Panics
    /// Panics when called before a successful fit (the [`Detector::score`]
    /// contract); [`TargAd::try_score_matrix`] is the fallible variant.
    fn score(&self, x: &Matrix) -> Vec<f64> {
        self.try_score_matrix(x)
            .expect("TargAd: score before successful fit")
    }

    fn fit_traced(
        &mut self,
        train: &TrainView,
        seed: u64,
        probe: &Matrix,
        trace: &mut dyn FnMut(usize, Vec<f64>),
    ) -> Result<(), TargAdError> {
        let runtime = self.runtime;
        self.fit_view_with_monitor(train, seed, |epoch, clf| {
            trace(epoch, clf.target_scores_rt(probe, &runtime));
        })
    }
}

/// Builds a one-hot matrix with ones at `offset + code[i]`.
fn one_hot_rows(codes: &[usize], offset: usize, width: usize) -> Matrix {
    let mut m = Matrix::zeros(codes.len(), width);
    for (r, &c) in codes.iter().enumerate() {
        m[(r, offset + c)] = 1.0;
    }
    m
}

/// `(max − v) / (max − min)` normalization shared by Eq. 4 and Eq. 5
/// (all-ones when the values are degenerate).
fn normalize_inverted(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = stats::max(values);
    let min = stats::min(values);
    if max - min <= f64::EPSILON {
        return vec![1.0; values.len()];
    }
    values.iter().map(|&v| (max - v) / (max - min)).collect()
}

fn record_weight_means(history: &mut TrainHistory, truth: &[usize], weights: &[f64]) {
    let mean_of = |code: usize| -> f64 {
        let vals: Vec<f64> = truth
            .iter()
            .zip(weights)
            .filter(|(&t, _)| t == code)
            .map(|(_, &w)| w)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            stats::mean(&vals)
        }
    };
    history.weight_means.push(WeightMeans {
        normal: mean_of(0),
        target: mean_of(1),
        non_target: mean_of(2),
    });
}

/// Shard partial of `−(1/n_total) Σ_rows Σ_j y_j log p_j` from logits `z`
/// and the listed rows of a constant target matrix. Partials over a shard
/// partition of a batch sum to the batch's cross-entropy mean.
fn ce_partial(tape: &mut Tape, z: Var, targets: &Matrix, rows: &[usize], n_total: usize) -> Var {
    let n = n_total.max(1) as f64;
    let y = tape.input_rows_from(targets, rows);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(y, lp);
    let total = tape.sum_all(prod);
    tape.scale(total, -1.0 / n)
}

/// Weighted variant of [`ce_partial`] (Eq. 6): row `i` of the shard is
/// weighted by `weights[rows[i]]`, gathered straight into a pooled tape
/// input (no per-step `Vec` of weights).
fn weighted_ce_partial(
    tape: &mut Tape,
    z: Var,
    targets: &Matrix,
    rows: &[usize],
    weights: &[f64],
    n_total: usize,
) -> Var {
    let n = n_total.max(1) as f64;
    let y = tape.input_rows_from(targets, rows);
    let w = tape.input_gather_col(weights, rows);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(y, lp);
    let per_row = tape.row_sum(prod);
    let weighted = tape.mul_col_broadcast(per_row, w);
    let total = tape.sum_all(weighted);
    tape.scale(total, -1.0 / n)
}

/// Shard partial of the mean entropy `H(p) = −Σ p log p` of the softmax of
/// logits `z`: the shard's entropy sum divided by the full batch size.
fn entropy_partial(tape: &mut Tape, z: Var, n_total: usize) -> Var {
    let p = tape.softmax_rows(z);
    let lp = tape.log_softmax_rows(z);
    let prod = tape.mul(p, lp);
    let rows = tape.row_sum(prod);
    let sum = tape.sum_div(rows, n_total.max(1) as f64);
    tape.scale(sum, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use targad_data::GeneratorSpec;
    use targad_metrics::{auroc, average_precision};

    fn fitted_model(seed: u64) -> (TargAd, targad_data::DatasetBundle) {
        let bundle = GeneratorSpec::quick_demo().generate(seed);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, seed).expect("fit succeeds");
        (model, bundle)
    }

    #[test]
    fn fit_rejects_empty_labeled_set() {
        let bundle = GeneratorSpec::quick_demo().generate(1);
        let mut unlabeled = bundle.train.clone();
        unlabeled.labeled.iter_mut().for_each(|l| *l = false);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        assert_eq!(
            model.fit(&unlabeled, 1),
            Err(TargAdError::NoLabeledAnomalies)
        );
    }

    #[test]
    fn unfitted_model_errors() {
        let model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        assert_eq!(model.classifier().err(), Some(TargAdError::NotFitted));
        assert_eq!(
            model.try_score_matrix(&Matrix::ones(1, 12)).err(),
            Some(TargAdError::NotFitted)
        );
    }

    #[test]
    fn dim_mismatch_detected() {
        let (model, _) = fitted_model(2);
        assert!(matches!(
            model.try_score_matrix(&Matrix::ones(1, 5)),
            Err(TargAdError::DimMismatch {
                expected: 12,
                got: 5
            })
        ));
    }

    #[test]
    fn detects_target_anomalies_well_above_chance() {
        let (model, bundle) = fitted_model(3);
        let scores = model.try_score_dataset(&bundle.test).unwrap();
        let labels = bundle.test.target_labels();
        let prevalence = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        let ap = average_precision(&scores, &labels);
        let roc = auroc(&scores, &labels);
        assert!(ap > 3.0 * prevalence, "AP {ap} vs prevalence {prevalence}");
        assert!(roc > 0.8, "AUROC {roc}");
    }

    #[test]
    fn scores_are_valid_probabilities() {
        let (model, bundle) = fitted_model(4);
        let scores = model.try_score_dataset(&bundle.test).unwrap();
        assert!(scores
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s) && s.is_finite()));
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let (model, bundle) = fitted_model(5);
        let clf = model.classifier().unwrap();
        let p = clf.probabilities(&bundle.test.features);
        assert_eq!(p.cols(), clf.m() + clf.k());
        for r in 0..p.rows().min(50) {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn history_records_all_epochs() {
        let (model, _) = fitted_model(6);
        let h = model.history();
        let epochs = model.config().clf_epochs;
        assert_eq!(h.clf_loss.len(), epochs);
        assert_eq!(h.weight_means.len(), epochs);
        assert!(!h.final_weights.is_empty());
        assert!(!h.ae_loss.is_empty());
        let comp = h.candidate_composition;
        assert_eq!(
            comp.normal + comp.target + comp.non_target,
            model.selection().unwrap().anomaly_candidates.len()
        );
    }

    #[test]
    fn loss_decreases_during_training() {
        let (model, _) = fitted_model(7);
        let loss = &model.history().clf_loss;
        let early = loss[..3].iter().sum::<f64>() / 3.0;
        let late = loss[loss.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late < early,
            "loss did not decrease: early {early}, late {late}"
        );
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        let (model, _) = fitted_model(8);
        assert!(model
            .history()
            .final_weights
            .iter()
            .all(|&(_, w)| (0.0..=1.0).contains(&w)));
    }

    #[test]
    fn non_targets_gain_weight_over_training() {
        // Fig. 5a's headline effect: by the final epochs the mean weight of
        // true non-target anomalies exceeds the mean weight of normal
        // instances hiding among the candidates.
        let (model, _) = fitted_model(9);
        let last = model.history().weight_means.last().unwrap();
        if !last.non_target.is_nan() && !last.normal.is_nan() {
            assert!(
                last.non_target > last.normal,
                "non-target {} vs normal {}",
                last.non_target,
                last.normal
            );
        }
    }

    #[test]
    fn monitor_is_called_every_epoch() {
        let bundle = GeneratorSpec::quick_demo().generate(10);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        let mut calls = Vec::new();
        model
            .fit_with_monitor(&bundle.train, 10, |epoch, clf| {
                assert_eq!(clf.input_dim(), 12);
                calls.push(epoch);
            })
            .expect("fit");
        assert_eq!(calls, (0..model.config().clf_epochs).collect::<Vec<_>>());
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let bundle = GeneratorSpec::quick_demo().generate(11);
        let mut a = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        a.fit(&bundle.train, 42).unwrap();
        let mut b = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        b.fit(&bundle.train, 42).unwrap();
        assert_eq!(
            a.try_score_dataset(&bundle.test).unwrap(),
            b.try_score_dataset(&bundle.test).unwrap()
        );
    }

    #[test]
    fn ablation_flags_change_the_model() {
        let bundle = GeneratorSpec::quick_demo().generate(12);
        let mut full = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        full.fit(&bundle.train, 1).unwrap();
        let mut cfg = TargAdConfig::fast();
        cfg.use_oe = false;
        cfg.use_re = false;
        let mut ablated = TargAd::try_new(cfg).expect("valid config");
        ablated.fit(&bundle.train, 1).unwrap();
        assert_ne!(
            full.try_score_dataset(&bundle.test).unwrap(),
            ablated.try_score_dataset(&bundle.test).unwrap()
        );
    }
}
