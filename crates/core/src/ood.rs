//! Out-of-distribution strategies for three-way identification (§III-C,
//! Table IV).
//!
//! TargAD first separates normal instances via the probability-mass rule
//! `Σ_{j>m} p_j > k/(m+k)`; the remaining (anomalous) instances are split
//! into target vs non-target anomalies by thresholding an OOD score
//! computed from the *target block* of the logits `z_{1..m}`:
//!
//! - **MSP** (maximum softmax probability, Hendrycks & Gimpel): target
//!   anomalies receive a confident target-class prediction, non-targets a
//!   near-uniform one.
//! - **ES** (energy score, Liu et al.): the (negated) free energy
//!   `logsumexp(z_{1..m})` is larger for in-distribution (target) logits.
//! - **ED** (energy discrepancy): adaptation of SAFE-Student's
//!   teacher/student energy-discrepancy idea to the single-classifier
//!   setting — `logsumexp(z_{1..m}) − mean(z_{1..m})`, which keeps the
//!   energy's nature while reflecting the whole logit distribution: exactly
//!   `ln m` for uniform logits and larger the more peaked the block is.

use targad_linalg::Matrix;
use targad_metrics::ConfusionMatrix;

use crate::model::Classifier;

/// The three OOD strategies of Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OodStrategy {
    /// Maximum softmax probability.
    Msp,
    /// Energy score.
    EnergyScore,
    /// Energy discrepancy.
    EnergyDiscrepancy,
}

impl OodStrategy {
    /// All strategies in Table IV order.
    pub fn all() -> [OodStrategy; 3] {
        [
            OodStrategy::Msp,
            OodStrategy::EnergyScore,
            OodStrategy::EnergyDiscrepancy,
        ]
    }

    /// Name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OodStrategy::Msp => "MSP",
            OodStrategy::EnergyScore => "ES",
            OodStrategy::EnergyDiscrepancy => "ED",
        }
    }

    /// "Target-likeness" score of one logit row; larger means more likely a
    /// *target* (in-distribution) anomaly rather than a non-target one.
    pub fn target_score(self, logits: &[f64], m: usize) -> f64 {
        let block = &logits[..m];
        match self {
            OodStrategy::Msp => {
                // Softmax over the full output, max over the target block —
                // consistent with Eq. 9.
                let max_all = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = logits.iter().map(|&z| (z - max_all).exp()).sum();
                block
                    .iter()
                    .map(|&z| (z - max_all).exp() / denom)
                    .fold(f64::NEG_INFINITY, f64::max)
            }
            OodStrategy::EnergyScore => logsumexp(block),
            OodStrategy::EnergyDiscrepancy => {
                let mean = block.iter().sum::<f64>() / m as f64;
                logsumexp(block) - mean
            }
        }
    }
}

fn logsumexp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max + values.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
}

/// Three-way prediction: 0 = normal, 1 = target anomaly, 2 = non-target
/// anomaly. `tau` is the strategy's target-likeness threshold.
pub fn classify_three_way(
    clf: &Classifier,
    x: &Matrix,
    strategy: OodStrategy,
    tau: f64,
) -> Vec<usize> {
    let logits = clf.logits(x);
    let probs = logits.softmax_rows();
    (0..x.rows())
        .map(|r| {
            if clf.is_normal_row(probs.row(r)) {
                0
            } else if strategy.target_score(logits.row(r), clf.m()) >= tau {
                1
            } else {
                2
            }
        })
        .collect()
}

/// Calibrates the target/non-target threshold on validation data by
/// maximizing macro-F1 over a grid of candidate thresholds drawn from the
/// validation scores of predicted-anomalous rows.
///
/// Returns the chosen threshold (0.0 if validation has no anomalous
/// predictions — any tau then yields the same all-normal labeling).
pub fn calibrate_threshold(
    clf: &Classifier,
    val_x: &Matrix,
    val_truth3: &[usize],
    strategy: OodStrategy,
) -> f64 {
    assert_eq!(
        val_x.rows(),
        val_truth3.len(),
        "calibrate_threshold: length mismatch"
    );
    let logits = clf.logits(val_x);
    let probs = logits.softmax_rows();
    let anomalous: Vec<usize> = (0..val_x.rows())
        .filter(|&r| !clf.is_normal_row(probs.row(r)))
        .collect();
    if anomalous.is_empty() {
        return 0.0;
    }
    let mut scores: Vec<f64> = anomalous
        .iter()
        .map(|&r| strategy.target_score(logits.row(r), clf.m()))
        .collect();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN OOD score"));
    scores.dedup();

    let mut best_tau = scores[0];
    let mut best_f1 = f64::NEG_INFINITY;
    // Midpoints between consecutive distinct scores, plus the extremes.
    let mut candidates = vec![scores[0] - 1e-9];
    candidates.extend(scores.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    candidates.push(scores[scores.len() - 1] + 1e-9);

    for tau in candidates {
        let pred = classify_three_way(clf, val_x, strategy, tau);
        let cm = ConfusionMatrix::from_predictions(val_truth3, &pred, 3);
        let f1 = cm.macro_avg().f1;
        if f1 > best_f1 {
            best_f1 = f1;
            best_tau = tau;
        }
    }
    best_tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    #[test]
    fn strategy_names_and_order() {
        let names: Vec<&str> = OodStrategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["MSP", "ES", "ED"]);
    }

    #[test]
    fn msp_is_a_probability() {
        let logits = [2.0, -1.0, 0.5, 0.0];
        let s = OodStrategy::Msp.target_score(&logits, 2);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn energy_discrepancy_is_ln_m_for_uniform_logits() {
        for m in 2..6 {
            let logits = vec![0.7; m + 3];
            let s = OodStrategy::EnergyDiscrepancy.target_score(&logits, m);
            assert!((s - (m as f64).ln()).abs() < 1e-12, "m={m}: {s}");
        }
    }

    #[test]
    fn peaked_logits_score_higher_than_uniform() {
        let uniform = [0.0, 0.0, 0.0, 0.0, 0.0];
        let peaked = [6.0, 0.0, 0.0, 0.0, 0.0];
        for strategy in OodStrategy::all() {
            let u = strategy.target_score(&uniform, 3);
            let p = strategy.target_score(&peaked, 3);
            assert!(p > u, "{}: peaked {p} <= uniform {u}", strategy.name());
        }
    }

    #[test]
    fn energy_score_is_shift_sensitive_but_ed_is_not() {
        let logits = [1.0, 2.0, 0.0];
        let shifted = [4.0, 5.0, 3.0];
        let es = OodStrategy::EnergyScore;
        assert!(es.target_score(&shifted, 3) > es.target_score(&logits, 3));
        let ed = OodStrategy::EnergyDiscrepancy;
        assert!(
            (ed.target_score(&shifted, 3) - ed.target_score(&logits, 3)).abs() < 1e-12,
            "ED should be shift-invariant"
        );
    }

    #[test]
    fn three_way_classification_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(31);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, 31).expect("fit");
        let clf = model.classifier().unwrap();

        for strategy in OodStrategy::all() {
            let tau = calibrate_threshold(
                clf,
                &bundle.val.features,
                &bundle.val.three_way_labels(),
                strategy,
            );
            let pred = classify_three_way(clf, &bundle.test.features, strategy, tau);
            assert_eq!(pred.len(), bundle.test.len());
            assert!(pred.iter().all(|&p| p <= 2));
            let cm = ConfusionMatrix::from_predictions(&bundle.test.three_way_labels(), &pred, 3);
            // Normal recall must be solid; target identification well above
            // chance.
            let normal = cm.class_report(0);
            assert!(
                normal.recall > 0.7,
                "{}: normal recall {}",
                strategy.name(),
                normal.recall
            );
            assert!(
                cm.accuracy() > 0.6,
                "{}: accuracy {}",
                strategy.name(),
                cm.accuracy()
            );
        }
    }
}
