//! Out-of-distribution strategies for three-way identification (§III-C,
//! Table IV).
//!
//! TargAD first separates normal instances via the probability-mass rule
//! `Σ_{j>m} p_j > k/(m+k)`; the remaining (anomalous) instances are split
//! into target vs non-target anomalies by thresholding an OOD score
//! computed from the *target block* of the logits `z_{1..m}`:
//!
//! - **MSP** (maximum softmax probability, Hendrycks & Gimpel): target
//!   anomalies receive a confident target-class prediction, non-targets a
//!   near-uniform one.
//! - **ES** (energy score, Liu et al.): the (negated) free energy
//!   `logsumexp(z_{1..m})` is larger for in-distribution (target) logits.
//! - **ED** (energy discrepancy): adaptation of SAFE-Student's
//!   teacher/student energy-discrepancy idea to the single-classifier
//!   setting — `logsumexp(z_{1..m}) − mean(z_{1..m})`, which keeps the
//!   energy's nature while reflecting the whole logit distribution: exactly
//!   `ln m` for uniform logits and larger the more peaked the block is.

use targad_linalg::Matrix;
use targad_metrics::ConfusionMatrix;

use crate::model::Classifier;
use crate::verdict::VerdictClass;

/// The three OOD strategies of Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OodStrategy {
    /// Maximum softmax probability.
    Msp,
    /// Energy score.
    EnergyScore,
    /// Energy discrepancy.
    EnergyDiscrepancy,
}

impl OodStrategy {
    /// All strategies in Table IV order.
    pub fn all() -> [OodStrategy; 3] {
        [
            OodStrategy::Msp,
            OodStrategy::EnergyScore,
            OodStrategy::EnergyDiscrepancy,
        ]
    }

    /// Name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            OodStrategy::Msp => "MSP",
            OodStrategy::EnergyScore => "ES",
            OodStrategy::EnergyDiscrepancy => "ED",
        }
    }

    /// Position in [`OodStrategy::all`] (Table IV order) — the index used
    /// by [`crate::verdict::ThresholdCache`].
    pub fn index(self) -> usize {
        match self {
            OodStrategy::Msp => 0,
            OodStrategy::EnergyScore => 1,
            OodStrategy::EnergyDiscrepancy => 2,
        }
    }

    /// Parses a wire/CLI name, case-insensitively: `msp`, `es` /
    /// `energy_score`, `ed` / `energy_discrepancy`.
    pub fn parse(name: &str) -> Option<OodStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "msp" => Some(OodStrategy::Msp),
            "es" | "energy_score" => Some(OodStrategy::EnergyScore),
            "ed" | "energy_discrepancy" => Some(OodStrategy::EnergyDiscrepancy),
            _ => None,
        }
    }

    /// "Target-likeness" score of one logit row; larger means more likely a
    /// *target* (in-distribution) anomaly rather than a non-target one.
    pub fn target_score(self, logits: &[f64], m: usize) -> f64 {
        let block = &logits[..m];
        match self {
            OodStrategy::Msp => {
                // Softmax over the full output, max over the target block —
                // consistent with Eq. 9.
                let max_all = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = logits.iter().map(|&z| (z - max_all).exp()).sum();
                block
                    .iter()
                    .map(|&z| (z - max_all).exp() / denom)
                    .fold(f64::NEG_INFINITY, f64::max)
            }
            OodStrategy::EnergyScore => logsumexp(block),
            OodStrategy::EnergyDiscrepancy => {
                let mean = block.iter().sum::<f64>() / m as f64;
                logsumexp(block) - mean
            }
        }
    }
}

fn logsumexp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max + values.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
}

impl OodStrategy {
    /// Single-precision twin of [`OodStrategy::target_score`], used by the
    /// f32 serving path: same formulas, same accumulation order, evaluated
    /// on the f32 logits the reduced-precision engine produced. The
    /// resulting score is compared against the f64-calibrated `tau` after
    /// widening, so calibration stays precision-independent.
    pub fn target_score_f32(self, logits: &[f32], m: usize) -> f32 {
        let block = &logits[..m];
        match self {
            OodStrategy::Msp => {
                let max_all = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let denom: f32 = logits.iter().map(|&z| (z - max_all).exp()).sum();
                block
                    .iter()
                    .map(|&z| (z - max_all).exp() / denom)
                    .fold(f32::NEG_INFINITY, f32::max)
            }
            OodStrategy::EnergyScore => logsumexp_f32(block),
            OodStrategy::EnergyDiscrepancy => {
                let mean = block.iter().sum::<f32>() / m as f32;
                logsumexp_f32(block) - mean
            }
        }
    }
}

fn logsumexp_f32(values: &[f32]) -> f32 {
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    max + values.iter().map(|&v| (v - max).exp()).sum::<f32>().ln()
}

/// One row's §III-C verdict from its logits: the Eq. 9 score and the
/// three-way class under `strategy` at threshold `tau`.
///
/// This is the single decision kernel shared by the reference path
/// ([`Classifier::verdicts`](crate::model::Classifier::verdicts)) and the
/// fused engine path
/// ([`Classifier::verdicts_rt`](crate::model::Classifier::verdicts_rt)).
/// It reproduces the exact accumulation chains of the historical
/// `softmax_rows` + `is_normal_row` + `target_scores` sequence — max over
/// the row, exponentials in ascending column order, each probability a
/// single division by the shared row sum — so both paths are bit-identical
/// to the Table IV reference.
#[inline]
pub(crate) fn verdict_of_row(
    z: &[f64],
    m: usize,
    k: usize,
    strategy: OodStrategy,
    tau: f64,
) -> (f64, VerdictClass) {
    let mx = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for &v in z {
        sum += (v - mx).exp();
    }
    // Second pass recomputes each exponential instead of storing it: exp is
    // deterministic, and this keeps the kernel allocation-free so the
    // engine's per-row finish stays zero-alloc.
    let mut best = f64::NEG_INFINITY;
    let mut normal_mass = 0.0;
    for (j, &v) in z.iter().enumerate() {
        let p = (v - mx).exp() / sum;
        if j < m {
            best = best.max(p);
        } else {
            normal_mass += p;
        }
    }
    let class = if normal_mass > k as f64 / (m + k) as f64 {
        VerdictClass::Normal
    } else if strategy.target_score(z, m) >= tau {
        VerdictClass::Target
    } else {
        VerdictClass::NonTarget
    };
    (best, class)
}

/// Single-precision twin of [`verdict_of_row`] for the f32 serving path:
/// the same normality gate, Eq. 9 score, and OOD thresholding evaluated on
/// the f32 logits, with the score widened to `f64` at the end and the
/// comparison against the (f64-calibrated) `tau` done in `f64`.
///
/// This is *not* bit-identical to the f64 kernel — the f32 path's contract
/// is ranking fidelity (AUC-PR delta and three-way verdict agreement vs the
/// oracle), asserted by the tolerance harness in `targad-bench`.
#[inline]
pub(crate) fn verdict_of_row_f32(
    z: &[f32],
    m: usize,
    k: usize,
    strategy: OodStrategy,
    tau: f64,
) -> (f64, VerdictClass) {
    let mx = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for &v in z {
        sum += (v - mx).exp();
    }
    let mut best = f32::NEG_INFINITY;
    let mut normal_mass = 0.0f32;
    for (j, &v) in z.iter().enumerate() {
        let p = (v - mx).exp() / sum;
        if j < m {
            best = best.max(p);
        } else {
            normal_mass += p;
        }
    }
    let class = if f64::from(normal_mass) > k as f64 / (m + k) as f64 {
        VerdictClass::Normal
    } else if f64::from(strategy.target_score_f32(z, m)) >= tau {
        VerdictClass::Target
    } else {
        VerdictClass::NonTarget
    };
    (f64::from(best), class)
}

/// Three-way prediction: 0 = normal, 1 = target anomaly, 2 = non-target
/// anomaly. `tau` is the strategy's target-likeness threshold.
#[deprecated(
    since = "0.1.0",
    note = "use `Classifier::verdicts` / `TargAd::try_verdict_matrix`, \
            which return a structured `ScoreOutput`"
)]
pub fn classify_three_way(
    clf: &Classifier,
    x: &Matrix,
    strategy: OodStrategy,
    tau: f64,
) -> Vec<usize> {
    clf.verdicts(x, strategy, tau).three_way_codes()
}

/// Calibrates the target/non-target threshold on validation data by
/// maximizing macro-F1 over a grid of candidate thresholds drawn from the
/// validation scores of predicted-anomalous rows.
///
/// Returns the chosen threshold (0.0 if validation has no anomalous
/// predictions — any tau then yields the same all-normal labeling).
///
/// One forward pass total: the §III-C normality gate and the per-row OOD
/// scores are computed once, and each candidate threshold only re-labels
/// the gated rows (the historical implementation re-ran the full forward
/// pass per candidate).
pub fn calibrate_tau(
    clf: &Classifier,
    val_x: &Matrix,
    val_truth3: &[usize],
    strategy: OodStrategy,
) -> f64 {
    assert_eq!(
        val_x.rows(),
        val_truth3.len(),
        "calibrate_tau: length mismatch"
    );
    let logits = clf.logits(val_x);
    let probs = logits.softmax_rows();
    let anomalous: Vec<usize> = (0..val_x.rows())
        .filter(|&r| !clf.is_normal_row(probs.row(r)))
        .collect();
    if anomalous.is_empty() {
        return 0.0;
    }
    let target_scores: Vec<f64> = anomalous
        .iter()
        .map(|&r| strategy.target_score(logits.row(r), clf.m()))
        .collect();
    let mut scores = target_scores.clone();
    scores.sort_by(|a, b| a.partial_cmp(b).expect("NaN OOD score"));
    scores.dedup();

    let mut best_tau = scores[0];
    let mut best_f1 = f64::NEG_INFINITY;
    // Midpoints between consecutive distinct scores, plus the extremes.
    let mut candidates = vec![scores[0] - 1e-9];
    candidates.extend(scores.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    candidates.push(scores[scores.len() - 1] + 1e-9);

    // Ungated rows are "normal" under every candidate; only the gated rows
    // flip between target and non-target as tau sweeps.
    let mut pred = vec![0usize; val_x.rows()];
    for tau in candidates {
        for (&r, &s) in anomalous.iter().zip(&target_scores) {
            pred[r] = if s >= tau { 1 } else { 2 };
        }
        let cm = ConfusionMatrix::from_predictions(val_truth3, &pred, 3);
        let f1 = cm.macro_avg().f1;
        if f1 > best_f1 {
            best_f1 = f1;
            best_tau = tau;
        }
    }
    best_tau
}

/// Former name of [`calibrate_tau`].
#[deprecated(
    since = "0.1.0",
    note = "use `calibrate_tau`, or `TargAd::calibrate_thresholds` to \
            cache every strategy's threshold on the fitted model"
)]
pub fn calibrate_threshold(
    clf: &Classifier,
    val_x: &Matrix,
    val_truth3: &[usize],
    strategy: OodStrategy,
) -> f64 {
    calibrate_tau(clf, val_x, val_truth3, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    #[test]
    fn strategy_names_and_order() {
        let names: Vec<&str> = OodStrategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["MSP", "ES", "ED"]);
    }

    #[test]
    fn msp_is_a_probability() {
        let logits = [2.0, -1.0, 0.5, 0.0];
        let s = OodStrategy::Msp.target_score(&logits, 2);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn energy_discrepancy_is_ln_m_for_uniform_logits() {
        for m in 2..6 {
            let logits = vec![0.7; m + 3];
            let s = OodStrategy::EnergyDiscrepancy.target_score(&logits, m);
            assert!((s - (m as f64).ln()).abs() < 1e-12, "m={m}: {s}");
        }
    }

    #[test]
    fn peaked_logits_score_higher_than_uniform() {
        let uniform = [0.0, 0.0, 0.0, 0.0, 0.0];
        let peaked = [6.0, 0.0, 0.0, 0.0, 0.0];
        for strategy in OodStrategy::all() {
            let u = strategy.target_score(&uniform, 3);
            let p = strategy.target_score(&peaked, 3);
            assert!(p > u, "{}: peaked {p} <= uniform {u}", strategy.name());
        }
    }

    #[test]
    fn energy_score_is_shift_sensitive_but_ed_is_not() {
        let logits = [1.0, 2.0, 0.0];
        let shifted = [4.0, 5.0, 3.0];
        let es = OodStrategy::EnergyScore;
        assert!(es.target_score(&shifted, 3) > es.target_score(&logits, 3));
        let ed = OodStrategy::EnergyDiscrepancy;
        assert!(
            (ed.target_score(&shifted, 3) - ed.target_score(&logits, 3)).abs() < 1e-12,
            "ED should be shift-invariant"
        );
    }

    #[test]
    fn strategy_parse_round_trips_names() {
        assert_eq!(OodStrategy::parse("msp"), Some(OodStrategy::Msp));
        assert_eq!(OodStrategy::parse("ES"), Some(OodStrategy::EnergyScore));
        assert_eq!(
            OodStrategy::parse("energy_discrepancy"),
            Some(OodStrategy::EnergyDiscrepancy)
        );
        assert_eq!(OodStrategy::parse("nope"), None);
        for (i, s) in OodStrategy::all().into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn deprecated_shims_match_the_new_surface() {
        let bundle = GeneratorSpec::quick_demo().generate(29);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, 29).expect("fit");
        let clf = model.classifier().unwrap();
        let truth = bundle.val.three_way_labels();
        #[allow(deprecated)]
        for strategy in OodStrategy::all() {
            let tau = calibrate_threshold(clf, &bundle.val.features, &truth, strategy);
            assert_eq!(
                tau,
                calibrate_tau(clf, &bundle.val.features, &truth, strategy)
            );
            let pred = classify_three_way(clf, &bundle.test.features, strategy, tau);
            assert_eq!(
                pred,
                clf.verdicts(&bundle.test.features, strategy, tau)
                    .three_way_codes()
            );
        }
    }

    #[test]
    fn three_way_classification_end_to_end() {
        let bundle = GeneratorSpec::quick_demo().generate(31);
        let mut model = TargAd::try_new(TargAdConfig::fast()).expect("valid config");
        model.fit(&bundle.train, 31).expect("fit");
        let clf = model.classifier().unwrap();

        for strategy in OodStrategy::all() {
            let tau = calibrate_tau(
                clf,
                &bundle.val.features,
                &bundle.val.three_way_labels(),
                strategy,
            );
            let pred = clf
                .verdicts(&bundle.test.features, strategy, tau)
                .three_way_codes();
            assert_eq!(pred.len(), bundle.test.len());
            assert!(pred.iter().all(|&p| p <= 2));
            let cm = ConfusionMatrix::from_predictions(&bundle.test.three_way_labels(), &pred, 3);
            // Normal recall must be solid; target identification well above
            // chance.
            let normal = cm.class_report(0);
            assert!(
                normal.recall > 0.7,
                "{}: normal recall {}",
                strategy.name(),
                normal.recall
            );
            assert!(
                cm.accuracy() > 0.6,
                "{}: accuracy {}",
                strategy.name(),
                cm.accuracy()
            );
        }
    }
}
