//! Trained-classifier persistence.
//!
//! A deployment needs to train once and score for days (the paper's SQB
//! scenario scores ~150 k merchants daily). This module serializes the
//! trained classifier `f` — architecture, `m`, `k`, and all weights — to a
//! self-describing plain-text format (no serializer dependency), and
//! reloads it into a scoring-ready [`Classifier`].
//!
//! Format (line oriented):
//!
//! ```text
//! targad-classifier v2
//! m <m>
//! k <k>
//! dims <d0> <d1> … <dn>
//! tau <strategy> <threshold>        (v2 only; zero or more lines)
//! matrix <rows> <cols>
//! <row-major f64 values, one row per line>
//! …
//! ```
//!
//! v2 extends v1 with optional `tau` lines persisting the per-strategy
//! §III-C thresholds calibrated on the fitted model
//! ([`crate::ThresholdCache`]), so a serving process restores a fully
//! decision-ready model and does zero calibration work per request. v1
//! snapshots still load (with an empty cache).
//!
//! **Deprecation note:** the text format is retained for interop
//! (human-readable diffs, cross-version exchange), but new persistence
//! users should prefer the binary **v3** format in `targad-store`, which
//! loads ~orders of magnitude faster and supports zero-copy `mmap`ed
//! weights. `targad-store` converts both directions (v2 text ↔ v3
//! binary), bit-identically.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use targad_linalg::Matrix;

use crate::model::Classifier;
use crate::ood::OodStrategy;
use crate::verdict::ThresholdCache;

const MAGIC_V1: &str = "targad-classifier v1";
const MAGIC_V2: &str = "targad-classifier v2";

/// Wire name of a strategy in `tau` lines (lowercase, parseable by
/// [`OodStrategy::parse`]).
fn tau_key(strategy: OodStrategy) -> &'static str {
    match strategy {
        OodStrategy::Msp => "msp",
        OodStrategy::EnergyScore => "es",
        OodStrategy::EnergyDiscrepancy => "ed",
    }
}

/// Serializes a trained classifier to the v1 text format (no thresholds).
pub fn to_string(clf: &Classifier) -> String {
    serialize(clf, None)
}

/// Serializes a trained classifier *plus* its calibrated thresholds to the
/// v2 text format.
pub fn to_string_with_thresholds(clf: &Classifier, thresholds: &ThresholdCache) -> String {
    serialize(clf, Some(thresholds))
}

fn serialize(clf: &Classifier, thresholds: Option<&ThresholdCache>) -> String {
    let mut out = String::new();
    let magic = if thresholds.is_some() {
        MAGIC_V2
    } else {
        MAGIC_V1
    };
    let _ = writeln!(out, "{magic}");
    let _ = writeln!(out, "m {}", clf.m());
    let _ = writeln!(out, "k {}", clf.k());
    let dims: Vec<String> = clf.layer_dims().iter().map(|d| d.to_string()).collect();
    let _ = writeln!(out, "dims {}", dims.join(" "));
    if let Some(cache) = thresholds {
        for strategy in OodStrategy::all() {
            if let Some(tau) = cache.get(strategy) {
                let _ = writeln!(out, "tau {} {tau:?}", tau_key(strategy));
            }
        }
    }
    for matrix in clf.parameter_matrices() {
        let _ = writeln!(out, "matrix {} {}", matrix.rows(), matrix.cols());
        for row in matrix.iter_rows() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
    }
    out
}

/// Parses a v1 or v2 snapshot back into a scoring-ready classifier,
/// discarding any persisted thresholds (see
/// [`from_string_with_thresholds`]).
///
/// # Errors
/// `io::ErrorKind::InvalidData` on malformed content or shape mismatches.
pub fn from_string(text: &str) -> io::Result<Classifier> {
    from_string_with_thresholds(text).map(|(clf, _)| clf)
}

/// Parses a v1 or v2 snapshot into a classifier plus its persisted
/// threshold cache (empty for v1).
///
/// # Errors
/// `io::ErrorKind::InvalidData` on malformed content or shape mismatches.
pub fn from_string_with_thresholds(text: &str) -> io::Result<(Classifier, ThresholdCache)> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    let header = lines.next();
    let v2 = match header {
        Some(MAGIC_V1) => false,
        Some(MAGIC_V2) => true,
        _ => return Err(bad(format!("missing `{MAGIC_V1}`/`{MAGIC_V2}` header"))),
    };
    let m = parse_kv(lines.next(), "m").map_err(bad)?;
    let k = parse_kv(lines.next(), "k").map_err(bad)?;
    let dims_line = lines
        .next()
        .ok_or_else(|| bad("missing dims line".into()))?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| bad(format!("expected `dims …`, got `{dims_line}`")))?
        .split_whitespace()
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|e| bad(format!("bad dim `{tok}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() < 2 {
        return Err(bad("dims must list at least input and output".into()));
    }
    if *dims.last().expect("nonempty") != m + k {
        return Err(bad(format!(
            "output dim {} does not match m + k = {}",
            dims.last().expect("nonempty"),
            m + k
        )));
    }

    let mut thresholds = ThresholdCache::default();
    let mut matrices = Vec::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let header: Vec<&str> = line.split_whitespace().collect();
        if v2 && header.len() == 3 && header[0] == "tau" {
            let strategy = OodStrategy::parse(header[1])
                .ok_or_else(|| bad(format!("unknown OOD strategy `{}`", header[1])))?;
            let tau: f64 = header[2]
                .parse()
                .map_err(|e| bad(format!("bad tau `{}`: {e}", header[2])))?;
            thresholds.set(strategy, tau);
            continue;
        }
        if header.len() != 3 || header[0] != "matrix" {
            return Err(bad(format!("expected `matrix <r> <c>`, got `{line}`")));
        }
        let rows: usize = header[1]
            .parse()
            .map_err(|e| bad(format!("bad rows: {e}")))?;
        let cols: usize = header[2]
            .parse()
            .map_err(|e| bad(format!("bad cols: {e}")))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let row_line = lines.next().ok_or_else(|| bad("truncated matrix".into()))?;
            for tok in row_line.split_whitespace() {
                data.push(
                    tok.parse::<f64>()
                        .map_err(|e| bad(format!("bad value `{tok}`: {e}")))?,
                );
            }
        }
        if data.len() != rows * cols {
            return Err(bad(format!(
                "matrix body has {} values, expected {}",
                data.len(),
                rows * cols
            )));
        }
        matrices.push(Matrix::from_vec(rows, cols, data));
    }

    // Check every parsed matrix against the declared architecture, then
    // build the classifier directly over the parsed parameters (no
    // skeleton allocation, no second copy of the weights).
    let expected = 2 * (dims.len() - 1);
    if matrices.len() != expected {
        return Err(bad(format!(
            "expected {expected} parameter matrices, got {}",
            matrices.len()
        )));
    }
    for (i, pair) in dims.windows(2).enumerate() {
        let (w, b) = (&matrices[2 * i], &matrices[2 * i + 1]);
        if w.shape() != (pair[0], pair[1]) || b.shape() != (1, pair[1]) {
            return Err(bad(format!(
                "layer {i}: shapes w{:?} b{:?} do not match dims {pair:?}",
                w.shape(),
                b.shape()
            )));
        }
    }
    let clf = Classifier::from_parameters(matrices, m, k).map_err(bad)?;
    Ok((clf, thresholds))
}

/// Writes a classifier to `path` (v1, no thresholds).
///
/// Prefer `targad_store::save` (binary v3) for new persistence users: it
/// also carries the calibrated thresholds and precision hint, and loads
/// with zero weight-byte copies via `mmap`. This text writer is retained
/// for interop.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save(clf: &Classifier, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(clf))
}

/// Writes a classifier plus its calibrated thresholds to `path` (v2).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_with_thresholds(
    clf: &Classifier,
    thresholds: &ThresholdCache,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    fs::write(path, to_string_with_thresholds(clf, thresholds))
}

/// Loads a classifier from `path`.
///
/// Prefer `targad_store::load` (binary v3) for new persistence users —
/// it restores thresholds too and `mmap`s the weights instead of parsing
/// decimal text. This text loader is retained for interop.
///
/// # Errors
/// Propagates filesystem errors and format errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Classifier> {
    from_string(&fs::read_to_string(path)?)
}

/// Loads a classifier plus its persisted thresholds from `path`.
///
/// # Errors
/// Propagates filesystem errors and format errors.
pub fn load_with_thresholds(path: impl AsRef<Path>) -> io::Result<(Classifier, ThresholdCache)> {
    from_string_with_thresholds(&fs::read_to_string(path)?)
}

fn parse_kv(line: Option<&str>, key: &str) -> Result<usize, String> {
    let line = line.ok_or_else(|| format!("missing `{key}` line"))?;
    let value = line
        .strip_prefix(&format!("{key} "))
        .ok_or_else(|| format!("expected `{key} <n>`, got `{line}`"))?;
    value.parse().map_err(|e| format!("bad `{key}` value: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    fn trained() -> (TargAd, targad_data::DatasetBundle) {
        let bundle = GeneratorSpec::quick_demo().generate(55);
        let mut cfg = TargAdConfig::fast();
        cfg.ae_epochs = 4;
        cfg.clf_epochs = 6;
        let mut model = TargAd::try_new(cfg).expect("valid config");
        model.fit(&bundle.train, 55).expect("fit");
        (model, bundle)
    }

    #[test]
    fn round_trip_preserves_scores_exactly() {
        let (model, bundle) = trained();
        let clf = model.classifier().unwrap();
        let text = to_string(clf);
        let restored = from_string(&text).expect("parse");
        assert_eq!(restored.m(), clf.m());
        assert_eq!(restored.k(), clf.k());
        assert_eq!(
            restored.target_scores(&bundle.test.features),
            clf.target_scores(&bundle.test.features)
        );
    }

    #[test]
    fn file_round_trip() {
        let (model, bundle) = trained();
        let path = std::env::temp_dir().join("targad_snapshot_test.txt");
        save(model.classifier().unwrap(), &path).expect("save");
        let restored = load(&path).expect("load");
        assert_eq!(
            restored.target_scores(&bundle.test.features),
            model
                .classifier()
                .unwrap()
                .target_scores(&bundle.test.features)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(from_string("").is_err());
        assert!(from_string("wrong header\n").is_err());
        assert!(from_string(&format!("{MAGIC_V1}\nm 2\nk 2\ndims 4 3\n")).is_err()); // 3 != m+k
        assert!(from_string(&format!(
            "{MAGIC_V1}\nm 2\nk 1\ndims 4 3\nmatrix 2 2\n1 2\n"
        ))
        .is_err());
        // tau lines are a v2-only construct with a known strategy key.
        assert!(from_string(&format!("{MAGIC_V1}\nm 2\nk 1\ndims 4 3\ntau msp 0.5\n")).is_err());
        assert!(from_string(&format!("{MAGIC_V2}\nm 2\nk 1\ndims 4 3\ntau bogus 0.5\n")).is_err());
    }

    #[test]
    fn v2_round_trip_preserves_thresholds_exactly() {
        let (model, bundle) = trained();
        let clf = model.classifier().unwrap();
        let cache = ThresholdCache::complete(0.125, -3.5, 1.0625e-3);
        let text = to_string_with_thresholds(clf, &cache);
        let (restored, restored_cache) = from_string_with_thresholds(&text).expect("parse");
        assert_eq!(restored_cache, cache);
        assert_eq!(
            restored.target_scores(&bundle.test.features),
            clf.target_scores(&bundle.test.features)
        );
        // A v1 snapshot parses with an empty cache.
        let (_, empty) = from_string_with_thresholds(&to_string(clf)).expect("parse v1");
        assert!(empty.is_empty());
        // Partial caches persist too.
        let mut partial = ThresholdCache::default();
        partial.set(crate::OodStrategy::EnergyScore, 0.75);
        let (_, round) =
            from_string_with_thresholds(&to_string_with_thresholds(clf, &partial)).expect("parse");
        assert_eq!(round, partial);
    }

    #[test]
    fn rejects_wrong_parameter_count() {
        let (model, _) = trained();
        let text = to_string(model.classifier().unwrap());
        // Drop the final matrix block.
        let cut = text.rfind("matrix").unwrap();
        assert!(from_string(&text[..cut]).is_err());
    }
}
