//! Trained-classifier persistence.
//!
//! A deployment needs to train once and score for days (the paper's SQB
//! scenario scores ~150 k merchants daily). This module serializes the
//! trained classifier `f` — architecture, `m`, `k`, and all weights — to a
//! self-describing plain-text format (no serializer dependency), and
//! reloads it into a scoring-ready [`Classifier`].
//!
//! Format (line oriented):
//!
//! ```text
//! targad-classifier v1
//! m <m>
//! k <k>
//! dims <d0> <d1> … <dn>
//! matrix <rows> <cols>
//! <row-major f64 values, one row per line>
//! …
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use targad_linalg::{rng as lrng, Matrix};

use crate::model::Classifier;

const MAGIC: &str = "targad-classifier v1";

/// Serializes a trained classifier to the v1 text format.
pub fn to_string(clf: &Classifier) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "m {}", clf.m());
    let _ = writeln!(out, "k {}", clf.k());
    let dims: Vec<String> = clf.layer_dims().iter().map(|d| d.to_string()).collect();
    let _ = writeln!(out, "dims {}", dims.join(" "));
    for matrix in clf.parameter_matrices() {
        let _ = writeln!(out, "matrix {} {}", matrix.rows(), matrix.cols());
        for row in matrix.iter_rows() {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
    }
    out
}

/// Parses the v1 text format back into a scoring-ready classifier.
///
/// # Errors
/// `io::ErrorKind::InvalidData` on malformed content or shape mismatches.
pub fn from_string(text: &str) -> io::Result<Classifier> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(bad(format!("missing `{MAGIC}` header")));
    }
    let m = parse_kv(lines.next(), "m").map_err(bad)?;
    let k = parse_kv(lines.next(), "k").map_err(bad)?;
    let dims_line = lines
        .next()
        .ok_or_else(|| bad("missing dims line".into()))?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| bad(format!("expected `dims …`, got `{dims_line}`")))?
        .split_whitespace()
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|e| bad(format!("bad dim `{tok}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() < 2 {
        return Err(bad("dims must list at least input and output".into()));
    }
    if *dims.last().expect("nonempty") != m + k {
        return Err(bad(format!(
            "output dim {} does not match m + k = {}",
            dims.last().expect("nonempty"),
            m + k
        )));
    }

    let mut matrices = Vec::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let header: Vec<&str> = line.split_whitespace().collect();
        if header.len() != 3 || header[0] != "matrix" {
            return Err(bad(format!("expected `matrix <r> <c>`, got `{line}`")));
        }
        let rows: usize = header[1]
            .parse()
            .map_err(|e| bad(format!("bad rows: {e}")))?;
        let cols: usize = header[2]
            .parse()
            .map_err(|e| bad(format!("bad cols: {e}")))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let row_line = lines.next().ok_or_else(|| bad("truncated matrix".into()))?;
            for tok in row_line.split_whitespace() {
                data.push(
                    tok.parse::<f64>()
                        .map_err(|e| bad(format!("bad value `{tok}`: {e}")))?,
                );
            }
        }
        if data.len() != rows * cols {
            return Err(bad(format!(
                "matrix body has {} values, expected {}",
                data.len(),
                rows * cols
            )));
        }
        matrices.push(Matrix::from_vec(rows, cols, data));
    }

    // Rebuild the network skeleton, then overwrite its parameters.
    let expected = 2 * (dims.len() - 1);
    if matrices.len() != expected {
        return Err(bad(format!(
            "expected {expected} parameter matrices, got {}",
            matrices.len()
        )));
    }
    // Initialization values are irrelevant — they are overwritten below.
    let mut rng = lrng::seeded(0);
    let mut clf = Classifier::with_architecture(&dims, m, k, &mut rng);
    clf.overwrite_parameters(&matrices).map_err(bad)?;
    Ok(clf)
}

/// Writes a classifier to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save(clf: &Classifier, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_string(clf))
}

/// Loads a classifier from `path`.
///
/// # Errors
/// Propagates filesystem errors and format errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Classifier> {
    from_string(&fs::read_to_string(path)?)
}

fn parse_kv(line: Option<&str>, key: &str) -> Result<usize, String> {
    let line = line.ok_or_else(|| format!("missing `{key}` line"))?;
    let value = line
        .strip_prefix(&format!("{key} "))
        .ok_or_else(|| format!("expected `{key} <n>`, got `{line}`"))?;
    value.parse().map_err(|e| format!("bad `{key}` value: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TargAd, TargAdConfig};
    use targad_data::GeneratorSpec;

    fn trained() -> (TargAd, targad_data::DatasetBundle) {
        let bundle = GeneratorSpec::quick_demo().generate(55);
        let mut cfg = TargAdConfig::fast();
        cfg.ae_epochs = 4;
        cfg.clf_epochs = 6;
        let mut model = TargAd::try_new(cfg).expect("valid config");
        model.fit(&bundle.train, 55).expect("fit");
        (model, bundle)
    }

    #[test]
    fn round_trip_preserves_scores_exactly() {
        let (model, bundle) = trained();
        let clf = model.classifier().unwrap();
        let text = to_string(clf);
        let restored = from_string(&text).expect("parse");
        assert_eq!(restored.m(), clf.m());
        assert_eq!(restored.k(), clf.k());
        assert_eq!(
            restored.target_scores(&bundle.test.features),
            clf.target_scores(&bundle.test.features)
        );
    }

    #[test]
    fn file_round_trip() {
        let (model, bundle) = trained();
        let path = std::env::temp_dir().join("targad_snapshot_test.txt");
        save(model.classifier().unwrap(), &path).expect("save");
        let restored = load(&path).expect("load");
        assert_eq!(
            restored.target_scores(&bundle.test.features),
            model
                .classifier()
                .unwrap()
                .target_scores(&bundle.test.features)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(from_string("").is_err());
        assert!(from_string("wrong header\n").is_err());
        assert!(from_string(&format!("{MAGIC}\nm 2\nk 2\ndims 4 3\n")).is_err()); // 3 != m+k
        assert!(from_string(&format!("{MAGIC}\nm 2\nk 1\ndims 4 3\nmatrix 2 2\n1 2\n")).is_err());
    }

    #[test]
    fn rejects_wrong_parameter_count() {
        let (model, _) = trained();
        let text = to_string(model.classifier().unwrap());
        // Drop the final matrix block.
        let cut = text.rfind("matrix").unwrap();
        assert!(from_string(&text[..cut]).is_err());
    }
}
