//! The verdict-first scoring surface.
//!
//! The paper's deliverable is not the Eq. 9 scalar — it is the *decision*
//! that scalar supports: §III-C routes every instance to one of three
//! outcomes (normal, target anomaly, non-target anomaly). This module makes
//! that decision a first-class value: [`Verdict`] is one row's structured
//! result, [`ScoreOutput`] the batch container every verdict-producing
//! entry point returns, [`Calibration`] the validated thresholds a
//! [`crate::Detector`] scores against, and [`ThresholdCache`] the
//! per-strategy thresholds cached on a fitted model so serving does zero
//! calibration work per request.

use targad_metrics::ConfusionMatrix;

use crate::ood::OodStrategy;

/// The three-way §III-C decision for one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerdictClass {
    /// Probability mass concentrates on the `k` normal groups.
    Normal,
    /// Anomalous, and the OOD target-likeness score clears the threshold:
    /// one of the `m` anomaly classes of primary interest.
    Target,
    /// Anomalous, but not of a class the operator cares about.
    NonTarget,
}

impl VerdictClass {
    /// All classes, in the paper's 0/1/2 code order.
    pub fn all() -> [VerdictClass; 3] {
        [
            VerdictClass::Normal,
            VerdictClass::Target,
            VerdictClass::NonTarget,
        ]
    }

    /// The paper's integer code: 0 normal, 1 target, 2 non-target.
    pub fn code(self) -> usize {
        match self {
            VerdictClass::Normal => 0,
            VerdictClass::Target => 1,
            VerdictClass::NonTarget => 2,
        }
    }

    /// Inverse of [`VerdictClass::code`].
    pub fn from_code(code: usize) -> Option<VerdictClass> {
        match code {
            0 => Some(VerdictClass::Normal),
            1 => Some(VerdictClass::Target),
            2 => Some(VerdictClass::NonTarget),
            _ => None,
        }
    }

    /// Stable wire name (`normal` / `target` / `non_target`).
    pub fn name(self) -> &'static str {
        match self {
            VerdictClass::Normal => "normal",
            VerdictClass::Target => "target",
            VerdictClass::NonTarget => "non_target",
        }
    }
}

/// Tally of three-way verdicts across a batch: one counter per
/// [`VerdictClass`]. The serve layer's access log and per-tenant metrics
/// aggregate with this instead of materializing per-row objects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Rows decided [`VerdictClass::Normal`].
    pub normal: u64,
    /// Rows decided [`VerdictClass::Target`].
    pub target: u64,
    /// Rows decided [`VerdictClass::NonTarget`].
    pub non_target: u64,
}

impl VerdictCounts {
    /// Counts one verdict.
    #[inline]
    pub fn add(&mut self, class: VerdictClass) {
        match class {
            VerdictClass::Normal => self.normal += 1,
            VerdictClass::Target => self.target += 1,
            VerdictClass::NonTarget => self.non_target += 1,
        }
    }

    /// Tallies an iterator of verdicts.
    pub fn tally(classes: impl IntoIterator<Item = VerdictClass>) -> Self {
        let mut counts = Self::default();
        for class in classes {
            counts.add(class);
        }
        counts
    }

    /// The count for `class`.
    pub fn get(&self, class: VerdictClass) -> u64 {
        match class {
            VerdictClass::Normal => self.normal,
            VerdictClass::Target => self.target,
            VerdictClass::NonTarget => self.non_target,
        }
    }

    /// Total rows tallied.
    pub fn total(&self) -> u64 {
        self.normal + self.target + self.non_target
    }
}

/// One row's full structured scoring result: the Eq. 9 score *and* the
/// three-way §III-C verdict, with the strategy and threshold that produced
/// it (a score is only interpretable relative to its decision rule).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Target-anomaly score `S^tar` (Eq. 9).
    pub score: f64,
    /// The three-way decision.
    pub class: VerdictClass,
    /// OOD strategy that split target from non-target anomalies.
    pub ood_strategy: OodStrategy,
    /// Decision threshold the class was produced under (the strategy's
    /// calibrated `tau` for three-way detectors, the scalar score
    /// threshold for two-way ones).
    pub threshold: f64,
}

/// Batch of verdicts from one scoring call, stored struct-of-arrays so the
/// hot serving path never materializes per-row objects.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreOutput {
    scores: Vec<f64>,
    classes: Vec<VerdictClass>,
    strategy: OodStrategy,
    threshold: f64,
}

impl ScoreOutput {
    /// Assembles a batch result.
    ///
    /// # Panics
    /// Panics when `scores` and `classes` lengths differ.
    pub fn new(
        scores: Vec<f64>,
        classes: Vec<VerdictClass>,
        strategy: OodStrategy,
        threshold: f64,
    ) -> Self {
        assert_eq!(
            scores.len(),
            classes.len(),
            "ScoreOutput: scores/classes length mismatch"
        );
        Self {
            scores,
            classes,
            strategy,
            threshold,
        }
    }

    /// Number of rows scored.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when no rows were scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Eq. 9 scores, one per row.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Three-way classes, one per row.
    pub fn classes(&self) -> &[VerdictClass] {
        &self.classes
    }

    /// The OOD strategy every row was decided under.
    pub fn strategy(&self) -> OodStrategy {
        self.strategy
    }

    /// The decision threshold every row was decided under.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Row `i` as a [`Verdict`].
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn verdict(&self, i: usize) -> Verdict {
        Verdict {
            score: self.scores[i],
            class: self.classes[i],
            ood_strategy: self.strategy,
            threshold: self.threshold,
        }
    }

    /// Iterates rows as [`Verdict`]s.
    pub fn iter(&self) -> impl Iterator<Item = Verdict> + '_ {
        (0..self.len()).map(|i| self.verdict(i))
    }

    /// The paper's 0/1/2 codes, for confusion-matrix interop.
    pub fn three_way_codes(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.code()).collect()
    }

    /// Consumes the batch, keeping only the Eq. 9 scores (ranking-metric
    /// interop).
    pub fn into_scores(self) -> Vec<f64> {
        self.scores
    }
}

/// Calibrated decision thresholds for one [`crate::Detector`], produced by
/// [`crate::Detector::calibrate`] and consumed by
/// [`crate::Detector::try_verdicts`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// OOD strategy the thresholds were calibrated for.
    pub strategy: OodStrategy,
    /// Target/non-target OOD threshold (three-way detectors).
    pub tau: f64,
    /// Scalar anomaly-score threshold (two-way detectors, which cannot
    /// tell non-target anomalies apart from target ones).
    pub score_threshold: f64,
}

/// Per-strategy calibrated `tau` thresholds cached on a fitted model, so
/// the serving path does zero calibration work per request. Persisted by
/// the v2 snapshot format ([`crate::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ThresholdCache {
    taus: [Option<f64>; 3],
}

impl ThresholdCache {
    /// A cache with every strategy's threshold present.
    pub fn complete(msp: f64, es: f64, ed: f64) -> Self {
        Self {
            taus: [Some(msp), Some(es), Some(ed)],
        }
    }

    /// The calibrated threshold for `strategy`, if cached.
    pub fn get(&self, strategy: OodStrategy) -> Option<f64> {
        self.taus[strategy.index()]
    }

    /// Caches `tau` for `strategy`.
    pub fn set(&mut self, strategy: OodStrategy, tau: f64) {
        self.taus[strategy.index()] = Some(tau);
    }

    /// `true` when no strategy has been calibrated.
    pub fn is_empty(&self) -> bool {
        self.taus.iter().all(Option::is_none)
    }

    /// `true` when every strategy has a cached threshold.
    pub fn is_complete(&self) -> bool {
        self.taus.iter().all(Option::is_some)
    }
}

/// Calibrates a scalar anomaly-score threshold on validation data by
/// maximizing the two-way (target vs rest) macro-F1 over candidate
/// thresholds drawn from the validation scores — the scalar counterpart of
/// `ood::calibrate_tau`, used by the default [`crate::Detector`] verdict
/// path.
///
/// Returns `0.5` when `scores` is empty or degenerate (all equal).
pub fn calibrate_score_threshold(scores: &[f64], truth3: &[usize]) -> f64 {
    assert_eq!(
        scores.len(),
        truth3.len(),
        "calibrate_score_threshold: length mismatch"
    );
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    sorted.dedup();
    if sorted.len() < 2 {
        return 0.5;
    }
    let truth2: Vec<usize> = truth3.iter().map(|&t| usize::from(t == 1)).collect();
    let mut candidates = vec![sorted[0] - 1e-9];
    candidates.extend(sorted.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    candidates.push(sorted[sorted.len() - 1] + 1e-9);

    let mut best_t = candidates[0];
    let mut best_f1 = f64::NEG_INFINITY;
    let mut pred = vec![0usize; scores.len()];
    for t in candidates {
        for (p, &s) in pred.iter_mut().zip(scores) {
            *p = usize::from(s >= t);
        }
        let cm = ConfusionMatrix::from_predictions(&truth2, &pred, 2);
        let f1 = cm.macro_avg().f1;
        if f1 > best_f1 {
            best_f1 = f1;
            best_t = t;
        }
    }
    best_t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_codes_round_trip() {
        for class in VerdictClass::all() {
            assert_eq!(VerdictClass::from_code(class.code()), Some(class));
        }
        assert_eq!(VerdictClass::from_code(3), None);
        assert_eq!(VerdictClass::NonTarget.name(), "non_target");
    }

    #[test]
    fn verdict_counts_tally_by_class() {
        let counts = VerdictCounts::tally([
            VerdictClass::Normal,
            VerdictClass::Target,
            VerdictClass::Normal,
            VerdictClass::NonTarget,
        ]);
        assert_eq!(counts.normal, 2);
        assert_eq!(counts.target, 1);
        assert_eq!(counts.non_target, 1);
        assert_eq!(counts.total(), 4);
        for class in VerdictClass::all() {
            assert!(counts.get(class) >= 1);
        }
        let mut more = counts;
        more.add(VerdictClass::Target);
        assert_eq!(more.get(VerdictClass::Target), 2);
        assert_eq!(VerdictCounts::default().total(), 0);
    }

    #[test]
    fn score_output_exposes_rows_and_codes() {
        let out = ScoreOutput::new(
            vec![0.9, 0.1, 0.4],
            vec![
                VerdictClass::Target,
                VerdictClass::Normal,
                VerdictClass::NonTarget,
            ],
            OodStrategy::EnergyScore,
            1.5,
        );
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
        assert_eq!(out.three_way_codes(), vec![1, 0, 2]);
        let v = out.verdict(0);
        assert_eq!(v.score, 0.9);
        assert_eq!(v.class, VerdictClass::Target);
        assert_eq!(v.ood_strategy, OodStrategy::EnergyScore);
        assert_eq!(v.threshold, 1.5);
        assert_eq!(out.iter().count(), 3);
        assert_eq!(out.into_scores(), vec![0.9, 0.1, 0.4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn score_output_rejects_mismatched_lengths() {
        let _ = ScoreOutput::new(vec![0.1], Vec::new(), OodStrategy::Msp, 0.0);
    }

    #[test]
    fn threshold_cache_tracks_per_strategy_taus() {
        let mut cache = ThresholdCache::default();
        assert!(cache.is_empty());
        assert!(!cache.is_complete());
        cache.set(OodStrategy::EnergyDiscrepancy, 0.7);
        assert_eq!(cache.get(OodStrategy::EnergyDiscrepancy), Some(0.7));
        assert_eq!(cache.get(OodStrategy::Msp), None);
        assert!(!cache.is_empty());
        let full = ThresholdCache::complete(0.1, 0.2, 0.3);
        assert!(full.is_complete());
        assert_eq!(full.get(OodStrategy::EnergyScore), Some(0.2));
    }

    #[test]
    fn scalar_threshold_separates_a_separable_stream() {
        // Targets score high, everything else low: the calibrated
        // threshold must fall in the gap.
        let scores = [0.9, 0.95, 0.85, 0.2, 0.1, 0.15, 0.25];
        let truth3 = [1, 1, 1, 0, 0, 2, 2];
        let t = calibrate_score_threshold(&scores, &truth3);
        assert!(t > 0.25 && t < 0.85, "threshold {t}");
    }

    #[test]
    fn scalar_threshold_degenerate_inputs_fall_back() {
        assert_eq!(calibrate_score_threshold(&[], &[]), 0.5);
        assert_eq!(calibrate_score_threshold(&[0.3, 0.3], &[1, 0]), 0.5);
    }
}
