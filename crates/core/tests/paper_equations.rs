//! Direct tests of the paper's equations on hand-crafted classifiers.
//!
//! The snapshot format lets us build a [`targad_core::Classifier`] with
//! *chosen* weights, so Eq. 9, the §III-C normality rule, and the OOD
//! target-likeness scores can be verified against hand-computed values
//! rather than through end-to-end training.

use targad_core::{snapshot, OodStrategy};
use targad_linalg::Matrix;

/// Builds a linear classifier `z = x·W + b` with `m = 2`, `k = 2` whose
/// weight matrix is the identity: logits equal the 4-dim input.
fn identity_classifier() -> targad_core::Classifier {
    let mut text = String::from("targad-classifier v1\nm 2\nk 2\ndims 4 4\nmatrix 4 4\n");
    for r in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|c| if r == c { "1.0".into() } else { "0.0".into() })
            .collect();
        text.push_str(&row.join(" "));
        text.push('\n');
    }
    text.push_str("matrix 1 4\n0.0 0.0 0.0 0.0\n");
    snapshot::from_string(&text).expect("valid snapshot")
}

#[test]
fn eq9_target_score_is_max_over_first_m_probabilities() {
    let clf = identity_classifier();
    // logits = input; softmax of [2, 0, 0, 0] puts most mass on dim 0.
    let x = Matrix::from_rows(&[vec![2.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 3.0, 0.0]]);
    let scores = clf.target_scores(&x);

    // Hand-computed softmax values.
    let s0: f64 = {
        let e: Vec<f64> = [2.0, 0.0, 0.0, 0.0].iter().map(|v: &f64| v.exp()).collect();
        let z: f64 = e.iter().sum();
        (e[0] / z).max(e[1] / z)
    };
    assert!((scores[0] - s0).abs() < 1e-12);
    // Row 1 concentrates on a normal dim: target score = max of two small
    // equal probabilities.
    let s1: f64 = {
        let e: Vec<f64> = [0.0, 0.0, 3.0, 0.0].iter().map(|v: &f64| v.exp()).collect();
        let z: f64 = e.iter().sum();
        e[0] / z
    };
    assert!((scores[1] - s1).abs() < 1e-12);
    assert!(scores[0] > scores[1]);
}

#[test]
fn normality_rule_threshold_is_k_over_m_plus_k() {
    let clf = identity_classifier();
    // With m = k = 2 the rule is: normal iff Σ_{j>m} p_j > 1/2.
    assert!(clf.is_normal_row(&[0.2, 0.2, 0.3, 0.3])); // mass 0.6 > 0.5
    assert!(!clf.is_normal_row(&[0.3, 0.3, 0.2, 0.2])); // mass 0.4
    assert!(!clf.is_normal_row(&[0.25, 0.25, 0.25, 0.25])); // exactly 0.5 → anomalous
}

#[test]
fn ood_scores_match_hand_computation() {
    let m = 2;
    let logits: [f64; 4] = [3.0, 1.0, 0.0, 0.0];

    // MSP: max softmax over the target block, softmax over all dims.
    let e: Vec<f64> = logits.iter().map(|v| v.exp()).collect();
    let z: f64 = e.iter().sum();
    let msp = OodStrategy::Msp.target_score(&logits, m);
    assert!((msp - e[0] / z).abs() < 1e-12);

    // ES: logsumexp over the target block.
    let es = OodStrategy::EnergyScore.target_score(&logits, m);
    assert!((es - (3f64.exp() + 1f64.exp()).ln()).abs() < 1e-12);

    // ED: logsumexp − mean over the target block.
    let ed = OodStrategy::EnergyDiscrepancy.target_score(&logits, m);
    assert!((ed - ((3f64.exp() + 1f64.exp()).ln() - 2.0)).abs() < 1e-12);
}

#[test]
fn snapshot_rejects_tampered_architecture() {
    let clf = identity_classifier();
    let good = snapshot::to_string(&clf);
    // Declare a different hidden width than the stored matrices.
    let tampered = good.replace("dims 4 4", "dims 4 9 4");
    assert!(snapshot::from_string(&tampered).is_err());
}

#[test]
fn classifier_accessors_are_consistent() {
    let clf = identity_classifier();
    assert_eq!(clf.m(), 2);
    assert_eq!(clf.k(), 2);
    assert_eq!(clf.input_dim(), 4);
    assert_eq!(clf.layer_dims(), vec![4, 4]);
    let params = clf.parameter_matrices();
    assert_eq!(params.len(), 2);
    assert_eq!(params[0], Matrix::eye(4));
    assert_eq!(params[1], Matrix::zeros(1, 4));
}
