//! Telemetry correctness: the structured events a fit emits must agree
//! with the quantities the paper defines, recomputed independently here.
//!
//! Covers the ISSUE contract: the observed `L_CE + λ₁·L_OE + λ₂·L_RE`
//! decomposition recombines to the optimized total within 1e-12 every
//! epoch, and the reported OE weights match a direct re-implementation of
//! Eq. 4 (epoch ≥ 1) and Eq. 5 (epoch 0 bootstrap).

use targad_core::{CandidateSelection, Runtime, TargAd, TargAdConfig, TrainView};
use targad_data::GeneratorSpec;
use targad_obs::events::Recorder;
use targad_obs::WeightSummary;

fn config() -> TargAdConfig {
    let mut c = TargAdConfig::fast();
    c.ae_epochs = 3;
    c.clf_epochs = 5;
    c
}

fn fit_recorded(seed: u64, config: TargAdConfig) -> Recorder {
    let bundle = GeneratorSpec::quick_demo().generate(seed);
    let mut model = TargAd::try_new(config).expect("valid config");
    let mut rec = Recorder::new();
    model
        .fit_observed(&bundle.train, seed, &mut rec)
        .expect("fit");
    rec
}

/// Independent re-implementation of the `(max − v)/(max − min)` inversion
/// shared by Eqs. 4 and 5 (all-ones when degenerate).
fn inverted(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    if max - min <= f64::EPSILON {
        return vec![1.0; values.len()];
    }
    values.iter().map(|&v| (max - v) / (max - min)).collect()
}

#[test]
fn loss_decomposition_recombines_to_total_every_epoch() {
    let rec = fit_recorded(11, config());
    assert_eq!(rec.epochs.len(), 5);
    for e in &rec.epochs {
        assert!(e.steps > 0);
        let err = (e.loss.total - e.loss.weighted_sum()).abs();
        assert!(
            err < 1e-12,
            "epoch {}: total {} vs ce+λ₁·oe+λ₂·re {} (err {err:e})",
            e.epoch,
            e.loss.total,
            e.loss.weighted_sum(),
        );
        // All three terms were actually populated under the full model.
        assert!(e.loss.ce > 0.0, "epoch {}: L_CE missing", e.epoch);
        assert!(e.loss.oe != 0.0, "epoch {}: L_OE missing", e.epoch);
        assert!(e.loss.re != 0.0, "epoch {}: L_RE missing", e.epoch);
    }
}

#[test]
fn decomposition_identity_survives_ablations() {
    for (use_oe, use_re) in [(false, true), (true, false), (false, false)] {
        let mut c = config();
        c.use_oe = use_oe;
        c.use_re = use_re;
        let rec = fit_recorded(12, c);
        for e in &rec.epochs {
            let err = (e.loss.total - e.loss.weighted_sum()).abs();
            assert!(
                err < 1e-12,
                "oe={use_oe} re={use_re} epoch {}: err {err:e}",
                e.epoch
            );
            if !use_oe {
                assert_eq!(e.loss.oe, 0.0);
            }
            if !use_re {
                assert_eq!(e.loss.re, 0.0);
            }
        }
    }
}

#[test]
fn epoch_zero_weights_match_eq5_bootstrap() {
    let seed = 13;
    let cfg = config();
    let rec = fit_recorded(seed, cfg.clone());

    // Recompute candidate selection independently; the runtime determinism
    // contract makes this bit-identical to the selection inside the fit.
    let bundle = GeneratorSpec::quick_demo().generate(seed);
    let view = TrainView::from_dataset(&bundle.train);
    let sel = CandidateSelection::run_rt(
        &view.unlabeled,
        &view.labeled,
        &cfg,
        seed,
        &Runtime::serial(),
    );
    let cand_errors: Vec<f64> = sel
        .anomaly_candidates
        .iter()
        .map(|&i| sel.recon_errors[i])
        .collect();
    let expected = inverted(&cand_errors);

    let epoch0 = &rec.epochs[0];
    assert!(epoch0.eps.is_none(), "epoch 0 must be the Eq. 5 bootstrap");
    assert_eq!(epoch0.weights, expected, "Eq. 5 weights mismatch");
}

#[test]
fn later_epoch_weights_match_eq4_recomputation() {
    let rec = fit_recorded(14, config());
    let mut checked = 0;
    for e in rec.epochs.iter().skip(1) {
        let eps = e
            .eps
            .as_ref()
            .expect("update_weights is on: eps must be recorded after epoch 0");
        assert_eq!(eps.len(), e.weights.len());
        // ε(x) = max_j p_j(x) is a probability.
        assert!(eps.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(e.weights, inverted(eps), "Eq. 4 weights mismatch");
        checked += 1;
    }
    assert!(checked >= 1);
}

#[test]
fn weight_summaries_match_recorded_weights() {
    let rec = fit_recorded(15, config());
    for e in &rec.epochs {
        let s = WeightSummary::from_weights(&e.weights);
        assert_eq!(e.oe_weights.n, s.n);
        assert_eq!(e.oe_weights.mean.to_bits(), s.mean.to_bits());
        assert_eq!(e.oe_weights.min.to_bits(), s.min.to_bits());
        assert_eq!(e.oe_weights.max.to_bits(), s.max.to_bits());
        assert_eq!(e.oe_weights.top_q_mass.to_bits(), s.top_q_mass.to_bits());
        assert!(e.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
    }
    // The last epoch's weights are the fit's final weights.
    assert_eq!(rec.final_weights, rec.epochs.last().unwrap().weights);
}

#[test]
fn frozen_weights_report_no_eps_and_no_flips() {
    let mut c = config();
    c.update_weights = false;
    let rec = fit_recorded(16, c);
    for e in &rec.epochs {
        assert!(e.eps.is_none());
        assert!(e.candidate_flips.is_none());
        assert_eq!(e.weights, rec.epochs[0].weights);
    }
}

#[test]
fn candidate_flips_appear_from_second_update_onward() {
    let rec = fit_recorded(17, config());
    // Epoch 0: bootstrap, no probabilities computed → no flip count.
    assert!(rec.epochs[0].candidate_flips.is_none());
    // Epoch 1: first Eq. 4 update has no previous verdicts to diff.
    assert!(rec.epochs[1].candidate_flips.is_none());
    // Epoch 2+: churn is measured (any usize, including 0).
    for e in rec.epochs.iter().skip(2) {
        assert!(
            e.candidate_flips.is_some(),
            "epoch {} missing churn",
            e.epoch
        );
    }
}
