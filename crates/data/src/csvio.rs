//! Plain CSV persistence for [`Dataset`] — lets generated benchmarks be
//! inspected, shared, and reloaded without regeneration.
//!
//! Format: header `f0,f1,…,f{D-1},truth,labeled`, where `truth` is one of
//! `normal:<group>`, `target:<class>`, `non_target:<class>` and `labeled`
//! is `0`/`1`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use targad_linalg::Matrix;

use crate::dataset::{Dataset, Truth};

/// Serializes `dataset` to CSV text.
pub fn to_csv_string(dataset: &Dataset) -> String {
    let d = dataset.dims();
    let mut out = String::new();
    for c in 0..d {
        let _ = write!(out, "f{c},");
    }
    out.push_str("truth,labeled\n");
    for i in 0..dataset.len() {
        for &v in dataset.features.row(i) {
            let _ = write!(out, "{v},");
        }
        let truth = match dataset.truth[i] {
            Truth::Normal { group } => format!("normal:{group}"),
            Truth::Target { class } => format!("target:{class}"),
            Truth::NonTarget { class } => format!("non_target:{class}"),
        };
        let _ = writeln!(out, "{truth},{}", u8::from(dataset.labeled[i]));
    }
    out
}

/// Parses a dataset from CSV text produced by [`to_csv_string`].
///
/// # Errors
/// Returns `io::Error` (kind `InvalidData`) on malformed content.
pub fn from_csv_string(text: &str) -> io::Result<Dataset> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty CSV".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 3 || cols[cols.len() - 2] != "truth" || cols[cols.len() - 1] != "labeled" {
        return Err(bad("missing truth/labeled header columns".into()));
    }
    let d = cols.len() - 2;

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut truth = Vec::new();
    let mut labeled = Vec::new();
    for (ln, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d + 2 {
            return Err(bad(format!(
                "line {}: expected {} fields, got {}",
                ln + 2,
                d + 2,
                fields.len()
            )));
        }
        let feats: Result<Vec<f64>, _> = fields[..d].iter().map(|f| f.parse::<f64>()).collect();
        rows.push(feats.map_err(|e| bad(format!("line {}: {e}", ln + 2)))?);

        let (kind, idx) = fields[d]
            .split_once(':')
            .ok_or_else(|| bad(format!("line {}: bad truth `{}`", ln + 2, fields[d])))?;
        let idx: usize = idx
            .parse()
            .map_err(|e| bad(format!("line {}: {e}", ln + 2)))?;
        truth.push(match kind {
            "normal" => Truth::Normal { group: idx },
            "target" => Truth::Target { class: idx },
            "non_target" => Truth::NonTarget { class: idx },
            other => {
                return Err(bad(format!(
                    "line {}: unknown truth kind `{other}`",
                    ln + 2
                )))
            }
        });
        labeled.push(match fields[d + 1] {
            "0" => false,
            "1" => true,
            other => return Err(bad(format!("line {}: bad labeled flag `{other}`", ln + 2))),
        });
    }
    if rows.is_empty() {
        return Err(bad("CSV has a header but no rows".into()));
    }
    Ok(Dataset::new(Matrix::from_rows(&rows), truth, labeled))
}

/// Writes `dataset` to `path` as CSV.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv_string(dataset))
}

/// Loads a dataset from a CSV file written by [`save_csv`].
///
/// # Errors
/// Propagates filesystem errors and malformed-content errors.
pub fn load_csv(path: impl AsRef<Path>) -> io::Result<Dataset> {
    from_csv_string(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorSpec;

    #[test]
    fn round_trip_preserves_everything() {
        let bundle = GeneratorSpec::quick_demo().generate(21);
        let text = to_csv_string(&bundle.train);
        let back = from_csv_string(&text).expect("parse back");
        assert_eq!(back.truth, bundle.train.truth);
        assert_eq!(back.labeled, bundle.train.labeled);
        assert_eq!(back.features.shape(), bundle.train.features.shape());
        for i in 0..back.len() {
            for (a, b) in back
                .features
                .row(i)
                .iter()
                .zip(bundle.train.features.row(i))
            {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let bundle = GeneratorSpec::quick_demo().generate(22);
        let path = std::env::temp_dir().join("targad_csv_roundtrip_test.csv");
        save_csv(&bundle.val, &path).expect("save");
        let back = load_csv(&path).expect("load");
        assert_eq!(back.len(), bundle.val.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_malformed_content() {
        assert!(from_csv_string("").is_err());
        assert!(from_csv_string("f0,truth,labeled\n").is_err());
        assert!(from_csv_string("f0,truth,labeled\n0.5,banana:0,0\n").is_err());
        assert!(from_csv_string("f0,truth,labeled\n0.5,normal:0,7\n").is_err());
        assert!(from_csv_string("f0,truth,labeled\nxyz,normal:0,0\n").is_err());
        assert!(from_csv_string("f0,nope,labeled\n0.5,normal:0,0\n").is_err());
    }
}
