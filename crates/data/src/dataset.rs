//! The dataset representation shared by TargAD, the baselines, and the
//! experiment harness.

use targad_linalg::Matrix;

/// Ground-truth identity of one instance.
///
/// Training code only sees the truth of *labeled* rows; the rest is used for
/// evaluation and for diagnostics like Fig. 5 (weight trajectories per
/// instance type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truth {
    /// A normal instance from hidden group `group`.
    Normal {
        /// Index of the hidden normal group the instance was drawn from.
        group: usize,
    },
    /// A target anomaly (anomaly of primary interest) of class `class`.
    Target {
        /// Target anomaly class index in `0..m`.
        class: usize,
    },
    /// A non-target anomaly of class `class`.
    NonTarget {
        /// Non-target anomaly class index.
        class: usize,
    },
}

impl Truth {
    /// True for target anomalies (the +1 class of the paper's task).
    pub fn is_target(self) -> bool {
        matches!(self, Truth::Target { .. })
    }

    /// True for any anomaly, target or not.
    pub fn is_anomaly(self) -> bool {
        !matches!(self, Truth::Normal { .. })
    }

    /// Three-way code: 0 = normal, 1 = target, 2 = non-target (Table IV).
    pub fn three_way(self) -> usize {
        match self {
            Truth::Normal { .. } => 0,
            Truth::Target { .. } => 1,
            Truth::NonTarget { .. } => 2,
        }
    }
}

/// A split (train / validation / test) of a benchmark.
///
/// `features` rows are instances, already mapped to `[0, 1]` (the paper
/// min-max normalizes everything). `truth[i]` is the hidden ground truth of
/// row `i`, and `labeled[i]` is true exactly when row `i` belongs to the
/// labeled target-anomaly set `D_L`.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// `n x D` instance matrix.
    pub features: Matrix,
    /// Ground truth per row (evaluation/diagnostics only for unlabeled rows).
    pub truth: Vec<Truth>,
    /// Membership in the labeled set `D_L`; implies `Truth::Target`.
    pub labeled: Vec<bool>,
}

impl Dataset {
    /// Builds a dataset, validating the invariants.
    ///
    /// # Panics
    /// Panics if lengths disagree or a labeled row is not a target anomaly.
    pub fn new(features: Matrix, truth: Vec<Truth>, labeled: Vec<bool>) -> Self {
        assert_eq!(
            features.rows(),
            truth.len(),
            "Dataset: truth length mismatch"
        );
        assert_eq!(
            features.rows(),
            labeled.len(),
            "Dataset: labeled length mismatch"
        );
        for (i, (&l, &t)) in labeled.iter().zip(&truth).enumerate() {
            assert!(
                !l || t.is_target(),
                "Dataset: labeled row {i} is not a target anomaly"
            );
        }
        Self {
            features,
            truth,
            labeled,
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality `D`.
    pub fn dims(&self) -> usize {
        self.features.cols()
    }

    /// Indices of the labeled target anomalies (`D_L`).
    pub fn labeled_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labeled[i]).collect()
    }

    /// Indices of the unlabeled instances (`D_U`).
    pub fn unlabeled_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.labeled[i]).collect()
    }

    /// Features of `D_L` plus the target class of each labeled row.
    pub fn labeled_view(&self) -> (Matrix, Vec<usize>) {
        let idx = self.labeled_indices();
        let classes = idx
            .iter()
            .map(|&i| match self.truth[i] {
                Truth::Target { class } => class,
                _ => unreachable!("validated in Dataset::new"),
            })
            .collect();
        (self.features.take_rows(&idx), classes)
    }

    /// Features of `D_U` plus each row's index in the full dataset.
    pub fn unlabeled_view(&self) -> (Matrix, Vec<usize>) {
        let idx = self.unlabeled_indices();
        (self.features.take_rows(&idx), idx)
    }

    /// Per-row boolean: is this instance a target anomaly? (evaluation)
    pub fn target_labels(&self) -> Vec<bool> {
        self.truth.iter().map(|t| t.is_target()).collect()
    }

    /// Per-row boolean: is this instance any kind of anomaly? (evaluation)
    pub fn anomaly_labels(&self) -> Vec<bool> {
        self.truth.iter().map(|t| t.is_anomaly()).collect()
    }

    /// Per-row three-way code (0 normal / 1 target / 2 non-target).
    pub fn three_way_labels(&self) -> Vec<usize> {
        self.truth.iter().map(|t| t.three_way()).collect()
    }

    /// Number of distinct target classes present.
    pub fn num_target_classes(&self) -> usize {
        self.truth
            .iter()
            .filter_map(|t| match t {
                Truth::Target { class } => Some(class + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Count summary for Table I-style reporting.
    pub fn summary(&self) -> SplitSummary {
        let mut s = SplitSummary::default();
        for (i, t) in self.truth.iter().enumerate() {
            match t {
                Truth::Normal { .. } => s.normal += 1,
                Truth::Target { .. } => {
                    if self.labeled[i] {
                        s.labeled_target += 1;
                    } else {
                        s.unlabeled_target += 1;
                    }
                }
                Truth::NonTarget { .. } => s.non_target += 1,
            }
        }
        s
    }

    /// Concatenates two datasets (same dimensionality).
    pub fn concat(&self, other: &Dataset) -> Dataset {
        let features = self.features.vstack(&other.features);
        let mut truth = self.truth.clone();
        truth.extend_from_slice(&other.truth);
        let mut labeled = self.labeled.clone();
        labeled.extend_from_slice(&other.labeled);
        Dataset::new(features, truth, labeled)
    }

    /// A dataset restricted to the listed rows.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset::new(
            self.features.take_rows(indices),
            indices.iter().map(|&i| self.truth[i]).collect(),
            indices.iter().map(|&i| self.labeled[i]).collect(),
        )
    }
}

/// Row counts of one split, as printed by the Table I bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitSummary {
    /// Normal instances.
    pub normal: usize,
    /// Labeled target anomalies (`D_L`).
    pub labeled_target: usize,
    /// Unlabeled (hidden) target anomalies.
    pub unlabeled_target: usize,
    /// Non-target anomalies.
    pub non_target: usize,
}

impl SplitSummary {
    /// Total instances.
    pub fn total(&self) -> usize {
        self.normal + self.labeled_target + self.unlabeled_target + self.non_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.1, 0.2],
            vec![0.9, 0.8],
            vec![0.5, 0.5],
            vec![0.3, 0.7],
        ]);
        let truth = vec![
            Truth::Normal { group: 0 },
            Truth::Target { class: 1 },
            Truth::NonTarget { class: 0 },
            Truth::Target { class: 0 },
        ];
        let labeled = vec![false, true, false, false];
        Dataset::new(features, truth, labeled)
    }

    #[test]
    fn views_and_labels() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.labeled_indices(), vec![1]);
        assert_eq!(d.unlabeled_indices(), vec![0, 2, 3]);
        let (lx, lc) = d.labeled_view();
        assert_eq!(lx.shape(), (1, 2));
        assert_eq!(lc, vec![1]);
        let (ux, ui) = d.unlabeled_view();
        assert_eq!(ux.shape(), (3, 2));
        assert_eq!(ui, vec![0, 2, 3]);
        assert_eq!(d.target_labels(), vec![false, true, false, true]);
        assert_eq!(d.anomaly_labels(), vec![false, true, true, true]);
        assert_eq!(d.three_way_labels(), vec![0, 1, 2, 1]);
        assert_eq!(d.num_target_classes(), 2);
    }

    #[test]
    fn summary_counts() {
        let s = tiny().summary();
        assert_eq!(
            s,
            SplitSummary {
                normal: 1,
                labeled_target: 1,
                unlabeled_target: 1,
                non_target: 1
            }
        );
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn concat_and_subset() {
        let d = tiny();
        let both = d.concat(&d);
        assert_eq!(both.len(), 8);
        assert_eq!(both.truth[4], Truth::Normal { group: 0 });
        let sub = both.subset(&[1, 5]);
        assert_eq!(sub.len(), 2);
        assert!(sub.labeled.iter().all(|&l| l));
    }

    #[test]
    #[should_panic(expected = "not a target anomaly")]
    fn rejects_labeled_normals() {
        let features = Matrix::ones(1, 2);
        let _ = Dataset::new(features, vec![Truth::Normal { group: 0 }], vec![true]);
    }

    #[test]
    fn truth_helpers() {
        assert!(Truth::Target { class: 0 }.is_target());
        assert!(Truth::Target { class: 0 }.is_anomaly());
        assert!(Truth::NonTarget { class: 3 }.is_anomaly());
        assert!(!Truth::Normal { group: 2 }.is_anomaly());
        assert_eq!(Truth::NonTarget { class: 0 }.three_way(), 2);
    }
}
