//! The synthetic benchmark generator.
//!
//! See the crate docs and DESIGN.md §2 for the substitution rationale. The
//! generative model:
//!
//! - **Normal groups.** Each of `normal_groups` hidden groups is an axis-
//!   aligned Gaussian with center in `[0.25, 0.75]^D` and per-dimension
//!   standard deviation around `cluster_std`. Group weights are uneven.
//! - **Anomaly classes.** Each target or non-target class picks a random
//!   *subspace* (a fraction `subspace_frac` of the dimensions) and shifts
//!   those dimensions away from a base normal center by `separation`-scaled
//!   offsets — mimicking attacks that deviate on specific feature groups.
//!   Non-target classes get a larger spread (they are more heterogeneous in
//!   the paper's scenarios).
//! - **Splits.** Unlabeled training data mixes normals with a controlled
//!   `contamination` fraction of anomalies; `D_L` holds `labeled_per_class`
//!   target anomalies per class; validation/test follow explicit counts and
//!   always contain *all* non-target classes, so restricting
//!   `train_non_target_classes` creates the "new non-target anomaly types"
//!   scenario of Fig. 4(a).
//!
//! All sampling is driven by one seed; identical seeds give identical
//! bundles.

use rand::rngs::StdRng;
use rand::RngExt;
use targad_linalg::{rng as lrng, Matrix};

use crate::dataset::{Dataset, Truth};

/// Row counts for a validation or test split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitCounts {
    /// Normal rows.
    pub normal: usize,
    /// Target anomaly rows.
    pub target: usize,
    /// Non-target anomaly rows.
    pub non_target: usize,
}

/// Full configuration of a synthetic benchmark.
#[derive(Clone, Debug)]
pub struct GeneratorSpec {
    /// Dataset name (used in reports).
    pub name: String,
    /// Feature dimensionality `D`.
    pub dims: usize,
    /// Number of hidden normal groups (the paper's `k`).
    pub normal_groups: usize,
    /// Number of target anomaly classes (the paper's `m`).
    pub target_classes: usize,
    /// Number of non-target anomaly classes in the taxonomy.
    pub non_target_classes: usize,
    /// Labeled target anomalies per class in `D_L`.
    pub labeled_per_class: usize,
    /// Size of the unlabeled training set `D_U`.
    pub train_unlabeled: usize,
    /// Fraction of `D_U` that is anomalous (paper default 5%).
    pub contamination: f64,
    /// Portion of the contamination that is target (the rest non-target).
    pub target_share_of_contamination: f64,
    /// Validation split counts.
    pub val_counts: SplitCounts,
    /// Test split counts.
    pub test_counts: SplitCounts,
    /// Non-target classes present in training; `None` = all. Restricting
    /// this makes the held-out classes *novel* at test time (Fig. 4a).
    pub train_non_target_classes: Option<Vec<usize>>,
    /// Distance scale between anomaly manifolds and normal data.
    pub separation: f64,
    /// Normal group standard deviation.
    pub cluster_std: f64,
    /// Anomaly class standard deviation (non-targets get 1.5x).
    pub anomaly_std: f64,
    /// Fraction of dimensions each anomaly class deviates on.
    pub subspace_frac: f64,
    /// Fraction of each anomaly class's deviating dimensions drawn from a
    /// *shared anomaly signature* with common offsets. Real attack classes
    /// overlap in feature space (all deviate on similar traffic
    /// statistics), which is what makes semi-supervised detectors rank
    /// non-target anomalies high (false positives) — the phenomenon TargAD
    /// addresses. 0.0 = fully disjoint classes; 1.0 = identical
    /// signatures.
    pub anomaly_signature_overlap: f64,
    /// Per-instance probability that each deviating dimension reverts to
    /// its normal value. Real attack instances don't express their class's
    /// full signature on every record; this instance-level heterogeneity is
    /// what keeps a handful of labels from pinning a class down exactly.
    pub signature_dropout: f64,
    /// Probability that a *normal* instance exhibits a benign rare
    /// behaviour: a small random-subspace deviation. These rows are still
    /// normal, but they reconstruct poorly — the "inaccurately
    /// reconstructed normal instances" that the paper expects to appear
    /// among the non-target anomaly candidates (Fig. 5), and a realistic
    /// false-positive source for purely reconstruction-driven detectors.
    pub benign_deviation_prob: f64,
    /// Fraction of "normal" evaluation rows that are secretly anomalies —
    /// reproduces SQB's unlabeled-as-normal evaluation (Table I footnote).
    pub eval_label_noise: f64,
}

impl GeneratorSpec {
    /// A small, fast benchmark used by doctests and examples: 12 dims,
    /// 2 normal groups, 2 target + 2 non-target classes.
    pub fn quick_demo() -> Self {
        Self {
            name: "quick-demo".to_string(),
            dims: 12,
            normal_groups: 2,
            target_classes: 2,
            non_target_classes: 2,
            labeled_per_class: 10,
            train_unlabeled: 600,
            contamination: 0.08,
            target_share_of_contamination: 0.35,
            val_counts: SplitCounts {
                normal: 150,
                target: 20,
                non_target: 30,
            },
            test_counts: SplitCounts {
                normal: 300,
                target: 40,
                non_target: 60,
            },
            train_non_target_classes: None,
            separation: 1.0,
            cluster_std: 0.05,
            anomaly_std: 0.05,
            subspace_frac: 0.25,
            anomaly_signature_overlap: 0.5,
            signature_dropout: 0.3,
            benign_deviation_prob: 0.04,
            eval_label_noise: 0.0,
        }
    }

    /// Generates the train/validation/test bundle for this spec.
    ///
    /// # Panics
    /// Panics on inconsistent configurations (zero classes with non-zero
    /// counts, contamination outside `[0, 1)`, …).
    pub fn generate(&self, seed: u64) -> DatasetBundle {
        self.validate();
        let mut rng = lrng::seeded(seed);
        let geometry = Geometry::sample(self, &mut rng);

        let train = self.build_train(&geometry, &mut rng);
        let val = self.build_eval_split(&geometry, self.val_counts, &mut rng);
        let test = self.build_eval_split(&geometry, self.test_counts, &mut rng);

        DatasetBundle {
            spec: self.clone(),
            train,
            val,
            test,
        }
    }

    fn validate(&self) {
        assert!(self.dims > 0, "spec: dims must be positive");
        assert!(
            self.normal_groups > 0,
            "spec: need at least one normal group"
        );
        assert!(
            self.target_classes > 0,
            "spec: need at least one target class"
        );
        assert!(
            (0.0..1.0).contains(&self.contamination),
            "spec: contamination {} outside [0, 1)",
            self.contamination
        );
        assert!(
            (0.0..=1.0).contains(&self.target_share_of_contamination),
            "spec: target share outside [0, 1]"
        );
        if let Some(classes) = &self.train_non_target_classes {
            assert!(
                classes.iter().all(|&c| c < self.non_target_classes),
                "spec: train_non_target_classes out of range"
            );
        }
        let eval_nt = self.val_counts.non_target + self.test_counts.non_target;
        assert!(
            self.non_target_classes > 0 || eval_nt == 0,
            "spec: non-target rows requested but no non-target classes"
        );
    }

    fn build_train(&self, geo: &Geometry, rng: &mut StdRng) -> Dataset {
        let n_u = self.train_unlabeled;
        let n_anom = (self.contamination * n_u as f64).round() as usize;
        let n_target = (self.target_share_of_contamination * n_anom as f64).round() as usize;
        let n_non_target = n_anom - n_target;
        let n_normal = n_u - n_anom;

        let allowed_nt: Vec<usize> = match &self.train_non_target_classes {
            Some(classes) => classes.clone(),
            None => (0..self.non_target_classes).collect(),
        };

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_u + self.labeled_total());
        let mut truth: Vec<Truth> = Vec::with_capacity(rows.capacity());
        let mut labeled: Vec<bool> = Vec::with_capacity(rows.capacity());

        for _ in 0..n_normal {
            let g = geo.pick_group(rng);
            rows.push(geo.sample_normal(g, rng));
            truth.push(Truth::Normal { group: g });
            labeled.push(false);
        }
        for i in 0..n_target {
            let c = i % self.target_classes;
            rows.push(geo.sample_target(c, rng));
            truth.push(Truth::Target { class: c });
            labeled.push(false);
        }
        for i in 0..n_non_target {
            // When no non-target class is allowed in training, backfill with
            // normals to keep |D_U| as configured.
            if allowed_nt.is_empty() || self.non_target_classes == 0 {
                let g = geo.pick_group(rng);
                rows.push(geo.sample_normal(g, rng));
                truth.push(Truth::Normal { group: g });
            } else {
                let c = allowed_nt[i % allowed_nt.len()];
                rows.push(geo.sample_non_target(c, rng));
                truth.push(Truth::NonTarget { class: c });
            }
            labeled.push(false);
        }

        // Labeled target anomalies D_L.
        for c in 0..self.target_classes {
            for _ in 0..self.labeled_per_class {
                rows.push(geo.sample_target(c, rng));
                truth.push(Truth::Target { class: c });
                labeled.push(true);
            }
        }

        shuffle_rows(&mut rows, &mut truth, &mut labeled, rng);
        Dataset::new(Matrix::from_rows(&rows), truth, labeled)
    }

    fn build_eval_split(&self, geo: &Geometry, counts: SplitCounts, rng: &mut StdRng) -> Dataset {
        let mut rows = Vec::with_capacity(counts.normal + counts.target + counts.non_target);
        let mut truth = Vec::with_capacity(rows.capacity());

        for _ in 0..counts.normal {
            let g = geo.pick_group(rng);
            // SQB-style evaluation noise: the "normal" pool is really
            // unlabeled data hiding some anomalies.
            if self.eval_label_noise > 0.0 && rng.random::<f64>() < self.eval_label_noise {
                let row = if rng.random::<f64>() < self.target_share_of_contamination
                    || self.non_target_classes == 0
                {
                    geo.sample_target(rng.random_range(0..self.target_classes), rng)
                } else {
                    geo.sample_non_target(rng.random_range(0..self.non_target_classes), rng)
                };
                rows.push(row);
            } else {
                rows.push(geo.sample_normal(g, rng));
            }
            truth.push(Truth::Normal { group: g });
        }
        for i in 0..counts.target {
            let c = i % self.target_classes;
            rows.push(geo.sample_target(c, rng));
            truth.push(Truth::Target { class: c });
        }
        for i in 0..counts.non_target {
            let c = i % self.non_target_classes.max(1);
            rows.push(geo.sample_non_target(c, rng));
            truth.push(Truth::NonTarget { class: c });
        }

        let mut labeled = vec![false; rows.len()];
        shuffle_rows(&mut rows, &mut truth, &mut labeled, rng);
        Dataset::new(Matrix::from_rows(&rows), truth, labeled)
    }

    /// Total size of `D_L`.
    pub fn labeled_total(&self) -> usize {
        self.labeled_per_class * self.target_classes
    }
}

/// A generated train/validation/test triple plus the spec that produced it.
#[derive(Clone, Debug)]
pub struct DatasetBundle {
    /// The configuration that produced this bundle.
    pub spec: GeneratorSpec,
    /// Training split (`D_L ∪ D_U`).
    pub train: Dataset,
    /// Validation split (hyper-parameter selection).
    pub val: Dataset,
    /// Test split (reported metrics).
    pub test: Dataset,
}

/// Sampled class geometry: centers, stds, and anomaly subspaces.
struct Geometry {
    dims: usize,
    group_weights: Vec<f64>,
    group_centers: Vec<Vec<f64>>,
    group_stds: Vec<Vec<f64>>,
    target_defs: Vec<AnomalyClass>,
    non_target_defs: Vec<AnomalyClass>,
    benign_deviation_prob: f64,
    benign_subspace: usize,
    benign_offset: f64,
}

struct AnomalyClass {
    /// The normal-group center the class deviates from.
    center: Vec<f64>,
    /// `(dimension, offset)` signature; applied per instance subject to
    /// dropout.
    offsets: Vec<(usize, f64)>,
    std: f64,
    dropout: f64,
}

impl Geometry {
    fn sample(spec: &GeneratorSpec, rng: &mut StdRng) -> Self {
        let dims = spec.dims;
        let mut group_centers: Vec<Vec<f64>> = Vec::with_capacity(spec.normal_groups);
        let mut group_stds: Vec<Vec<f64>> = Vec::with_capacity(spec.normal_groups);
        let mut group_weights = Vec::with_capacity(spec.normal_groups);
        for _ in 0..spec.normal_groups {
            group_centers.push((0..dims).map(|_| rng.random_range(0.25..0.75)).collect());
            group_stds.push(
                (0..dims)
                    .map(|_| spec.cluster_std * rng.random_range(0.5..1.5))
                    .collect(),
            );
            group_weights.push(rng.random_range(0.5..1.5));
        }
        let total: f64 = group_weights.iter().sum();
        for w in &mut group_weights {
            *w /= total;
        }

        let subspace = ((spec.subspace_frac * dims as f64).ceil() as usize).clamp(1, dims);
        // Shared anomaly signature: a pool of dimensions with fixed offsets
        // that every anomaly class partially reuses, making target and
        // non-target anomalies correlated (see the field docs on
        // `anomaly_signature_overlap`).
        let signature_pool = lrng::sample_indices(rng, dims, subspace);
        let signature_offsets: Vec<f64> = signature_pool
            .iter()
            .map(|_| {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                sign * spec.separation * rng.random_range(0.12..0.28)
            })
            .collect();
        let n_shared =
            ((spec.anomaly_signature_overlap * subspace as f64).round() as usize).min(subspace);

        // Target classes deviate on a *subset* of the shared pool (plus a
        // few private dims); non-target classes deviate on the *entire*
        // pool plus private extras. Target signatures are therefore nearly
        // contained in non-target signatures: telling them apart requires
        // negative evidence ("no extra deviations") that labeled target
        // anomalies alone cannot provide — the structural reason the
        // paper's baselines keep flagging non-target anomalies.
        let mut make_class = |std_scale: f64, is_target: bool| -> AnomalyClass {
            let base = rng.random_range(0..spec.normal_groups);
            let center = group_centers[base].clone();
            let mut offsets: Vec<(usize, f64)> = Vec::with_capacity(2 * subspace);
            let (pool_count, private_count) = if is_target {
                (n_shared, subspace - n_shared)
            } else {
                (signature_pool.len(), subspace.div_ceil(2))
            };
            let picks = lrng::sample_indices(rng, signature_pool.len(), pool_count);
            for &p in &picks {
                offsets.push((signature_pool[p], signature_offsets[p]));
            }
            // Private part: class-specific dims and directions.
            let private: Vec<usize> = lrng::permutation(rng, dims)
                .into_iter()
                .filter(|d| !signature_pool.contains(d))
                .take(private_count)
                .collect();
            for &d in &private {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                offsets.push((d, sign * spec.separation * rng.random_range(0.12..0.28)));
            }
            AnomalyClass {
                center,
                offsets,
                std: spec.anomaly_std * std_scale,
                dropout: spec.signature_dropout,
            }
        };

        let target_defs = (0..spec.target_classes)
            .map(|_| make_class(1.0, true))
            .collect();
        let non_target_defs = (0..spec.non_target_classes)
            .map(|_| make_class(1.5, false))
            .collect();

        Self {
            dims,
            group_weights,
            group_centers,
            group_stds,
            target_defs,
            non_target_defs,
            benign_deviation_prob: spec.benign_deviation_prob,
            benign_subspace: subspace.div_ceil(2),
            benign_offset: spec.separation * 0.18,
        }
    }

    fn pick_group(&self, rng: &mut StdRng) -> usize {
        let mut draw = rng.random::<f64>();
        for (g, &w) in self.group_weights.iter().enumerate() {
            draw -= w;
            if draw <= 0.0 {
                return g;
            }
        }
        self.group_weights.len() - 1
    }

    fn sample_normal(&self, group: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut row: Vec<f64> = (0..self.dims)
            .map(|d| {
                self.group_centers[group][d] + lrng::normal(rng, 0.0, self.group_stds[group][d])
            })
            .collect();
        // Benign rare behaviour: a small random-subspace excursion that
        // keeps the instance normal but inflates its reconstruction error.
        if self.benign_deviation_prob > 0.0 && rng.random::<f64>() < self.benign_deviation_prob {
            let count = self.benign_subspace.max(1);
            let dims = lrng::sample_indices(rng, self.dims, count.min(self.dims));
            for d in dims {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                row[d] += sign * self.benign_offset * rng.random_range(0.5..1.0);
            }
        }
        for v in &mut row {
            *v = v.clamp(0.0, 1.0);
        }
        row
    }

    fn sample_from_class(&self, class: &AnomalyClass, rng: &mut StdRng) -> Vec<f64> {
        let mut row: Vec<f64> = (0..self.dims)
            .map(|d| class.center[d] + lrng::normal(rng, 0.0, class.std))
            .collect();
        for &(d, off) in &class.offsets {
            if class.dropout == 0.0 || rng.random::<f64>() >= class.dropout {
                // Per-instance magnitude jitter: real attack records express
                // their signature with varying intensity, so no single
                // residual direction identifies a class exactly.
                row[d] += off * rng.random_range(0.5..1.5);
            }
        }
        for v in &mut row {
            *v = v.clamp(0.0, 1.0);
        }
        row
    }

    fn sample_target(&self, class: usize, rng: &mut StdRng) -> Vec<f64> {
        self.sample_from_class(&self.target_defs[class], rng)
    }

    fn sample_non_target(&self, class: usize, rng: &mut StdRng) -> Vec<f64> {
        self.sample_from_class(&self.non_target_defs[class], rng)
    }
}

fn shuffle_rows(
    rows: &mut [Vec<f64>],
    truth: &mut [Truth],
    labeled: &mut [bool],
    rng: &mut StdRng,
) {
    let n = rows.len();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        rows.swap(i, j);
        truth.swap(i, j);
        labeled.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SplitSummary;

    #[test]
    fn quick_demo_counts_match_spec() {
        let spec = GeneratorSpec::quick_demo();
        let bundle = spec.generate(1);

        let tr = bundle.train.summary();
        assert_eq!(tr.labeled_target, spec.labeled_total());
        assert_eq!(tr.total(), spec.train_unlabeled + spec.labeled_total());
        let expected_anoms = (spec.contamination * spec.train_unlabeled as f64).round() as usize;
        assert_eq!(tr.unlabeled_target + tr.non_target, expected_anoms);

        let te = bundle.test.summary();
        assert_eq!(
            te,
            SplitSummary {
                normal: 300,
                labeled_target: 0,
                unlabeled_target: 40,
                non_target: 60
            }
        );
        assert_eq!(bundle.val.summary().total(), 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = GeneratorSpec::quick_demo();
        let a = spec.generate(99);
        let b = spec.generate(99);
        assert_eq!(a.train.features, b.train.features);
        assert_eq!(a.test.truth, b.test.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = GeneratorSpec::quick_demo();
        let a = spec.generate(1);
        let b = spec.generate(2);
        assert_ne!(a.train.features, b.train.features);
    }

    #[test]
    fn features_are_in_unit_interval() {
        let bundle = GeneratorSpec::quick_demo().generate(3);
        for split in [&bundle.train, &bundle.val, &bundle.test] {
            assert!(split
                .features
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn anomalies_sit_away_from_normals() {
        // Anomalies must sit farther from their *nearest normal group mean*
        // than normal rows do — the property every detector relies on.
        let bundle = GeneratorSpec::quick_demo().generate(5);
        let d = &bundle.test;
        let normals: Vec<usize> = (0..d.len()).filter(|&i| !d.truth[i].is_anomaly()).collect();
        let anoms: Vec<usize> = (0..d.len()).filter(|&i| d.truth[i].is_anomaly()).collect();
        let groups = bundle.spec.normal_groups;
        let dims = d.dims();
        let mut means = vec![vec![0.0; dims]; groups];
        let mut counts = vec![0usize; groups];
        for &i in &normals {
            if let Truth::Normal { group } = d.truth[i] {
                counts[group] += 1;
                for (m, &v) in means[group].iter_mut().zip(d.features.row(i)) {
                    *m += v;
                }
            }
        }
        for (mean, &c) in means.iter_mut().zip(&counts) {
            for m in mean {
                *m /= c.max(1) as f64;
            }
        }
        let nearest = |i: usize| -> f64 {
            means
                .iter()
                .map(|m| d.features.row_sq_dist(i, m))
                .fold(f64::INFINITY, f64::min)
        };
        let avg = |idx: &[usize]| idx.iter().map(|&i| nearest(i)).sum::<f64>() / idx.len() as f64;
        assert!(
            avg(&anoms) > 2.0 * avg(&normals),
            "anomaly dist {} vs normal dist {}",
            avg(&anoms),
            avg(&normals)
        );
    }

    #[test]
    fn restricting_train_non_target_classes_works() {
        let mut spec = GeneratorSpec::quick_demo();
        spec.train_non_target_classes = Some(vec![0]);
        let bundle = spec.generate(7);
        let train_classes: std::collections::HashSet<usize> = bundle
            .train
            .truth
            .iter()
            .filter_map(|t| match t {
                Truth::NonTarget { class } => Some(*class),
                _ => None,
            })
            .collect();
        assert_eq!(train_classes, std::collections::HashSet::from([0]));
        // ... while the test split still contains both classes.
        let test_classes: std::collections::HashSet<usize> = bundle
            .test
            .truth
            .iter()
            .filter_map(|t| match t {
                Truth::NonTarget { class } => Some(*class),
                _ => None,
            })
            .collect();
        assert_eq!(test_classes, std::collections::HashSet::from([0, 1]));
    }

    #[test]
    fn empty_allowed_non_target_backfills_with_normals() {
        let mut spec = GeneratorSpec::quick_demo();
        spec.train_non_target_classes = Some(vec![]);
        let bundle = spec.generate(11);
        let s = bundle.train.summary();
        assert_eq!(s.non_target, 0);
        assert_eq!(s.total(), spec.train_unlabeled + spec.labeled_total());
    }

    #[test]
    fn eval_label_noise_contaminates_normal_pool() {
        let mut spec = GeneratorSpec::quick_demo();
        spec.eval_label_noise = 0.5; // exaggerated for the test
        let noisy = spec.generate(13);
        spec.eval_label_noise = 0.0;
        let clean = spec.generate(13);
        // Same truth counts, different feature content for "normal" rows:
        assert_eq!(noisy.test.summary(), clean.test.summary());
        assert_ne!(noisy.test.features, clean.test.features);
    }

    #[test]
    #[should_panic(expected = "contamination")]
    fn invalid_contamination_rejected() {
        let mut spec = GeneratorSpec::quick_demo();
        spec.contamination = 1.5;
        let _ = spec.generate(1);
    }
}
