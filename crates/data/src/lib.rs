//! Tabular datasets for the TargAD reproduction.
//!
//! The paper evaluates on three public network-intrusion datasets
//! (UNSW-NB15, KDDCUP99, NSL-KDD) and one proprietary payment-platform
//! dataset (SQB). None of those can ship with this repository, so this crate
//! provides a **synthetic benchmark engine** that reproduces the structural
//! properties the paper's experiments actually exercise (see DESIGN.md §2):
//!
//! - multi-modal normal data (`k` hidden groups — the reason TargAD
//!   clusters before candidate selection);
//! - `m` *target* anomaly classes and several *non-target* anomaly classes,
//!   each deviating from the normal manifold in its own feature subspace,
//!   so both kinds look "anomalous" to unsupervised detectors while staying
//!   mutually distinguishable;
//! - a tiny labeled set `D_L` of target anomalies (0.16%–0.48% of training
//!   data), an unlabeled set `D_U` with a controlled contamination rate,
//!   and validation/test splits per Table I;
//! - the SQB quirk of evaluating against unlabeled-as-normal rows.
//!
//! Modules: [`dataset`] (the labeled-view types), [`generator`] (the
//! configurable synthesizer), [`presets`] (Table I configurations),
//! [`preprocess`] (min-max scaling & one-hot encoding, as in §IV-A), and
//! [`csvio`] (plain CSV round-trips for interop).

pub mod csvio;
pub mod dataset;
pub mod generator;
pub mod preprocess;
pub mod presets;

pub use dataset::{Dataset, SplitSummary, Truth};
pub use generator::{DatasetBundle, GeneratorSpec, SplitCounts};
pub use preprocess::{MinMaxScaler, OneHotEncoder};
pub use presets::Preset;
