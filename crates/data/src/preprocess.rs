//! Feature preprocessing: min-max normalization and one-hot encoding.
//!
//! §IV-A of the paper: "applied one-hot encoding to the categorical
//! features (where applicable), and mapped all features to the range of
//! `[0, 1]` using min-max normalization." Scalers are fitted on training
//! data and applied to validation/test, so evaluation rows can fall outside
//! the fitted range; they are clamped (standard practice for bounded
//! models like sigmoid-output autoencoders).

use targad_linalg::{stats, Matrix};

/// Per-column min-max scaler into `[0, 1]`.
#[derive(Clone, Debug)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits column ranges on `data`.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &Matrix) -> Self {
        assert!(!data.is_empty(), "MinMaxScaler: empty data");
        let d = data.cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in data.iter_rows() {
            for ((mn, mx), &v) in mins.iter_mut().zip(&mut maxs).zip(row) {
                if v < *mn {
                    *mn = v;
                }
                if v > *mx {
                    *mx = v;
                }
            }
        }
        Self { mins, maxs }
    }

    /// Applies the fitted scaling, clamping to `[0, 1]`.
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.mins.len(),
            "MinMaxScaler: column mismatch"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = stats::min_max_scale(*v, self.mins[c], self.maxs[c]);
            }
        }
        out
    }

    /// `fit` + `transform` in one call.
    pub fn fit_transform(data: &Matrix) -> (Self, Matrix) {
        let scaler = Self::fit(data);
        let out = scaler.transform(data);
        (scaler, out)
    }

    /// The fitted per-column `(min, max)` ranges.
    pub fn ranges(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.mins.iter().zip(&self.maxs).map(|(&a, &b)| (a, b))
    }
}

/// One-hot encoder for integer-coded categorical columns.
///
/// Categories are learned at fit time; unseen categories at transform time
/// map to the all-zeros vector (the "none of the known levels" encoding).
#[derive(Clone, Debug)]
pub struct OneHotEncoder {
    /// Sorted distinct levels per encoded column.
    levels: Vec<Vec<i64>>,
    /// Which input columns are categorical.
    columns: Vec<usize>,
}

impl OneHotEncoder {
    /// Fits level sets for the listed categorical `columns` of `data`
    /// (values are rounded to the nearest integer).
    ///
    /// # Panics
    /// Panics if a column index is out of range.
    pub fn fit(data: &Matrix, columns: &[usize]) -> Self {
        let mut levels = Vec::with_capacity(columns.len());
        for &c in columns {
            assert!(c < data.cols(), "OneHotEncoder: column {c} out of range");
            let mut vals: Vec<i64> = (0..data.rows())
                .map(|r| data[(r, c)].round() as i64)
                .collect();
            vals.sort_unstable();
            vals.dedup();
            levels.push(vals);
        }
        Self {
            levels,
            columns: columns.to_vec(),
        }
    }

    /// Output dimensionality after encoding `input_cols`-wide data.
    pub fn encoded_dims(&self, input_cols: usize) -> usize {
        input_cols - self.columns.len() + self.levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Applies the encoding: categorical columns are replaced (in order,
    /// appended after the numeric columns) by their indicator blocks.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let numeric: Vec<usize> = (0..data.cols())
            .filter(|c| !self.columns.contains(c))
            .collect();
        let out_cols = self.encoded_dims(data.cols());
        let mut out = Matrix::zeros(data.rows(), out_cols);
        for r in 0..data.rows() {
            let mut j = 0;
            for &c in &numeric {
                out[(r, j)] = data[(r, c)];
                j += 1;
            }
            for (ci, &c) in self.columns.iter().enumerate() {
                let val = data[(r, c)].round() as i64;
                if let Ok(pos) = self.levels[ci].binary_search(&val) {
                    out[(r, j + pos)] = 1.0;
                }
                j += self.levels[ci].len();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_train_to_unit_interval() {
        let data = Matrix::from_rows(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]);
        let (scaler, scaled) = MinMaxScaler::fit_transform(&data);
        assert_eq!(scaled.row(0), &[0.0, 0.0]);
        assert_eq!(scaled.row(1), &[0.5, 0.5]);
        assert_eq!(scaled.row(2), &[1.0, 1.0]);
        let ranges: Vec<(f64, f64)> = scaler.ranges().collect();
        assert_eq!(ranges, vec![(0.0, 10.0), (10.0, 30.0)]);
    }

    #[test]
    fn minmax_clamps_out_of_range_eval_rows() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let scaler = MinMaxScaler::fit(&train);
        let test = Matrix::from_rows(&[vec![-5.0], vec![15.0], vec![5.0]]);
        let out = scaler.transform(&test);
        assert_eq!(out.as_slice(), &[0.0, 1.0, 0.5]);
    }

    #[test]
    fn minmax_constant_column_maps_to_half() {
        let train = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let scaler = MinMaxScaler::fit(&train);
        assert_eq!(scaler.transform(&train).as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn one_hot_basic_encoding() {
        // column 1 is categorical with levels {0, 2, 5}.
        let data = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 5.0], vec![3.0, 2.0]]);
        let enc = OneHotEncoder::fit(&data, &[1]);
        assert_eq!(enc.encoded_dims(2), 4);
        let out = enc.transform(&data);
        assert_eq!(out.row(0), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(out.row(1), &[2.0, 0.0, 0.0, 1.0]);
        assert_eq!(out.row(2), &[3.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn one_hot_unseen_level_is_all_zeros() {
        let train = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let enc = OneHotEncoder::fit(&train, &[0]);
        let test = Matrix::from_rows(&[vec![9.0]]);
        assert_eq!(enc.transform(&test).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn one_hot_multiple_columns() {
        let data = Matrix::from_rows(&[vec![0.0, 1.0, 0.5], vec![1.0, 0.0, 0.7]]);
        let enc = OneHotEncoder::fit(&data, &[0, 1]);
        // numeric col 2 first, then 2 levels + 2 levels.
        assert_eq!(enc.encoded_dims(3), 5);
        let out = enc.transform(&data);
        assert_eq!(out.row(0), &[0.5, 1.0, 0.0, 0.0, 1.0]);
        assert_eq!(out.row(1), &[0.7, 0.0, 1.0, 1.0, 0.0]);
    }
}
