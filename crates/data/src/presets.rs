//! Table I dataset presets.
//!
//! Each preset mirrors the corresponding row of Table I in the paper:
//! dimensionality, split sizes, number of target / non-target anomaly
//! classes, and the labeled-anomaly budget. A `scale` factor shrinks the
//! row counts uniformly (class structure and dimensionality are preserved)
//! so the full experiment grid runs on a laptop; `scale = 1.0` reproduces
//! paper-scale sizes.

use crate::generator::{GeneratorSpec, SplitCounts};

/// The four benchmarks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// UNSW-NB15: 196 dims; targets {Generic, Backdoor, DoS}; non-targets
    /// {Fuzzers, Analysis, Exploits, Reconnaissance}.
    UnswNb15,
    /// KDDCUP99 (32 retained features): targets {R2L, DoS}; non-target
    /// {Probe}.
    KddCup99,
    /// NSL-KDD (41 features): same class taxonomy as KDDCUP99.
    NslKdd,
    /// SQB: 182-dim merchant transactions; targets {fraud, gambling
    /// recharge}; non-targets {click farming, cash out}. Evaluation treats
    /// unlabeled data as normal (reproduced via `eval_label_noise`).
    Sqb,
}

impl Preset {
    /// All four presets in the paper's order.
    pub fn all() -> [Preset; 4] {
        [
            Preset::UnswNb15,
            Preset::KddCup99,
            Preset::NslKdd,
            Preset::Sqb,
        ]
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::UnswNb15 => "UNSW-NB15",
            Preset::KddCup99 => "KDDCUP99",
            Preset::NslKdd => "NSL-KDD",
            Preset::Sqb => "SQB",
        }
    }

    /// The generator spec at the given `scale` (1.0 = paper-scale counts).
    ///
    /// Counts never scale below small floors so that tiny scales still
    /// exercise every code path (at least 5 labeled anomalies per class,
    /// 20 anomalies per evaluation split, …).
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    pub fn spec(self, scale: f64) -> GeneratorSpec {
        assert!(scale > 0.0, "preset scale must be positive");
        let n = |v: usize| ((v as f64 * scale).round() as usize).max(20);
        let lab = |v: usize| ((v as f64 * scale).round() as usize).max(5);

        match self {
            Preset::UnswNb15 => GeneratorSpec {
                name: self.name().to_string(),
                dims: 196,
                normal_groups: 4,
                target_classes: 3,
                non_target_classes: 4,
                labeled_per_class: lab(100),
                train_unlabeled: n(62_631),
                contamination: 0.05,
                target_share_of_contamination: 0.10,
                val_counts: SplitCounts {
                    normal: n(14_899),
                    target: n(334),
                    non_target: n(450),
                },
                test_counts: SplitCounts {
                    normal: n(18_601),
                    target: n(1_666),
                    non_target: n(2_335),
                },
                train_non_target_classes: None,
                separation: 1.0,
                cluster_std: 0.05,
                anomaly_std: 0.08,
                subspace_frac: 0.15,
                anomaly_signature_overlap: 0.90,
                signature_dropout: 0.30,
                benign_deviation_prob: 0.04,
                eval_label_noise: 0.0,
            },
            Preset::KddCup99 => GeneratorSpec {
                name: self.name().to_string(),
                dims: 32,
                normal_groups: 3,
                target_classes: 2,
                non_target_classes: 1,
                labeled_per_class: lab(100),
                train_unlabeled: n(58_524),
                contamination: 0.05,
                target_share_of_contamination: 0.40,
                val_counts: SplitCounts {
                    normal: n(13_918),
                    target: n(419),
                    non_target: n(188),
                },
                test_counts: SplitCounts {
                    normal: n(17_380),
                    target: n(799),
                    non_target: n(352),
                },
                train_non_target_classes: None,
                separation: 1.0,
                cluster_std: 0.05,
                anomaly_std: 0.06,
                subspace_frac: 0.25,
                anomaly_signature_overlap: 0.80,
                signature_dropout: 0.25,
                benign_deviation_prob: 0.04,
                eval_label_noise: 0.0,
            },
            Preset::NslKdd => GeneratorSpec {
                name: self.name().to_string(),
                dims: 41,
                normal_groups: 3,
                target_classes: 2,
                non_target_classes: 1,
                labeled_per_class: lab(100),
                train_unlabeled: n(45_385),
                contamination: 0.05,
                target_share_of_contamination: 0.25,
                val_counts: SplitCounts {
                    normal: n(10_743),
                    target: n(487),
                    non_target: n(366),
                },
                test_counts: SplitCounts {
                    normal: n(13_492),
                    target: n(749),
                    non_target: n(629),
                },
                train_non_target_classes: None,
                separation: 1.0,
                cluster_std: 0.05,
                anomaly_std: 0.07,
                subspace_frac: 0.22,
                anomaly_signature_overlap: 0.85,
                signature_dropout: 0.30,
                benign_deviation_prob: 0.04,
                eval_label_noise: 0.0,
            },
            Preset::Sqb => GeneratorSpec {
                name: self.name().to_string(),
                dims: 182,
                normal_groups: 5,
                target_classes: 2,
                non_target_classes: 2,
                labeled_per_class: lab(106),
                train_unlabeled: n(132_028),
                // "the exact proportion of contamination remains unknown";
                // we fix a plausible low rate.
                contamination: 0.05,
                target_share_of_contamination: 0.05,
                val_counts: SplitCounts {
                    normal: n(14_671),
                    target: n(23),
                    non_target: n(142),
                },
                test_counts: SplitCounts {
                    normal: n(148_323),
                    target: n(236),
                    non_target: n(1_502),
                },
                train_non_target_classes: None,
                separation: 1.0,
                cluster_std: 0.06,
                anomaly_std: 0.08,
                subspace_frac: 0.15,
                anomaly_signature_overlap: 0.90,
                signature_dropout: 0.45,
                benign_deviation_prob: 0.04,
                // Unlabeled-as-normal evaluation hides some anomalies in the
                // "normal" pool.
                eval_label_noise: 0.01,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_match_paper() {
        assert_eq!(Preset::UnswNb15.name(), "UNSW-NB15");
        assert_eq!(Preset::KddCup99.name(), "KDDCUP99");
        assert_eq!(Preset::NslKdd.name(), "NSL-KDD");
        assert_eq!(Preset::Sqb.name(), "SQB");
    }

    #[test]
    fn full_scale_matches_table_one() {
        let spec = Preset::UnswNb15.spec(1.0);
        assert_eq!(spec.dims, 196);
        assert_eq!(spec.labeled_total(), 300);
        assert_eq!(spec.train_unlabeled, 62_631);
        assert_eq!(spec.test_counts.target, 1_666);
        assert_eq!(spec.target_classes, 3);
        assert_eq!(spec.non_target_classes, 4);

        let kdd = Preset::KddCup99.spec(1.0);
        assert_eq!(kdd.dims, 32);
        assert_eq!(kdd.labeled_total(), 200);
        assert_eq!(kdd.non_target_classes, 1);

        let sqb = Preset::Sqb.spec(1.0);
        assert_eq!(sqb.dims, 182);
        assert_eq!(sqb.labeled_total(), 212);
        assert_eq!(sqb.test_counts.normal, 148_323);
    }

    #[test]
    fn scaled_specs_keep_structure_and_floors() {
        let spec = Preset::UnswNb15.spec(0.01);
        assert_eq!(spec.dims, 196);
        assert_eq!(spec.target_classes, 3);
        assert!(spec.labeled_per_class >= 5);
        assert!(spec.val_counts.target >= 20);
        assert!(spec.train_unlabeled >= 600);
    }

    #[test]
    fn scaled_generation_runs() {
        let bundle = Preset::KddCup99.spec(0.01).generate(42);
        assert_eq!(bundle.train.dims(), 32);
        assert!(bundle.train.summary().labeled_target >= 10);
        assert!(!bundle.test.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = Preset::NslKdd.spec(0.0);
    }
}
