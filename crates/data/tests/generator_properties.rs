//! Property tests for the synthetic benchmark generator.

use proptest::prelude::*;
use targad_data::{GeneratorSpec, SplitCounts, Truth};

fn spec_strategy() -> impl Strategy<Value = GeneratorSpec> {
    (
        2usize..24,
        1usize..4,
        1usize..4,
        0usize..4,
        0.0f64..0.2,
        0.0f64..0.8,
        0.0f64..0.9,
    )
        .prop_map(
            |(dims, groups, targets, non_targets, contamination, overlap, dropout)| {
                let mut spec = GeneratorSpec::quick_demo();
                spec.dims = dims;
                spec.normal_groups = groups;
                spec.target_classes = targets;
                spec.non_target_classes = non_targets;
                spec.contamination = contamination;
                spec.anomaly_signature_overlap = overlap;
                spec.signature_dropout = dropout;
                spec.train_unlabeled = 120;
                spec.labeled_per_class = 4;
                spec.val_counts = SplitCounts {
                    normal: 30,
                    target: 6,
                    non_target: 3 * non_targets,
                };
                spec.test_counts = SplitCounts {
                    normal: 40,
                    target: 8,
                    non_target: 4 * non_targets,
                };
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Split sizes always match the spec exactly.
    #[test]
    fn split_sizes_match(spec in spec_strategy(), seed in 0u64..10_000) {
        let bundle = spec.generate(seed);
        prop_assert_eq!(
            bundle.train.len(),
            spec.train_unlabeled + spec.labeled_total()
        );
        let v = bundle.val.summary();
        prop_assert_eq!(v.normal, spec.val_counts.normal);
        prop_assert_eq!(v.unlabeled_target, spec.val_counts.target);
        prop_assert_eq!(v.non_target, spec.val_counts.non_target);
        let t = bundle.test.summary();
        prop_assert_eq!(t.normal, spec.test_counts.normal);
    }

    /// Labeled rows are always target anomalies and only appear in train.
    #[test]
    fn labeled_invariants(spec in spec_strategy(), seed in 0u64..10_000) {
        let bundle = spec.generate(seed);
        for (i, &labeled) in bundle.train.labeled.iter().enumerate() {
            if labeled {
                prop_assert!(bundle.train.truth[i].is_target());
            }
        }
        prop_assert!(bundle.val.labeled.iter().all(|&l| !l));
        prop_assert!(bundle.test.labeled.iter().all(|&l| !l));
        prop_assert_eq!(
            bundle.train.labeled.iter().filter(|&&l| l).count(),
            spec.labeled_total()
        );
    }

    /// Features always live in [0, 1]^D.
    #[test]
    fn features_bounded(spec in spec_strategy(), seed in 0u64..10_000) {
        let bundle = spec.generate(seed);
        for split in [&bundle.train, &bundle.val, &bundle.test] {
            prop_assert!(split.features.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Class indices stay within the spec's taxonomy.
    #[test]
    fn class_indices_in_range(spec in spec_strategy(), seed in 0u64..10_000) {
        let bundle = spec.generate(seed);
        for split in [&bundle.train, &bundle.val, &bundle.test] {
            for t in &split.truth {
                match *t {
                    Truth::Normal { group } => prop_assert!(group < spec.normal_groups),
                    Truth::Target { class } => prop_assert!(class < spec.target_classes),
                    Truth::NonTarget { class } => {
                        prop_assert!(class < spec.non_target_classes.max(1))
                    }
                }
            }
        }
    }

    /// Same seed → identical bundle; different seeds → different features.
    #[test]
    fn determinism(spec in spec_strategy(), seed in 0u64..10_000) {
        let a = spec.generate(seed);
        let b = spec.generate(seed);
        prop_assert_eq!(&a.train.features, &b.train.features);
        let c = spec.generate(seed ^ 0xFFFF_FFFF);
        prop_assert_ne!(&c.train.features, &b.train.features);
    }

    /// Contamination in the unlabeled pool matches the requested rate.
    #[test]
    fn contamination_respected(spec in spec_strategy(), seed in 0u64..10_000) {
        let bundle = spec.generate(seed);
        let s = bundle.train.summary();
        let anoms = s.unlabeled_target + s.non_target;
        let n_anom = (spec.contamination * spec.train_unlabeled as f64).round() as usize;
        let n_target =
            (spec.target_share_of_contamination * n_anom as f64).round() as usize;
        // With no non-target classes, the generator backfills the
        // non-target quota with normal rows.
        let expected = if spec.non_target_classes == 0 { n_target } else { n_anom };
        prop_assert_eq!(anoms, expected);
    }
}
