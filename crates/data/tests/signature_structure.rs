//! Guards the generator property that drives the Table II reproduction:
//! target-class signatures are (nearly) contained in non-target signatures,
//! so identifying target anomalies requires negative evidence.

use std::collections::HashSet;

use targad_data::{GeneratorSpec, SplitCounts, Truth};

/// Dimensions where a class's empirical mean deviates from the overall
/// normal mean by more than `threshold`.
fn deviation_dims(
    dataset: &targad_data::Dataset,
    select: impl Fn(Truth) -> bool,
    normal_mean: &[f64],
    threshold: f64,
) -> HashSet<usize> {
    let rows: Vec<usize> = (0..dataset.len())
        .filter(|&i| select(dataset.truth[i]))
        .collect();
    assert!(!rows.is_empty(), "no rows selected");
    let dims = dataset.dims();
    let mut mean = vec![0.0; dims];
    for &i in &rows {
        for (m, &v) in mean.iter_mut().zip(dataset.features.row(i)) {
            *m += v / rows.len() as f64;
        }
    }
    (0..dims)
        .filter(|&d| (mean[d] - normal_mean[d]).abs() > threshold)
        .collect()
}

#[test]
fn target_signatures_are_nearly_contained_in_non_target_signatures() {
    // High overlap, no dropout/jitter noise sources beyond the Gaussian.
    let mut spec = GeneratorSpec::quick_demo();
    spec.dims = 20;
    spec.normal_groups = 1; // single normal mode keeps the mean test exact
    spec.target_classes = 2;
    spec.non_target_classes = 2;
    spec.anomaly_signature_overlap = 0.9;
    spec.signature_dropout = 0.0;
    spec.benign_deviation_prob = 0.0;
    spec.contamination = 0.0;
    spec.train_unlabeled = 50;
    spec.labeled_per_class = 5;
    spec.val_counts = SplitCounts {
        normal: 10,
        target: 4,
        non_target: 4,
    };
    // Large test split → tight empirical means.
    spec.test_counts = SplitCounts {
        normal: 400,
        target: 400,
        non_target: 400,
    };
    let bundle = spec.generate(17);
    let d = &bundle.test;

    let normals: Vec<usize> = (0..d.len()).filter(|&i| !d.truth[i].is_anomaly()).collect();
    let mut normal_mean = vec![0.0; d.dims()];
    for &i in &normals {
        for (m, &v) in normal_mean.iter_mut().zip(d.features.row(i)) {
            *m += v / normals.len() as f64;
        }
    }

    let threshold = 0.05;
    let non_target_union = deviation_dims(
        d,
        |t| matches!(t, Truth::NonTarget { .. }),
        &normal_mean,
        threshold,
    );
    for class in 0..spec.target_classes {
        let target_dims =
            deviation_dims(d, |t| t == Truth::Target { class }, &normal_mean, threshold);
        assert!(
            !target_dims.is_empty(),
            "target class {class} deviates nowhere"
        );
        let contained = target_dims.intersection(&non_target_union).count();
        let frac = contained as f64 / target_dims.len() as f64;
        // At 90% overlap, target deviation dims should overwhelmingly be a
        // subset of the non-target deviation dims (per-class bases differ,
        // so allow a small remainder).
        assert!(
            frac >= 0.7,
            "target class {class}: only {frac:.2} of its deviation dims are \
             covered by non-target signatures ({target_dims:?} vs {non_target_union:?})"
        );
    }

    // …while non-targets must deviate on strictly more dims than any single
    // target class (their private extras).
    let max_target_dims = (0..spec.target_classes)
        .map(|class| {
            deviation_dims(d, |t| t == Truth::Target { class }, &normal_mean, threshold).len()
        })
        .max()
        .unwrap();
    assert!(
        non_target_union.len() > max_target_dims,
        "non-target union {} should exceed the largest target signature {max_target_dims}",
        non_target_union.len()
    );
}
