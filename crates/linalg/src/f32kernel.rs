//! Single-precision inference micro-kernels with runtime SIMD dispatch.
//!
//! The f64 GEMM in [`crate::matrix`] is the *oracle*: training and every
//! reference scoring path stay double-precision and bit-exact. This module
//! is the opt-in serving fast path: an `act(x · w + bias)` kernel over `f32`
//! operands, built from
//!
//! - **pre-packed weight panels** ([`PackedF32`]): the weight matrix is the
//!   reused operand of every inference batch, so it is cast from the fitted
//!   f64 parameters *once* and laid out as zero-padded `KC x NR` panels in
//!   exactly the order the micro-kernel streams them — per-batch packing
//!   cost drops to zero;
//! - an **8x8 register micro-tile**: 8 output rows x one 8-lane f32 vector
//!   of output columns, accumulated over the contraction dimension with
//!   fused multiply-add;
//! - **runtime dispatch** ([`kernel_path`]): a once-initialized table picks
//!   the AVX2+FMA micro-kernel when the CPU reports both features (and
//!   `TARGAD_SIMD` does not override to `off`), else a portable scalar
//!   micro-kernel.
//!
//! # SIMD/scalar exactness contract
//!
//! The scalar micro-kernel is the *semantic reference* for the SIMD one,
//! and the two are **bit-identical**, which the property tests assert
//! exactly. The argument:
//!
//! 1. Both kernels compute each output element as one accumulation chain
//!    `acc = fma(a_k, b_k, acc)` over ascending `k`. The scalar path uses
//!    [`f32::mul_add`] — the same correctly-rounded fused operation as the
//!    vector `vfmadd` instruction, lane for lane.
//! 2. Partial sums spill to `out` between `KC` blocks and reload; an f32
//!    store/load round-trip is exact, so blocking does not perturb chains.
//! 3. Zero-padded panel lanes (`j >= jb`) feed only register lanes that are
//!    never stored; ragged *row* tiles (`mb <` [`MR`]) run the scalar
//!    micro-kernel under both dispatch paths.
//! 4. The bias+activation epilogue is one shared scalar function
//!    ([`EpiAct::apply_f32`]) applied to each element's final accumulated
//!    value on the last `k`-block only.
//!
//! # Safety of the `unsafe` intrinsic block
//!
//! The AVX2 micro-kernel is an `unsafe fn` solely because of
//! `#[target_feature]`: it is only reachable through [`kernel_path`], which
//! returns [`KernelPath::Avx2Fma`] strictly after
//! `is_x86_feature_detected!` confirms both `avx2` and `fma` at runtime
//! (and never on non-x86_64 builds, where the variant is uninhabited by
//! construction — the detection arm is compiled out). All pointer
//! arithmetic inside stays within the caller-checked `x`/panel/accumulator
//! bounds; DESIGN.md §14 carries the full argument.

use std::sync::OnceLock;

use crate::matrix::{EpiAct, Matrix};

/// Register tile height: output rows held in registers per micro-kernel
/// call.
pub const MR: usize = 8;
/// Register tile width: one 256-bit vector of 8 f32 output columns. The
/// AVX2 micro-kernel holds `MR` row accumulators of one vector each — 8 of
/// the 16 ymm registers — leaving room for the broadcast `a` operand and
/// the streamed `b` panel vector.
pub const NR: usize = 8;
/// Contraction-dimension block: one packed panel spans `KC x NR` f32
/// (8 KiB), L1-resident while the row tiles stream over it.
pub const KC: usize = 256;

/// CPU features relevant to the f32 kernel dispatch, as detected at
/// runtime. Recorded in bench JSON and the obs metrics snapshot so numbers
/// from different hosts are comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer/float vector extension (implies AVX).
    pub avx2: bool,
    /// Fused multiply-add (FMA3).
    pub fma: bool,
}

/// Detects the dispatch-relevant CPU features. Pure detection — the
/// `TARGAD_SIMD` override affects [`kernel_path`], not this report.
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            fma: std::arch::is_x86_feature_detected!("fma"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            avx2: false,
            fma: false,
        }
    }
}

/// The micro-kernel a [`matmul_bias_act_f32_into`] call will execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// `std::arch` AVX2+FMA 8x8 micro-tile.
    Avx2Fma,
    /// Portable scalar micro-kernel (`f32::mul_add` chains) — the semantic
    /// reference for the SIMD path and the fallback everywhere else.
    Scalar,
}

impl KernelPath {
    /// Stable wire/JSON name: `avx2_fma` or `scalar`.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Avx2Fma => "avx2_fma",
            KernelPath::Scalar => "scalar",
        }
    }
}

/// `true` when `TARGAD_SIMD` requests the scalar path (`off`, `0`,
/// `false`, or `scalar`, case-insensitively). Unset or any other value
/// means auto-detect.
fn simd_forced_off() -> bool {
    std::env::var("TARGAD_SIMD").is_ok_and(|v| {
        matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "scalar"
        )
    })
}

/// The once-initialized dispatch decision: AVX2+FMA when the CPU has both
/// and `TARGAD_SIMD` does not force the scalar path. Resolved on first use
/// and cached for the process lifetime (feature bits cannot change under a
/// running process, and a stable answer keeps every batch on one path).
pub fn kernel_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        let f = cpu_features();
        if f.avx2 && f.fma && !simd_forced_off() {
            KernelPath::Avx2Fma
        } else {
            KernelPath::Scalar
        }
    })
}

/// The weight operand of the f32 kernel: cast from f64 once and pre-packed
/// into zero-padded `KC x NR` panels, `kk`-major with `NR` consecutive
/// column values per step — the exact streaming order of the micro-kernel's
/// inner loop.
///
/// Packing at build time (instead of per GEMM call, as the f64 training
/// kernels must) is what makes the f32 path cheap for serving: weights are
/// reused by every batch, inputs are not.
#[derive(Clone, Debug)]
pub struct PackedF32 {
    /// Contraction dimension (input features of the layer).
    k: usize,
    /// Output columns.
    n: usize,
    /// Panels, indexed `[k_block][j_panel][kk * NR + j]`, each `KC * NR`
    /// long and zero-padded past `kb`/`jb`.
    panels: Vec<f32>,
}

impl PackedF32 {
    /// Casts and packs a `k x n` f64 weight matrix.
    pub fn from_matrix(w: &Matrix) -> Self {
        Self::pack(w.rows(), w.cols(), |kk, j| w[(kk, j)] as f32)
    }

    /// Packs a row-major `k x n` f32 slice (tests and synthetic weights).
    pub fn from_rows(data: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(data.len(), k * n, "PackedF32::from_rows: length mismatch");
        Self::pack(k, n, |kk, j| data[kk * n + j])
    }

    fn pack(k: usize, n: usize, at: impl Fn(usize, usize) -> f32) -> Self {
        let nkb = k.div_ceil(KC).max(1);
        let npanels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; nkb * npanels * KC * NR];
        for kb_idx in 0..nkb {
            let k0 = kb_idx * KC;
            let kb = KC.min(k.saturating_sub(k0));
            for jp in 0..npanels {
                let j0 = jp * NR;
                let jb = NR.min(n - j0);
                let base = (kb_idx * npanels + jp) * KC * NR;
                let panel = &mut panels[base..base + KC * NR];
                for kk in 0..kb {
                    for j in 0..jb {
                        panel[kk * NR + j] = at(k0 + kk, j0 + j);
                    }
                }
            }
        }
        Self { k, n, panels }
    }

    /// Contraction dimension (layer input width).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns (layer output width).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed panels (for pool accounting).
    pub fn bytes(&self) -> usize {
        self.panels.capacity() * std::mem::size_of::<f32>()
    }

    /// The `(k_block, j_panel)` panel, `KC * NR` long.
    #[inline]
    fn panel(&self, kb_idx: usize, jp: usize) -> &[f32] {
        let npanels = self.n.div_ceil(NR);
        let base = (kb_idx * npanels + jp) * KC * NR;
        &self.panels[base..base + KC * NR]
    }
}

/// Fused f32 layer kernel: `out = act(x · w + bias)` for the row block
/// `x` (row-major, whole `d_in`-wide rows), dispatching to the micro-kernel
/// chosen by [`kernel_path`]. `out.len()` must be a multiple of `w.n()`;
/// the row count is inferred from it, mirroring
/// [`crate::matmul_bias_act_rows_into`].
pub fn matmul_bias_act_f32_into(
    x: &[f32],
    d_in: usize,
    w: &PackedF32,
    bias: &[f32],
    act: EpiAct,
    out: &mut [f32],
) {
    matmul_bias_act_f32_with(kernel_path(), x, d_in, w, bias, act, out);
}

/// [`matmul_bias_act_f32_into`] on an explicitly chosen micro-kernel. This
/// is the test/bench entry point: the SIMD-vs-scalar equality suite runs
/// both paths in one process, which the cached auto dispatch cannot.
///
/// Requesting [`KernelPath::Avx2Fma`] on a CPU without both features
/// panics rather than executing illegal instructions.
pub fn matmul_bias_act_f32_with(
    path: KernelPath,
    x: &[f32],
    d_in: usize,
    w: &PackedF32,
    bias: &[f32],
    act: EpiAct,
    out: &mut [f32],
) {
    let (k, n) = (w.k(), w.n());
    assert_eq!(d_in, k, "matmul_bias_act_f32: inner mismatch");
    assert_eq!(bias.len(), n, "matmul_bias_act_f32: bias mismatch");
    if n == 0 || out.is_empty() {
        return;
    }
    assert_eq!(out.len() % n, 0, "matmul_bias_act_f32: out not whole rows");
    let rows = out.len() / n;
    assert_eq!(x.len(), rows * d_in, "matmul_bias_act_f32: x/out mismatch");
    if k == 0 {
        // Empty contraction: every accumulation chain is empty, so the
        // result is the epilogue applied to the bias alone.
        for out_row in out.chunks_mut(n) {
            for (slot, &bj) in out_row.iter_mut().zip(bias) {
                *slot = act.apply_f32(bj);
            }
        }
        return;
    }

    // Host capability gauges ride every dispatch: `is_x86_feature_detected!`
    // caches its CPUID result, so this is an atomic load per feature, and a
    // metrics snapshot taken any time after the first f32 batch identifies
    // the host and the active dispatch decision.
    let features = cpu_features();
    targad_obs::metrics::CPU_AVX2.set(u64::from(features.avx2));
    targad_obs::metrics::CPU_FMA.set(u64::from(features.fma));
    targad_obs::metrics::CPU_F32_KERNEL_SIMD.set(u64::from(kernel_path() == KernelPath::Avx2Fma));
    let simd = match path {
        KernelPath::Avx2Fma => {
            assert!(
                features.avx2 && features.fma,
                "KernelPath::Avx2Fma requested without avx2+fma support"
            );
            targad_obs::metrics::GEMM_F32_SIMD_DISPATCHES.inc();
            true
        }
        KernelPath::Scalar => {
            targad_obs::metrics::GEMM_F32_SCALAR_DISPATCHES.inc();
            false
        }
    };

    let npanels = n.div_ceil(NR);
    let mut k0 = 0;
    let mut kb_idx = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let last = k0 + kb == k;
        for jp in 0..npanels {
            let j0 = jp * NR;
            let jb = NR.min(n - j0);
            let panel = w.panel(kb_idx, jp);
            let mut i0 = 0;
            while i0 < rows {
                let mb = MR.min(rows - i0);
                let mut acc = [[0.0f32; NR]; MR];
                // Reload the spilled partial sums of earlier k-blocks; an
                // f32 store/load round-trip is exact.
                if k0 > 0 {
                    for (m, acc_row) in acc.iter_mut().enumerate().take(mb) {
                        let row = (i0 + m) * n + j0;
                        acc_row[..jb].copy_from_slice(&out[row..row + jb]);
                    }
                }
                if simd && mb == MR {
                    // SAFETY: `simd` implies runtime-verified avx2+fma (the
                    // dispatch above asserted the detection), and the
                    // pointer ranges are in bounds: rows `i0..i0+MR` of `x`
                    // at columns `k0..k0+kb`, and `kb * NR <= KC * NR`
                    // panel values.
                    #[cfg(target_arch = "x86_64")]
                    unsafe {
                        micro_avx2(x.as_ptr().add(i0 * d_in + k0), d_in, panel, kb, &mut acc);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    unreachable!("Avx2Fma path on non-x86_64");
                } else {
                    micro_scalar(x, i0 * d_in + k0, d_in, panel, kb, mb, &mut acc);
                }
                for (m, acc_row) in acc.iter().enumerate().take(mb) {
                    let row = (i0 + m) * n + j0;
                    let dst = &mut out[row..row + jb];
                    if last {
                        // Epilogue on the final k-block only: each element's
                        // accumulation chain is complete here.
                        for (j, slot) in dst.iter_mut().enumerate() {
                            *slot = act.apply_f32(acc_row[j] + bias[j0 + j]);
                        }
                    } else {
                        dst.copy_from_slice(&acc_row[..jb]);
                    }
                }
                i0 += MR;
            }
        }
        k0 += kb;
        kb_idx += 1;
    }
}

/// Portable scalar micro-kernel: the exact per-element chains of the SIMD
/// tile. `f32::mul_add` is the correctly-rounded fused operation — the same
/// arithmetic as one `vfmadd` lane — so lane `j` of SIMD row accumulator
/// `m` and `acc[m][j]` here run bit-identical chains.
#[inline]
fn micro_scalar(
    x: &[f32],
    base: usize,
    x_stride: usize,
    panel: &[f32],
    kb: usize,
    mb: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for kk in 0..kb {
        let b: &[f32; NR] = panel[kk * NR..(kk + 1) * NR].try_into().expect("NR panel");
        for (m, acc_row) in acc.iter_mut().enumerate().take(mb) {
            let a = x[base + m * x_stride + kk];
            for (slot, &bv) in acc_row.iter_mut().zip(b) {
                *slot = a.mul_add(bv, *slot);
            }
        }
    }
}

/// The AVX2+FMA 8x8 micro-tile: 8 row accumulators of one 8-lane f32
/// vector each; per `kk` step, one panel vector load and 8
/// broadcast-`a` + `vfmadd` updates.
///
/// # Safety
/// Caller must have runtime-verified `avx2` and `fma`, and guarantee
/// `x .. x + (MR-1)*x_stride + kb` and `kb * NR` panel values in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_avx2(
    x: *const f32,
    x_stride: usize,
    panel: &[f32],
    kb: usize,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= kb * NR);
    let mut r: [__m256; MR] = std::array::from_fn(|m| _mm256_loadu_ps(acc[m].as_ptr()));
    let p = panel.as_ptr();
    for kk in 0..kb {
        let b = _mm256_loadu_ps(p.add(kk * NR));
        for (m, rm) in r.iter_mut().enumerate() {
            let a = _mm256_set1_ps(*x.add(m * x_stride + kk));
            *rm = _mm256_fmadd_ps(a, b, *rm);
        }
    }
    for (m, rm) in r.iter().enumerate() {
        _mm256_storeu_ps(acc[m].as_mut_ptr(), *rm);
    }
}

/// Pre-blocking f32 kernels, the plain-loop baseline the packed/tiled
/// implementations are property-tested against (the f32 analogue of
/// [`crate::matrix::reference`]).
pub mod reference {
    use super::EpiAct;

    /// `out = act(x · w + bias)` with `w` a dense row-major `d_in x n`
    /// slice: one `f32::mul_add` chain per element over ascending `k`, then
    /// the shared scalar epilogue — the exact chains of the packed kernels
    /// (spilling partials through f32 memory between k-blocks is exact).
    pub fn matmul_bias_act_f32(
        x: &[f32],
        d_in: usize,
        w: &[f32],
        n: usize,
        bias: &[f32],
        act: EpiAct,
        out: &mut [f32],
    ) {
        assert_eq!(w.len(), d_in * n, "reference f32: weight shape mismatch");
        assert_eq!(bias.len(), n, "reference f32: bias mismatch");
        if n == 0 || out.is_empty() {
            return;
        }
        let rows = out.len() / n;
        assert_eq!(x.len(), rows * d_in, "reference f32: x/out mismatch");
        for (r, out_row) in out.chunks_mut(n).enumerate() {
            let a_row = &x[r * d_in..(r + 1) * d_in];
            for (j, slot) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (kk, &a) in a_row.iter().enumerate() {
                    acc = a.mul_add(w[kk * n + j], acc);
                }
                *slot = act.apply_f32(acc + bias[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips_the_weight_layout() {
        let k = KC + 3; // straddles two k-blocks
        let n = NR + 5; // ragged second panel
        let w: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
        let packed = PackedF32::from_rows(&w, k, n);
        assert_eq!((packed.k(), packed.n()), (k, n));
        for kb_idx in 0..k.div_ceil(KC) {
            for jp in 0..n.div_ceil(NR) {
                let panel = packed.panel(kb_idx, jp);
                for kk in 0..KC {
                    for j in 0..NR {
                        let (gk, gj) = (kb_idx * KC + kk, jp * NR + j);
                        let want = if gk < k && gj < n {
                            w[gk * n + gj]
                        } else {
                            0.0
                        };
                        assert_eq!(panel[kk * NR + j], want, "({gk},{gj})");
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_path_is_stable_and_matches_features() {
        let first = kernel_path();
        assert_eq!(kernel_path(), first, "dispatch must be cached");
        let f = cpu_features();
        if !(f.avx2 && f.fma) {
            assert_eq!(first, KernelPath::Scalar);
        }
        assert!(matches!(first.name(), "avx2_fma" | "scalar"));
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let w = PackedF32::from_rows(&[], 0, 0);
        let mut out: Vec<f32> = Vec::new();
        matmul_bias_act_f32_into(&[], 0, &w, &[], EpiAct::Relu, &mut out);
        let w = PackedF32::from_rows(&[1.0, 2.0], 1, 2);
        matmul_bias_act_f32_into(&[], 1, &w, &[0.0, 0.0], EpiAct::None, &mut out);
        assert!(out.is_empty());
    }
}
