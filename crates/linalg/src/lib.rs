//! Dense linear algebra substrate for the TargAD reproduction.
//!
//! The paper's models (autoencoders, MLP classifiers, GAN baselines) are all
//! small, tabular-data networks; a single dense row-major `f64` matrix type
//! with the handful of kernels backpropagation needs is the entire linear
//! algebra surface required. This crate provides:
//!
//! - [`Matrix`]: a row-major dense matrix with matmul variants tuned for
//!   backprop (`matmul`, [`Matrix::matmul_tn`], [`Matrix::matmul_nt`]),
//!   broadcasting helpers, reductions, and stable softmax kernels;
//! - [`par`]: runtime-parallel `_rt` kernel variants that are bit-identical
//!   to their serial counterparts at any worker count (see `targad-runtime`);
//! - [`rng`]: seeded random initialization (uniform, Xavier/Glorot,
//!   Box–Muller Gaussians) so every experiment is reproducible;
//! - [`stats`]: scalar statistics (mean/std/quantiles) shared by the
//!   clustering, metric, and experiment crates.
//!
//! Training and every reference path are `f64`: dataset sizes in the paper
//! are ≤ a few hundred thousand rows, so numerical robustness is worth more
//! than the memory. The one exception is [`f32kernel`], the opt-in
//! single-precision *inference* fast path (AVX2+FMA micro-tiles behind a
//! runtime dispatch), whose ranking fidelity is tolerance-tested against
//! the f64 oracle rather than required to be bit-exact.

pub mod f32kernel;
pub mod matrix;
pub mod par;
pub mod rng;
pub mod shared;
mod smallgemm;
pub mod stats;

pub use f32kernel::{
    cpu_features, kernel_path, matmul_bias_act_f32_into, CpuFeatures, KernelPath, PackedF32,
};
pub use matrix::{
    dense_backward_bias_into, dense_backward_data_into, dense_backward_weights_into,
    force_small_gemm, matmul_bias_act_rows_into, stable_sigmoid, stable_sigmoid_f32, EpiAct,
    Matrix, SmallGemmGuard, BLOCK_MIN_FLOPS,
};
pub use shared::{F64Buffer, SharedBuffer};
