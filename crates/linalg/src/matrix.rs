//! Row-major dense `f64` matrix with the kernels reverse-mode autodiff needs.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::shared::SharedBuffer;
use crate::smallgemm::{self, DactSrc, SrcRead, SMR, SNR};

/// Element storage of a [`Matrix`]: either a private heap vector or a
/// borrowed window of a [`SharedBuffer`] (e.g. an `mmap`ed model
/// snapshot). Borrowed storage is read-only; the first mutating access
/// promotes it to owned via a copy (see [`Matrix::make_owned`]).
#[derive(Clone)]
enum Data {
    /// Exclusively owned heap storage (the common case).
    Owned(Vec<f64>),
    /// A `[start, start + len)` window of a shared immutable buffer.
    Shared {
        buf: SharedBuffer,
        start: usize,
        len: usize,
    },
}

/// A dense row-major matrix of `f64` values.
///
/// Row-major storage keeps a row (one instance of a tabular dataset)
/// contiguous, which is the access pattern of every kernel in this
/// reproduction: batched forward/backward passes, per-row softmax,
/// per-row reconstruction errors, and distance computations.
///
/// Storage is normally an owned heap vector, but a matrix can also
/// *borrow* its elements from a [`SharedBuffer`] window
/// ([`Matrix::from_shared`]) — the zero-copy read path of the binary model
/// store, where weights score straight out of an `mmap`ed snapshot. Every
/// read path treats the two identically; mutating methods transparently
/// copy a borrowed matrix into owned storage first (copy-on-write), so
/// borrowed storage is an invisible optimization everywhere except the
/// allocation counters.
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Data,
}

impl Matrix {
    /// The elements as one row-major slice, whichever storage holds them.
    #[inline(always)]
    fn d(&self) -> &[f64] {
        match &self.data {
            Data::Owned(v) => v,
            Data::Shared { buf, start, len } => &buf.as_f64s()[*start..*start + *len],
        }
    }

    /// Mutable element access; promotes borrowed storage to owned first.
    #[inline]
    fn dm(&mut self) -> &mut [f64] {
        self.make_owned();
        match &mut self.data {
            Data::Owned(v) => v,
            Data::Shared { .. } => unreachable!("make_owned left shared storage"),
        }
    }

    /// Copy-on-write promotion: replaces a borrowed window with an owned
    /// copy of its elements (counted by `matrix.cow_promotions`). No-op
    /// for owned storage.
    fn make_owned(&mut self) {
        if let Data::Shared { .. } = self.data {
            targad_obs::metrics::MATRIX_COW_PROMOTIONS.inc();
            self.data = Data::Owned(self.d().to_vec());
        }
    }

    /// Builds a matrix borrowing the `rows * cols` elements at `start` of
    /// `buf` — no element bytes are copied, and the buffer stays alive for
    /// as long as this matrix (or any clone of it) does.
    ///
    /// # Panics
    /// Panics if the window `[start, start + rows * cols)` exceeds `buf`.
    pub fn from_shared(rows: usize, cols: usize, buf: SharedBuffer, start: usize) -> Self {
        let len = rows * cols;
        assert!(
            start.checked_add(len).is_some_and(|end| end <= buf.len()),
            "from_shared: window [{start}, {start}+{len}) exceeds buffer of {}",
            buf.len()
        );
        Self {
            rows,
            cols,
            data: Data::Shared { buf, start, len },
        }
    }

    /// Whether the elements are borrowed from a [`SharedBuffer`] (true)
    /// or privately owned (false).
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        matches!(self.data, Data::Shared { .. })
    }

    /// Heap bytes exclusively owned by this matrix: the element storage
    /// for owned matrices, `0` for borrowed ones (their bytes belong to
    /// the shared buffer — typically a file mapping — and are accounted
    /// once, by its owner).
    pub fn owned_bytes(&self) -> usize {
        match &self.data {
            Data::Owned(v) => v.capacity() * std::mem::size_of::<f64>(),
            Data::Shared { .. } => 0,
        }
    }
    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: Data::Owned(vec![value; rows * cols]),
        }
    }

    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// A `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {} values cannot fill a {rows}x{cols} matrix",
            data.len()
        );
        Self {
            rows,
            cols,
            data: Data::Owned(data),
        }
    }

    /// Builds a matrix from row slices; all rows must share one length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data: Data::Owned(data),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self {
            rows,
            cols,
            data: Data::Owned(data),
        }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.d()
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.dm()
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        match self.data {
            Data::Owned(v) => v,
            Data::Shared { buf, start, len } => buf.as_f64s()[start..start + len].to_vec(),
        }
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.d()[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        let cols = self.cols;
        &mut self.dm()[r * cols..(r + 1) * cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.d().chunks_exact(self.cols.max(1))
    }

    /// A new matrix containing the listed rows (in order, duplicates allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Copies the listed rows of `self` into `out` (an
    /// `indices.len() x self.cols()` matrix), overwriting its contents.
    pub fn take_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (indices.len(), self.cols),
            "take_rows_into: bad output shape"
        );
        for (dst, &i) in out.dm().chunks_mut(self.cols.max(1)).zip(indices) {
            dst.copy_from_slice(self.row(i));
        }
    }

    /// Stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(self.d());
        data.extend_from_slice(other.d());
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates `self` and `other` side by side (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix::from_vec(self.rows, cols, data)
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously, letting LLVM autovectorize (perf-book guidance).
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_rows_into(self, other, 0, out.dm());
        out
    }

    /// Writes `self * other` into `out`, overwriting its contents.
    ///
    /// Allocation-free: this is [`Matrix::matmul`] for callers that recycle
    /// output buffers (the pooled autograd tape). `out` may hold arbitrary
    /// stale values; it is fully overwritten. Bit-identical to `matmul`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch or if `out` is not
    /// `self.rows() x other.cols()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_into: inner dimension mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into: bad output shape"
        );
        out.fill(0.0);
        matmul_rows_into(self, other, 0, out.dm());
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// This is the shape of the weight gradient in a linear layer
    /// (`dW = X^T * dY`), so it is a hot kernel during training.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row mismatch ({}x{})^T * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        matmul_tn_rows_into(self, other, 0, out.dm());
        out
    }

    /// Writes `self^T * other` into `out`, overwriting its contents.
    /// Allocation-free twin of [`Matrix::matmul_tn`]; bit-identical to it.
    ///
    /// # Panics
    /// Panics on a row mismatch or if `out` is not
    /// `self.cols() x other.cols()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn_into: row mismatch ({}x{})^T * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn_into: bad output shape"
        );
        out.fill(0.0);
        matmul_tn_rows_into(self, other, 0, out.dm());
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// This is the shape of the input gradient in a linear layer
    /// (`dX = dY * W^T`) and of pairwise-dot-product distance kernels.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: column mismatch ({}x{}) * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        matmul_nt_rows_into(self, other, 0, out.dm());
        out
    }

    /// Writes `self * other^T` into `out`, overwriting its contents.
    /// Allocation-free twin of [`Matrix::matmul_nt`]; bit-identical to it.
    ///
    /// # Panics
    /// Panics on a column mismatch or if `out` is not
    /// `self.rows() x other.rows()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt_into: column mismatch ({}x{}) * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_nt_into: bad output shape"
        );
        out.fill(0.0);
        matmul_nt_rows_into(self, other, 0, out.dm());
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out` (must be
    /// `self.cols() x self.rows()`), overwriting its contents.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: bad output shape"
        );
        let (rows, cols) = (self.rows, self.cols);
        let src = self.d();
        let dst = out.dm();
        for r in 0..rows {
            for c in 0..cols {
                dst[c * rows + r] = src[r * cols + c];
            }
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::Owned(self.d().iter().map(|&v| f(v)).collect()),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in self.dm() {
            *v = f(*v);
        }
    }

    /// Writes `f` applied to every element of `self` into `out` (same
    /// shape), overwriting its contents.
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) {
        assert_eq!(self.shape(), out.shape(), "map_into: shape mismatch");
        for (o, &v) in out.dm().iter_mut().zip(self.d()) {
            *o = f(v);
        }
    }

    /// Combines two same-shape matrices elementwise with `f`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: Data::Owned(
                self.d()
                    .iter()
                    .zip(other.d())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        }
    }

    /// Writes `f(self, other)` elementwise into `out` (all three the same
    /// shape), overwriting its contents.
    pub fn zip_map_into(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64, out: &mut Matrix) {
        assert_eq!(self.shape(), other.shape(), "zip_map_into: shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_map_into: bad output shape");
        for (o, (&a, &b)) in out.dm().iter_mut().zip(self.d().iter().zip(other.d())) {
            *o = f(a, b);
        }
    }

    /// Replaces `self` with `f(self, other)` elementwise (shapes must match).
    pub fn zip_map_inplace(&mut self, other: &Matrix, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map_inplace: shape mismatch"
        );
        for (a, &b) in self.dm().iter_mut().zip(other.d()) {
            *a = f(*a, b);
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f64) -> Matrix {
        self.map(|v| v + s)
    }

    /// In-place `self += other * s` (axpy). Shapes must match.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f64) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_inplace: shape mismatch"
        );
        for (a, &b) in self.dm().iter_mut().zip(other.d()) {
            *a += b * s;
        }
    }

    /// Overwrites `self` with the contents of `src` (shapes must match).
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        self.dm().copy_from_slice(src.d());
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.dm().fill(value);
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    /// Panics unless `row` is `1 x self.cols()`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: expected a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.d()) {
                *o += b;
            }
        }
        out
    }

    /// Writes `self` with `row` added to every row into `out` (same shape
    /// as `self`), overwriting its contents.
    pub fn add_row_broadcast_into(&self, row: &Matrix, out: &mut Matrix) {
        assert_eq!(row.rows, 1, "add_row_broadcast_into: expected a row vector");
        assert_eq!(
            row.cols, self.cols,
            "add_row_broadcast_into: column mismatch"
        );
        assert_eq!(
            self.shape(),
            out.shape(),
            "add_row_broadcast_into: bad output shape"
        );
        for (out_row, src_row) in out
            .dm()
            .chunks_mut(self.cols)
            .zip(self.d().chunks(self.cols))
        {
            for ((o, &a), &b) in out_row.iter_mut().zip(src_row).zip(row.d()) {
                *o = a + b;
            }
        }
    }

    /// Multiplies row `r` of `self` by `col[r]` (an `rows x 1` column vector).
    ///
    /// This is the kernel behind per-instance loss weights `w(x)` (Eq. 6 of
    /// the paper).
    ///
    /// # Panics
    /// Panics unless `col` is `self.rows() x 1`.
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_broadcast: expected a column vector");
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        out.mul_col_broadcast_inplace(col);
        out
    }

    /// Multiplies row `r` of `self` by `col[r]` in place.
    ///
    /// # Panics
    /// Panics unless `col` is `self.rows() x 1`.
    pub fn mul_col_broadcast_inplace(&mut self, col: &Matrix) {
        assert_eq!(
            col.cols, 1,
            "mul_col_broadcast_inplace: expected a column vector"
        );
        assert_eq!(
            col.rows, self.rows,
            "mul_col_broadcast_inplace: row mismatch"
        );
        let cols = self.cols.max(1);
        for (row, &w) in self.dm().chunks_mut(cols).zip(col.d()) {
            for o in row {
                *o *= w;
            }
        }
    }

    /// Writes `self` with row `r` scaled by `col[r]` into `out` (same shape
    /// as `self`), overwriting its contents.
    pub fn mul_col_broadcast_into(&self, col: &Matrix, out: &mut Matrix) {
        assert_eq!(
            col.cols, 1,
            "mul_col_broadcast_into: expected a column vector"
        );
        assert_eq!(col.rows, self.rows, "mul_col_broadcast_into: row mismatch");
        assert_eq!(
            self.shape(),
            out.shape(),
            "mul_col_broadcast_into: bad output shape"
        );
        let cols = self.cols.max(1);
        for ((out_row, src_row), &w) in out
            .dm()
            .chunks_mut(cols)
            .zip(self.d().chunks(cols))
            .zip(col.d())
        {
            for (o, &a) in out_row.iter_mut().zip(src_row) {
                *o = a * w;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.d().iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Per-row sums as an `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        self.row_sums_into(&mut out);
        out
    }

    /// Writes the per-row sums into `out` (an `rows x 1` column vector),
    /// overwriting its contents.
    pub fn row_sums_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, 1),
            "row_sums_into: bad output shape"
        );
        for (o, row) in out.dm().iter_mut().zip(self.iter_rows()) {
            *o = row.iter().sum();
        }
    }

    /// Per-column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sums_into(&mut out);
        out
    }

    /// Writes the per-column sums into `out` (a `1 x cols` row vector),
    /// overwriting its contents.
    pub fn col_sums_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (1, self.cols),
            "col_sums_into: bad output shape"
        );
        out.fill(0.0);
        let sums = out.dm();
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
    }

    /// Per-row squared Euclidean norms, as a plain vector.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.d().iter().map(|v| v * v).sum()
    }

    /// Index of the maximum value in row `r` (first one on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Maximum value in row `r`.
    pub fn max_row(&self, r: usize) -> f64 {
        self.row(r)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// Replaces every row with its numerically stable softmax.
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    /// Numerically stable row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.log_softmax_rows_inplace();
        out
    }

    /// Replaces every row with its numerically stable log-softmax.
    pub fn log_softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
    }

    /// Row-wise `log(sum(exp(.)))`, numerically stable, as an `rows x 1`
    /// column vector.
    pub fn logsumexp_rows(&self) -> Matrix {
        let vals: Vec<f64> = self
            .iter_rows()
            .map(|row| {
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
            })
            .collect();
        Matrix::col_vector(&vals)
    }

    /// Squared Euclidean distance between row `r` of `self` and `point`.
    pub fn row_sq_dist(&self, r: usize, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.cols);
        self.row(r)
            .iter()
            .zip(point)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.d().iter().all(|v| v.is_finite())
    }
}

// ---------------------------------------------------------------------------
// Blocked GEMM kernels.
//
// All three variants share one determinism contract: every output element is
// a single accumulator chain over its contraction index in ascending order,
// independent of how the output rows are partitioned across workers and of
// which code path (packed-blocked or small-problem naive) executes it.
// Spilling a partial sum to `out` between k-blocks and reloading it is exact
// (an f64 store/load round-trip loses nothing), so cache blocking does not
// perturb the chain. Zero-padding the packed panels only feeds the unused
// register lanes, which are never stored. DESIGN.md §9 has the full argument.

/// Overflow-safe logistic sigmoid: `1 / (1 + e^{-x})` evaluated so the
/// exponential argument is never positive. This is the single definition the
/// tape op, the `eval`/`eval_rt` inference paths, and the fused GEMM
/// epilogue all share — bit-identity between them starts here.
#[inline]
pub fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Single-precision twin of [`stable_sigmoid`], used by the f32 inference
/// kernels ([`crate::f32kernel`]). Same branch structure, so the f32 path is
/// overflow-safe for the same reasons.
#[inline]
pub fn stable_sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Elementwise activation applied by the fused GEMM epilogue
/// ([`matmul_bias_act_rows_into`]). Each variant is the exact scalar formula
/// of the corresponding inference-path activation, so fusing it into the
/// kernel's write-back is bit-identical to a separate full-matrix pass: the
/// epilogue only ever sees the final accumulated value of an out element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EpiAct {
    /// Identity (no activation).
    #[default]
    None,
    /// Rectified linear unit, `x.max(0.0)`.
    Relu,
    /// Leaky ReLU with the fixed slope 0.01 used across the reproduction.
    LeakyRelu,
    /// Logistic sigmoid via [`stable_sigmoid`].
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl EpiAct {
    /// Applies the activation to one scalar.
    #[inline(always)]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            EpiAct::None => x,
            EpiAct::Relu => x.max(0.0),
            EpiAct::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            EpiAct::Sigmoid => stable_sigmoid(x),
            EpiAct::Tanh => x.tanh(),
        }
    }

    /// Applies the activation to one `f32` scalar — the epilogue of the f32
    /// inference kernels ([`crate::f32kernel`]). Each variant is the exact
    /// single-precision analogue of [`EpiAct::apply`]; the f32 path carries
    /// its own tolerance contract (ranking parity vs the f64 oracle), so
    /// only SIMD-vs-scalar-f32 bit-identity matters here, and both kernel
    /// paths share this one scalar epilogue.
    #[inline(always)]
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            EpiAct::None => x,
            EpiAct::Relu => x.max(0.0),
            EpiAct::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            EpiAct::Sigmoid => stable_sigmoid_f32(x),
            EpiAct::Tanh => x.tanh(),
        }
    }

    /// The backward counterpart of [`EpiAct::apply`]: the upstream gradient
    /// `g` times the activation derivative, with the derivative computed
    /// from the layer *output* `y = apply(z)` rather than the
    /// pre-activation `z`. Exact for every variant: `y > 0 ⟺ z > 0` for
    /// the ReLU family (so the branch picks the identical side), and the
    /// sigmoid/tanh derivatives are already expressed in terms of the
    /// output. Each arm performs the exact scalar op sequence of the
    /// corresponding unfused tape backward arm, so fusing this product into
    /// a gradient GEMM's read path is bit-identical to materializing
    /// `dZ = dA ⊙ act'(Z)` first.
    #[inline(always)]
    pub fn grad_from_output(self, g: f64, y: f64) -> f64 {
        match self {
            EpiAct::None => g,
            EpiAct::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            EpiAct::LeakyRelu => {
                if y > 0.0 {
                    g
                } else {
                    0.01 * g
                }
            }
            EpiAct::Sigmoid => g * (y * (1.0 - y)),
            EpiAct::Tanh => g * (1.0 - y * y),
        }
    }
}

/// Register tile height: output rows held in registers per micro-kernel call.
const MR: usize = 4;
/// Register tile width: output columns held in registers per micro-kernel
/// call. `MR * NR = 32` accumulators fit the 16 × 256-bit vector registers
/// of any x86-64 with room for the `a`/`b` operands.
const NR: usize = 8;
/// Contraction-dimension block: one packed B panel spans `KC x NR` and stays
/// L1-resident while `MC / MR` micro-tiles stream over it.
const KC: usize = 256;
/// Output-row block: one packed A block spans `MC x KC` (512 KiB / 8 =
/// 128 KiB at f64) and stays L2-resident across the `j` sweep.
const MC: usize = 64;
/// The pre-tiling dispatch boundary, kept for the `TARGAD_SMALL_GEMM=off`
/// escape hatch: with the tiled path disabled, problems below this many
/// multiply-adds run the scalar loops and everything else runs the blocked
/// kernel — exactly the dispatch the repo had before the register-tiled
/// small path existed. With the tiled path enabled (the default) the
/// blocked/tiled split is governed by the per-variant ceilings
/// (`SMALL_MAX_FLOPS_*`) instead. All three paths compute identical
/// accumulation chains.
pub const BLOCK_MIN_FLOPS: usize = 1 << 18;

/// Largest `m*n*k` the packing-free tiled path handles for `A*B`:
/// measured on the shard-shaped training sweep, tiled nn beats the blocked
/// kernel through 2^19 multiply-adds (128x64x64: ~58 vs ~63 us) and ties or
/// loses above. Inclusive bound — the training sweep's 128x64x32 GEMMs land
/// exactly on 2^18 and were the motivating stuck-on-blocked shapes.
const SMALL_MAX_FLOPS_NN: usize = 1 << 19;

/// Tiled-path ceiling for `A*B^T`: the nt tile reads B columns at stride
/// `k`, which blocked packing amortizes but the packing-free path cannot,
/// so tiled nt only holds its own through 2^18 multiply-adds (128x64x32:
/// ~43 vs ~44 us; at 2^19 it is ~40% behind).
const SMALL_MAX_FLOPS_NT: usize = 1 << 18;

/// Tiled-path ceiling for `A^T*B`: both operand walks are contiguous in
/// the tn tile, so it stays ahead of the blocked kernel through 2^20
/// multiply-adds (128x128x64: ~100 vs ~108 us).
const SMALL_MAX_FLOPS_TN: usize = 1 << 20;

/// Output area (`rows * cols`) below which even register tiling is not
/// worth entering: a single `SMR x SNR` tile. Such outputs run the scalar
/// loops (the `gemm.naive_dispatches` counter); everything else below
/// [`BLOCK_MIN_FLOPS`] takes the tiled small path
/// (`gemm.small_dispatches`).
const SMALL_MIN_AREA: usize = SMR * SNR;

/// `true` when `TARGAD_SMALL_GEMM` requests the scalar loops (`off`, `0`,
/// or `false`, case-insensitively) for every problem below
/// [`BLOCK_MIN_FLOPS`] — the pre-tiling dispatch behaviour. Resolved on
/// first use and cached, like `TARGAD_SIMD`.
fn small_gemm_env_off() -> bool {
    static OFF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OFF.get_or_init(|| {
        std::env::var("TARGAD_SMALL_GEMM")
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
    })
}

/// In-process override for the small-GEMM gate: 0 = follow the
/// environment, 1 = forced on, 2 = forced off. Only [`force_small_gemm`]
/// writes non-zero values, under [`SMALL_FORCE_LOCK`].
static SMALL_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Serializes [`force_small_gemm`] holders — the override is process
/// global (pool workers must see the same answer as the driving thread).
static SMALL_FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Should sub-[`BLOCK_MIN_FLOPS`] problems take the register-tiled small
/// kernels? All three paths are bit-identical, so this is a performance
/// escape hatch (`TARGAD_SMALL_GEMM=off`) and the lever benches use to
/// time the tiled path against its scalar predecessor — never a
/// semantics switch.
#[inline]
fn small_gemm_enabled() -> bool {
    match SMALL_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !small_gemm_env_off(),
    }
}

/// Holds the small-GEMM override; dropping it restores environment
/// resolution.
pub struct SmallGemmGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for SmallGemmGuard {
    fn drop(&mut self) {
        SMALL_OVERRIDE.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Forces the register-tiled small-GEMM path on or off for the whole
/// process until the returned guard drops. Concurrent callers queue on an
/// internal lock, so overrides never overlap.
pub fn force_small_gemm(on: bool) -> SmallGemmGuard {
    let lock = SMALL_FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    SMALL_OVERRIDE.store(if on { 1 } else { 2 }, std::sync::atomic::Ordering::Relaxed);
    SmallGemmGuard { _lock: lock }
}

/// Which kernel a GEMM dispatch takes. Selected by [`gemm_path`]; every
/// path computes the same ascending-`k` accumulation chains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GemmPath {
    /// Plain triple loop (`gemm.naive_dispatches`).
    Scalar,
    /// Packing-free register-tiled small kernel (`gemm.small_dispatches`).
    Small,
    /// Packed blocked kernel (`gemm.kernel_dispatches`).
    Blocked,
}

/// Picks the kernel for an `rows x n` output over a `k`-long contraction,
/// bumping the matching dispatch counter. `small_max` is the
/// variant-specific tiled ceiling (`SMALL_MAX_FLOPS_*`, inclusive). With
/// the tiled path disabled ([`force_small_gemm`] /
/// `TARGAD_SMALL_GEMM=off`) this reproduces the pre-tiling dispatch:
/// scalar below [`BLOCK_MIN_FLOPS`], blocked at or above it.
fn gemm_path(rows: usize, n: usize, k: usize, small_max: usize) -> GemmPath {
    let flops = rows * n * k;
    let path = if small_gemm_enabled() {
        if flops > small_max {
            GemmPath::Blocked
        } else if rows * n < SMALL_MIN_AREA {
            GemmPath::Scalar
        } else {
            GemmPath::Small
        }
    } else if flops < BLOCK_MIN_FLOPS {
        GemmPath::Scalar
    } else {
        GemmPath::Blocked
    };
    match path {
        GemmPath::Scalar => targad_obs::metrics::GEMM_NAIVE_DISPATCHES.inc(),
        GemmPath::Small => targad_obs::metrics::GEMM_SMALL_DISPATCHES.inc(),
        GemmPath::Blocked => targad_obs::metrics::GEMM_KERNEL_DISPATCHES.inc(),
    }
    path
}

/// The innermost register tile: `acc[m][c] += a[kk*MR+m] * b[kk*NR+c]` for
/// `kk` ascending. `apack` is kk-major with `MR` A values per step; `bpack`
/// is kk-major with `NR` B values per step. Fixed-size rows let LLVM keep
/// the whole tile in vector registers.
#[inline(always)]
fn gemm_micro(apack: &[f64], bpack: &[f64], kb: usize, acc: &mut [[f64; NR]; MR]) {
    for (a_step, b_step) in apack.chunks_exact(MR).zip(bpack.chunks_exact(NR)).take(kb) {
        // Fixed-size views so the compiler sees exact trip counts and keeps
        // the whole tile in vector registers with no bounds checks.
        let a_step: &[f64; MR] = a_step.try_into().expect("MR chunk");
        let b_step: &[f64; NR] = b_step.try_into().expect("NR chunk");
        for (acc_row, &av) in acc.iter_mut().zip(a_step) {
            for (o, &bv) in acc_row.iter_mut().zip(b_step) {
                *o += av * bv;
            }
        }
    }
}

/// Packs the A block `[i0, i0+ib) x [k0, k0+kb)` into `apack`, tile-major:
/// tile `t` holds rows `i0 + t*MR ..`, laid out kk-major with `MR` values per
/// step, rows past `ib` padded with zeros. The source element for (row `i`,
/// contraction `k`) is `data.at(base + i*i_stride + k*k_stride)` — `(i_stride,
/// k_stride) = (cols, 1)` packs A for `A*B`, `(1, cols)` packs it transposed
/// for `A^T*B`, so both GEMM variants share this routine and the driver.
/// Generic over [`SrcRead`]: a [`DactSrc`] A fuses the backward
/// activation-derivative product into the pack, each `dZ` element computed
/// exactly once (every A element belongs to exactly one `(i0, k0)` block).
#[allow(clippy::too_many_arguments)]
fn pack_a_block<A: SrcRead>(
    data: A,
    base: usize,
    i_stride: usize,
    k_stride: usize,
    i0: usize,
    ib: usize,
    k0: usize,
    kb: usize,
    apack: &mut [f64; MC * KC],
) {
    let tiles = ib.div_ceil(MR);
    if k_stride == 1 {
        // Row-major A: each packed row is a contiguous k-run, read in bulk
        // (one vectorizable `read_run` per row) and scattered into the
        // tile's kk-major layout.
        let mut run = [0.0f64; KC];
        for (t, tile) in apack.chunks_exact_mut(KC * MR).take(tiles).enumerate() {
            let mb = (ib - t * MR).min(MR);
            for m in 0..MR {
                if m < mb {
                    let src = base + (i0 + t * MR + m) * i_stride + k0;
                    data.read_run(src, &mut run[..kb]);
                    for (kk, &v) in run[..kb].iter().enumerate() {
                        tile[kk * MR + m] = v;
                    }
                } else {
                    for kk in 0..kb {
                        tile[kk * MR + m] = 0.0;
                    }
                }
            }
        }
    } else if i_stride == 1 {
        // Transposed A: for each contraction step the `MR` row values are
        // contiguous, so each tile step is one short bulk read.
        for (t, tile) in apack.chunks_exact_mut(KC * MR).take(tiles).enumerate() {
            let mb = (ib - t * MR).min(MR);
            for (kk, dst) in tile.chunks_exact_mut(MR).take(kb).enumerate() {
                let src = base + (i0 + t * MR) + (k0 + kk) * k_stride;
                data.read_run(src, &mut dst[..mb]);
                dst[mb..].fill(0.0);
            }
        }
    } else {
        for (t, tile) in apack.chunks_exact_mut(KC * MR).take(tiles).enumerate() {
            let mb = (ib - t * MR).min(MR);
            for (kk, dst) in tile.chunks_exact_mut(MR).take(kb).enumerate() {
                let src = base + (i0 + t * MR) * i_stride + (k0 + kk) * k_stride;
                for (m, d) in dst.iter_mut().enumerate() {
                    *d = if m < mb {
                        data.at(src + m * i_stride)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the B panel `[k0, k0+kb) x [j0, j0+jb)` into `bpack`, kk-major with
/// `NR` values per step, columns past `jb` padded with zeros.
fn pack_b_panel(
    b: &Matrix,
    k0: usize,
    kb: usize,
    j0: usize,
    jb: usize,
    bpack: &mut [f64; KC * NR],
) {
    for (kk, dst) in bpack.chunks_exact_mut(NR).take(kb).enumerate() {
        let start = (k0 + kk) * b.cols + j0;
        dst[..jb].copy_from_slice(&b.d()[start..start + jb]);
        dst[jb..].fill(0.0);
    }
}

/// [`pack_b_panel`] generic over the element read path: a [`DactSrc`] B
/// fuses the backward activation-derivative product `dZ = dA ⊙ act'(Z)`
/// into the pack of `dW = Xᵀ·dZ`'s B operand. The blocked driver re-packs
/// B panels once per `MC`-row block of the output; a fused read recomputes
/// the identical value each time, so results cannot depend on the blocking.
fn pack_b_panel_src<B: SrcRead>(
    b: B,
    b_cols: usize,
    k0: usize,
    kb: usize,
    j0: usize,
    jb: usize,
    bpack: &mut [f64; KC * NR],
) {
    for (kk, dst) in bpack.chunks_exact_mut(NR).take(kb).enumerate() {
        let start = (k0 + kk) * b_cols + j0;
        b.read_run(start, &mut dst[..jb]);
        dst[jb..].fill(0.0);
    }
}

/// [`pack_b_panel`] for a transposed B: panel column `c` is row `j0 + c` of
/// `b`, so the contraction index walks `b`'s rows contiguously. This is how
/// `a * b^T` reuses the straight GEMM driver — the packed panel is laid out
/// exactly as [`pack_b_panel`] would lay out a materialized `b^T`.
fn pack_bt_panel(
    b: &Matrix,
    k0: usize,
    kb: usize,
    j0: usize,
    jb: usize,
    bpack: &mut [f64; KC * NR],
) {
    for c in 0..NR {
        if c < jb {
            let start = (j0 + c) * b.cols + k0;
            for (kk, &v) in b.d()[start..start + kb].iter().enumerate() {
                bpack[kk * NR + c] = v;
            }
        } else {
            for kk in 0..kb {
                bpack[kk * NR + c] = 0.0;
            }
        }
    }
}

/// The shared blocked driver behind all three `matmul_*_rows_into` kernels:
/// accumulates `A * B` into `out` where `A` is the `rows x kdim` operand
/// addressed through `(a_base, a_istride, a_kstride)` as in
/// [`pack_a_block`], and `B` is delivered in packed `KC x NR` panels by
/// `pack_b` ([`pack_b_panel`] for a row-major B, [`pack_bt_panel`] for a
/// transposed one). `out` holds `rows` full rows of `n` and is accumulated
/// into (callers pre-zero it), k-blocks ascending.
///
/// `epi`, when set, is a fused `(bias, activation)` epilogue applied at the
/// tile write-back of the *final* k-block only — every earlier k-block still
/// spills the raw partial sum (exact: an f64 store/load round-trip loses
/// nothing), so the activation only ever sees the fully accumulated entry
/// and the result is bit-identical to a separate bias-broadcast plus
/// elementwise-activation pass over the finished product.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<A: SrcRead>(
    a_data: A,
    a_base: usize,
    a_istride: usize,
    a_kstride: usize,
    kdim: usize,
    n: usize,
    pack_b: impl Fn(usize, usize, usize, usize, &mut [f64; KC * NR]),
    epi: Option<(&[f64], EpiAct)>,
    out: &mut [f64],
) {
    let rows = out.len() / n;
    let mut apack = [0.0f64; MC * KC];
    let mut bpack = [0.0f64; KC * NR];
    let mut i0 = 0;
    while i0 < rows {
        let ib = (rows - i0).min(MC);
        let tiles = ib.div_ceil(MR);
        let mut k0 = 0;
        while k0 < kdim {
            let kb = (kdim - k0).min(KC);
            // The epilogue fires only on the k-block that completes each
            // element's accumulation chain.
            let fin = if k0 + kb == kdim { epi } else { None };
            pack_a_block(
                a_data, a_base, a_istride, a_kstride, i0, ib, k0, kb, &mut apack,
            );
            let mut j0 = 0;
            while j0 < n {
                let jb = (n - j0).min(NR);
                pack_b(k0, kb, j0, jb, &mut bpack);
                for t in 0..tiles {
                    let mb = (ib - t * MR).min(MR);
                    let base = (i0 + t * MR) * n + j0;
                    let mut acc = [[0.0f64; NR]; MR];
                    for (m, acc_row) in acc.iter_mut().enumerate().take(mb) {
                        acc_row[..jb].copy_from_slice(&out[base + m * n..base + m * n + jb]);
                    }
                    gemm_micro(&apack[t * KC * MR..(t + 1) * KC * MR], &bpack, kb, &mut acc);
                    for (m, acc_row) in acc.iter().enumerate().take(mb) {
                        let dst = &mut out[base + m * n..base + m * n + jb];
                        match fin {
                            Some((bias, act)) => {
                                for ((o, &v), &bj) in
                                    dst.iter_mut().zip(&acc_row[..jb]).zip(&bias[j0..j0 + jb])
                                {
                                    *o = act.apply(v + bj);
                                }
                            }
                            None => dst.copy_from_slice(&acc_row[..jb]),
                        }
                    }
                }
                j0 += NR;
            }
            k0 += KC;
        }
        i0 += MC;
    }
}

/// Computes out rows `[first_row, first_row + out.len() / b.cols())` of
/// `a * b` into `out` (a row-major slice of whole out rows), accumulating
/// into the existing contents (callers pre-zero `out`).
///
/// Each out element accumulates over `k` in ascending order and depends only
/// on its own global indices, so any partition of the row range produces
/// bit-identical results — this is the kernel behind both the serial
/// [`Matrix::matmul`] and the runtime-parallel [`Matrix::matmul_rt`].
pub(crate) fn matmul_rows_into(a: &Matrix, b: &Matrix, first_row: usize, out: &mut [f64]) {
    let n = b.cols;
    if n == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / n;
    match gemm_path(rows, n, a.cols, SMALL_MAX_FLOPS_NN) {
        GemmPath::Scalar => {
            let base = first_row * a.cols;
            smallgemm::gemm_nn_scalar(a.d(), base, a.cols, a.cols, b.d(), n, None, out);
            return;
        }
        GemmPath::Small => {
            let base = first_row * a.cols;
            smallgemm::gemm_nn_small(a.d(), base, a.cols, a.cols, b.d(), n, None, out);
            return;
        }
        GemmPath::Blocked => {}
    }
    let pack_b = |k0, kb, j0, jb, bp: &mut _| pack_b_panel(b, k0, kb, j0, jb, bp);
    gemm_blocked(
        a.d(),
        first_row * a.cols,
        a.cols,
        1,
        a.cols,
        n,
        pack_b,
        None,
        out,
    );
}

/// Computes out rows `[first_row, ...)` of `a * b^T` into `out`,
/// accumulating into the existing contents (callers pre-zero `out`).
///
/// Every element is a single dot-product chain over `k` ascending — each
/// depends only on its own indices, so any row-range partition is
/// bit-identical. The blocked path packs rows of `b` as transposed panels
/// ([`pack_bt_panel`]) and reuses the straight GEMM driver.
pub(crate) fn matmul_nt_rows_into(a: &Matrix, b: &Matrix, first_row: usize, out: &mut [f64]) {
    let n = b.rows;
    if n == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / n;
    match gemm_path(rows, n, a.cols, SMALL_MAX_FLOPS_NT) {
        GemmPath::Scalar => {
            let base = first_row * a.cols;
            smallgemm::gemm_nt_scalar(a.d(), base, a.cols, a.cols, b.d(), b.cols, n, out);
            return;
        }
        GemmPath::Small => {
            let base = first_row * a.cols;
            smallgemm::gemm_nt_small(a.d(), base, a.cols, a.cols, b.d(), b.cols, n, out);
            return;
        }
        GemmPath::Blocked => {}
    }
    let pack_b = |k0, kb, j0, jb, bp: &mut _| pack_bt_panel(b, k0, kb, j0, jb, bp);
    gemm_blocked(
        a.d(),
        first_row * a.cols,
        a.cols,
        1,
        a.cols,
        n,
        pack_b,
        None,
        out,
    );
}

/// Computes out rows `[first_k, ...)` of `a^T * b` into `out`, accumulating
/// into the existing contents (callers pre-zero `out`).
///
/// Accumulates over data rows `r` in ascending order — the same per-element
/// operand sequence as `a.transpose().matmul(&b)`, so the two are
/// bit-identical. The blocked path reuses [`gemm_blocked`] with A addressed
/// through its transpose strides; the packed panels are identical to what a
/// materialized transpose would produce, so the chains match exactly.
pub(crate) fn matmul_tn_rows_into(a: &Matrix, b: &Matrix, first_k: usize, out: &mut [f64]) {
    let n = b.cols;
    if n == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / n;
    match gemm_path(rows, n, a.rows, SMALL_MAX_FLOPS_TN) {
        GemmPath::Scalar => {
            smallgemm::gemm_tn_scalar(a.d(), a.cols, a.rows, first_k, b.d(), n, out);
        }
        GemmPath::Small => {
            smallgemm::gemm_tn_small(a.d(), a.cols, a.rows, first_k, b.d(), n, out);
        }
        GemmPath::Blocked => {
            let pack_b = |k0, kb, j0, jb, bp: &mut _| pack_b_panel(b, k0, kb, j0, jb, bp);
            gemm_blocked(a.d(), first_k, 1, a.cols, a.rows, n, pack_b, None, out);
        }
    }
}

/// The fused dense-layer kernel behind the `ScoreEngine` inference path:
/// computes `act(x · w + bias)` for the row block `x_rows` (a row-major
/// slice of whole `d_in`-wide rows) directly into `out`, with the bias-add
/// and elementwise activation applied in the GEMM's write-back instead of
/// as separate full-matrix passes.
///
/// Bit-identical to `x.matmul(w).add_row_broadcast(bias)` followed by an
/// elementwise activation map: the accumulation chains are the shared GEMM
/// chains (naive and blocked compute identical ones — see the determinism
/// note above), and the epilogue applies the exact same `+ bias[j]` then
/// `act` scalar sequence to each element's final accumulated value. Each out
/// row depends only on its own input row, so any partition of a larger
/// matrix into row blocks — and any assignment of blocks to workers — yields
/// bit-identical scores.
pub fn matmul_bias_act_rows_into(
    x_rows: &[f64],
    d_in: usize,
    w: &Matrix,
    bias: &[f64],
    act: EpiAct,
    out: &mut [f64],
) {
    let n = w.cols;
    assert_eq!(w.rows, d_in, "matmul_bias_act_rows_into: inner mismatch");
    assert_eq!(bias.len(), n, "matmul_bias_act_rows_into: bias mismatch");
    if n == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / n;
    assert_eq!(
        x_rows.len(),
        rows * d_in,
        "matmul_bias_act_rows_into: x/out row mismatch"
    );
    out.fill(0.0);
    match gemm_path(rows, n, d_in, SMALL_MAX_FLOPS_NN) {
        GemmPath::Scalar => {
            smallgemm::gemm_nn_scalar(x_rows, 0, d_in, d_in, w.d(), n, Some((bias, act)), out);
        }
        GemmPath::Small => {
            smallgemm::gemm_nn_small(x_rows, 0, d_in, d_in, w.d(), n, Some((bias, act)), out);
        }
        GemmPath::Blocked => {
            let pack_b = |k0, kb, j0, jb, bp: &mut _| pack_b_panel(w, k0, kb, j0, jb, bp);
            gemm_blocked(x_rows, 0, d_in, 1, d_in, n, pack_b, Some((bias, act)), out);
        }
    }
}

// ---------------------------------------------------------------------------
// Fused dense-layer backward kernels.
//
// The backward pass of a dense layer `y = act(x·W + b)` needs three
// products of `dZ = dA ⊙ act'(Z)`: the bias gradient (column sums), the
// data gradient `dX = dZ·Wᵀ`, and the weight gradient `dW = Xᵀ·dZ`. The
// unfused tape arms materialize `dZ` as a full matrix first; the entries
// below instead read `dZ` elements through [`DactSrc`] — computed on the
// fly from the upstream gradient `g` and the stored layer output `y`
// (see [`EpiAct::grad_from_output`]) as a prologue on the GEMM read path.
// The per-element multiply happens *before* any accumulation, so every
// accumulation chain is bit-identical to materialize-then-multiply.

/// Fused bias gradient: `out[j] = Σ_r act.grad_from_output(g[r][j],
/// y[r][j])` — the column sums of `dZ`, rows ascending, without
/// materializing `dZ`. Bit-identical to mapping `dZ` elementwise and then
/// calling [`Matrix::col_sums_into`] (same chains, same order).
///
/// # Panics
/// Panics unless `g` and `y` share a shape and `out` is `1 x g.cols()`.
pub fn dense_backward_bias_into(g: &Matrix, y: &Matrix, act: EpiAct, out: &mut Matrix) {
    assert_eq!(
        g.shape(),
        y.shape(),
        "dense_backward_bias_into: g/y shape mismatch"
    );
    assert_eq!(
        out.shape(),
        (1, g.cols),
        "dense_backward_bias_into: bad output shape"
    );
    out.fill(0.0);
    let sums = out.dm();
    for (g_row, y_row) in g.iter_rows().zip(y.iter_rows()) {
        for ((s, &gv), &yv) in sums.iter_mut().zip(g_row).zip(y_row) {
            *s += act.grad_from_output(gv, yv);
        }
    }
}

/// Fused data gradient: `out = dZ · Wᵀ` with `dZ` read through the
/// activation-derivative prologue — the counterpart of
/// `g.matmul_nt_into(w, out)` on a materialized `dZ`, dispatching through
/// the same scalar/small-tile/blocked ladder with identical chains.
///
/// # Panics
/// Panics unless `g` and `y` share a shape, `w.cols() == g.cols()`, and
/// `out` is `g.rows() x w.rows()`.
pub fn dense_backward_data_into(g: &Matrix, y: &Matrix, act: EpiAct, w: &Matrix, out: &mut Matrix) {
    assert_eq!(
        g.shape(),
        y.shape(),
        "dense_backward_data_into: g/y shape mismatch"
    );
    assert_eq!(
        w.cols, g.cols,
        "dense_backward_data_into: column mismatch ({}x{}) * ({}x{})^T",
        g.rows, g.cols, w.rows, w.cols
    );
    assert_eq!(
        out.shape(),
        (g.rows, w.rows),
        "dense_backward_data_into: bad output shape"
    );
    out.fill(0.0);
    let n = w.rows;
    if n == 0 || g.rows == 0 {
        return;
    }
    let dz = DactSrc {
        g: g.d(),
        y: y.d(),
        act,
    };
    let (rows, k) = (g.rows, g.cols);
    let out = out.dm();
    match gemm_path(rows, n, k, SMALL_MAX_FLOPS_NT) {
        GemmPath::Scalar => {
            smallgemm::gemm_nt_scalar(dz, 0, k, k, w.d(), w.cols, n, out);
        }
        GemmPath::Small => {
            smallgemm::gemm_nt_small(dz, 0, k, k, w.d(), w.cols, n, out);
        }
        GemmPath::Blocked => {
            let pack_b = |k0, kb, j0, jb, bp: &mut _| pack_bt_panel(w, k0, kb, j0, jb, bp);
            gemm_blocked(dz, 0, k, 1, k, n, pack_b, None, out);
        }
    }
}

/// Fused weight gradient: `out = Xᵀ · dZ` with `dZ` read through the
/// activation-derivative prologue — the counterpart of
/// `x.matmul_tn_into(g, out)` on a materialized `dZ`, dispatching through
/// the same scalar/small-tile/blocked ladder with identical chains.
///
/// # Panics
/// Panics unless `g` and `y` share a shape, `x.rows() == g.rows()`, and
/// `out` is `x.cols() x g.cols()`.
pub fn dense_backward_weights_into(
    x: &Matrix,
    g: &Matrix,
    y: &Matrix,
    act: EpiAct,
    out: &mut Matrix,
) {
    assert_eq!(
        g.shape(),
        y.shape(),
        "dense_backward_weights_into: g/y shape mismatch"
    );
    assert_eq!(
        x.rows, g.rows,
        "dense_backward_weights_into: row mismatch ({}x{})^T * ({}x{})",
        x.rows, x.cols, g.rows, g.cols
    );
    assert_eq!(
        out.shape(),
        (x.cols, g.cols),
        "dense_backward_weights_into: bad output shape"
    );
    out.fill(0.0);
    let n = g.cols;
    if n == 0 || x.cols == 0 {
        return;
    }
    let dz = DactSrc {
        g: g.d(),
        y: y.d(),
        act,
    };
    let rows = x.cols;
    let out = out.dm();
    match gemm_path(rows, n, x.rows, SMALL_MAX_FLOPS_TN) {
        GemmPath::Scalar => {
            smallgemm::gemm_tn_scalar(x.d(), x.cols, x.rows, 0, dz, n, out);
        }
        GemmPath::Small => {
            smallgemm::gemm_tn_small(x.d(), x.cols, x.rows, 0, dz, n, out);
        }
        GemmPath::Blocked => {
            // B panels are re-packed once per `MC` row-block of the output,
            // so the activation-derivative prologue re-runs `rows / MC`
            // times. Measured against materializing `dZ` once into scratch,
            // the fused re-pack still wins on training shapes: `dZ` is the
            // layer-width-sized operand (a few hundred KB at most), stays
            // cache-resident across re-packs, and skipping the materialize
            // pass beats re-reading it.
            let g_cols = g.cols;
            let pack_b =
                |k0, kb, j0, jb, bp: &mut _| pack_b_panel_src(dz, g_cols, k0, kb, j0, jb, bp);
            gemm_blocked(x.d(), 0, 1, x.cols, x.rows, n, pack_b, None, out);
        }
    }
}

/// The pre-blocking scalar kernels, retained verbatim as the baseline the
/// blocked implementations are measured and tested against
/// (`bench_training`'s speedup rows, the odd-shape equivalence tests).
///
/// Values are identical to the blocked path up to the sign of exact zeros:
/// these kernels skip zero multiplicands, which can turn a `-0.0` sum into
/// `0.0`. `PartialEq` on `f64` treats the two as equal, so `assert_eq!`
/// comparisons against the blocked kernels hold.
pub mod reference {
    use super::Matrix;

    /// Pre-blocking `a * b` (naive i-k-j with zero-skip).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows, "reference::matmul: inner mismatch");
        let n = b.cols;
        let mut out = Matrix::zeros(a.rows, n);
        if n == 0 {
            return out;
        }
        let bd = b.d();
        for (r, out_row) in out.dm().chunks_mut(n).enumerate() {
            for (k, &av) in a.row(r).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &bd[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Pre-blocking `a^T * b` (r-outer accumulation with zero-skip).
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows, "reference::matmul_tn: row mismatch");
        let n = b.cols;
        let mut out = Matrix::zeros(a.cols, n);
        let od = out.dm();
        for r in 0..a.rows {
            let a_row = a.row(r);
            let b_row = b.row(r);
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut od[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Pre-blocking `a * b^T` (scalar dot products).
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.cols, "reference::matmul_nt: column mismatch");
        let n = b.rows;
        let mut out = Matrix::zeros(a.rows, n);
        if n == 0 {
            return out;
        }
        let od = out.dm();
        for (r, out_row) in od.chunks_mut(n).enumerate() {
            let a_row = a.row(r);
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b.row(j)) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.d()[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        let cols = self.cols;
        &mut self.dm()[r * cols + c]
    }
}

impl PartialEq for Matrix {
    /// Element-wise equality over the logical contents — a borrowed matrix
    /// equals the owned matrix holding the same values.
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.d() == other.d()
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|v| -v)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(Matrix::eye(3)[(1, 1)], 1.0);
        assert_eq!(Matrix::eye(3)[(0, 1)], 0.0);
        assert_eq!(Matrix::ones(1, 2).sum(), 2.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 - 5.0);
        let b = Matrix::from_fn(2, 4, |r, c| (r as f64 - c as f64) * 0.3);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for r in 0..3 {
            for c in 0..2 {
                assert!((fast[(r, c)] - slow[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
        assert_eq!(Matrix::eye(3).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_add_row() {
        let m = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = m.add_row_broadcast(&b);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_mul_col() {
        let m = Matrix::ones(3, 2);
        let w = Matrix::col_vector(&[0.0, 1.0, 2.0]);
        let out = m.mul_col_broadcast(&w);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[1.0, 1.0]);
        assert_eq!(out.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(m.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.row_sq_norms(), vec![5.0, 25.0]);
        assert_eq!(m.sq_norm(), 30.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s[(r, 0)] < s[(r, 1)] && s[(r, 1)] < s[(r, 2)]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]);
        let s = m.softmax_rows();
        let t = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]).softmax_rows();
        for c in 0..3 {
            assert!((s[(0, c)] - t[(0, c)]).abs() < 1e-12);
        }
        assert!(s.all_finite());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.1, -2.0, 3.0, 0.5]);
        let ls = m.log_softmax_rows();
        let s = m.softmax_rows();
        for c in 0..4 {
            assert!((ls[(0, c)].exp() - s[(0, c)]).abs() < 1e-12);
        }
    }

    #[test]
    fn logsumexp_rows_matches_naive() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, -3.0, 2.0]);
        let lse = m.logsumexp_rows();
        assert!((lse[(0, 0)] - (1.0f64.exp() + 1.0).ln()).abs() < 1e-12);
        assert!((lse[(1, 0)] - ((-3.0f64).exp() + 2.0f64.exp()).ln()).abs() < 1e-12);
    }

    #[test]
    fn stack_and_take_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let h = b.hstack(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[3.0, 4.0, 3.0, 4.0]);
        let t = v.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[5.0, 6.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_and_distances() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 5.0, 2.0, -1.0, -2.0, -3.0]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
        assert_eq!(m.max_row(0), 5.0);
        assert_eq!(m.row_sq_dist(0, &[0.0, 5.0, 2.0]), 0.0);
        assert_eq!(m.row_sq_dist(0, &[1.0, 5.0, 2.0]), 1.0);
    }

    #[test]
    fn operators() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0]);
    }

    /// A deterministic dense test matrix with non-trivial values (including
    /// exact zeros so the reference kernels' zero-skip is exercised).
    fn probe(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let i = r * cols + c + seed;
            if i % 17 == 0 {
                0.0
            } else {
                ((i % 23) as f64 - 11.0) * 0.37 + (i % 5) as f64 * 0.011
            }
        })
    }

    /// Shapes chosen to hit every edge of the blocking scheme: degenerate
    /// single elements, below/above the naive-path threshold, non-multiples
    /// of MR/NR/KC/MC, and dimensions straddling exactly one block boundary.
    const ODD_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (17, 9, 23),
        (4, 300, 4),
        (65, 33, 129),
        (100, 1, 100),
        (1, 700, 1),
        (130, 257, 9),
        (96, 256, 64),
    ];

    #[test]
    fn blocked_matmul_matches_reference_on_odd_shapes() {
        for &(m, k, n) in ODD_SHAPES {
            let a = probe(m, k, 1);
            let b = probe(k, n, 2);
            assert_eq!(a.matmul(&b), reference::matmul(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_tn_matches_reference_on_odd_shapes() {
        for &(m, k, n) in ODD_SHAPES {
            // Contraction runs over the shared row count k.
            let a = probe(k, m, 3);
            let b = probe(k, n, 4);
            assert_eq!(
                a.matmul_tn(&b),
                reference::matmul_tn(&a, &b),
                "({k}x{m})^T * ({k}x{n})"
            );
        }
    }

    #[test]
    fn blocked_matmul_nt_matches_reference_on_odd_shapes() {
        for &(m, k, n) in ODD_SHAPES {
            let a = probe(m, k, 5);
            let b = probe(n, k, 6);
            assert_eq!(
                a.matmul_nt(&b),
                reference::matmul_nt(&a, &b),
                "({m}x{k}) * ({n}x{k})^T"
            );
        }
    }

    const ALL_EPI_ACTS: &[EpiAct] = &[
        EpiAct::None,
        EpiAct::Relu,
        EpiAct::LeakyRelu,
        EpiAct::Sigmoid,
        EpiAct::Tanh,
    ];

    #[test]
    fn fused_bias_act_matches_separate_passes_on_odd_shapes() {
        for &(m, k, n) in ODD_SHAPES {
            let x = probe(m, k, 12);
            let w = probe(k, n, 13);
            let bias = probe(1, n, 14);
            for &act in ALL_EPI_ACTS {
                let mut out = Matrix::full(m, n, f64::NAN);
                matmul_bias_act_rows_into(
                    x.as_slice(),
                    k,
                    &w,
                    bias.as_slice(),
                    act,
                    out.as_mut_slice(),
                );
                let want = x.matmul(&w).add_row_broadcast(&bias).map(|v| act.apply(v));
                assert_eq!(out, want, "{m}x{k}x{n} {act:?}");
            }
        }
    }

    #[test]
    fn fused_bias_act_is_row_block_invariant() {
        // Large enough that the whole problem takes the blocked path while
        // small row blocks fall below the naive threshold — partitioning must
        // not change a single bit even when the kernel changes underneath.
        let (m, k, n) = (130, 257, 9);
        let x = probe(m, k, 15);
        let w = probe(k, n, 16);
        let bias = probe(1, n, 17);
        let mut full = Matrix::full(m, n, f64::NAN);
        matmul_bias_act_rows_into(
            x.as_slice(),
            k,
            &w,
            bias.as_slice(),
            EpiAct::Sigmoid,
            full.as_mut_slice(),
        );
        for block in [1usize, 3, 64, 128] {
            let mut out = Matrix::full(m, n, f64::NAN);
            let mut r0 = 0;
            while r0 < m {
                let rb = (m - r0).min(block);
                matmul_bias_act_rows_into(
                    &x.as_slice()[r0 * k..(r0 + rb) * k],
                    k,
                    &w,
                    bias.as_slice(),
                    EpiAct::Sigmoid,
                    &mut out.as_mut_slice()[r0 * n..(r0 + rb) * n],
                );
                r0 += rb;
            }
            assert_eq!(out, full, "block={block}");
        }
    }

    /// Shapes that all fall below [`BLOCK_MIN_FLOPS`], chosen to hit every
    /// edge of the small-GEMM dispatch: empty outputs, `k = 0` (pure zero
    /// store), single elements, sub-tile rows/cols, exact `SMR x SNR`
    /// multiples, and one-off edges on each side of a tile. Areas straddle
    /// the scalar/tiled cutoff so both small arms are exercised.
    const SMALL_SHAPES: &[(usize, usize, usize)] = &[
        (0, 3, 4),
        (2, 0, 9),
        (1, 1, 1),
        (3, 4, 5),
        (4, 6, 8),
        (5, 7, 9),
        (8, 16, 24),
        (31, 11, 13),
        (12, 2, 30),
        (1, 50, 40),
        (40, 50, 1),
    ];

    #[test]
    fn small_gemm_nn_matches_reference_on_degenerate_shapes() {
        for &(m, k, n) in SMALL_SHAPES {
            let a = probe(m, k, 31);
            let b = probe(k, n, 32);
            assert_eq!(a.matmul(&b), reference::matmul(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn small_gemm_tn_matches_reference_on_degenerate_shapes() {
        for &(m, k, n) in SMALL_SHAPES {
            let a = probe(k, m, 33);
            let b = probe(k, n, 34);
            assert_eq!(
                a.matmul_tn(&b),
                reference::matmul_tn(&a, &b),
                "({k}x{m})^T * ({k}x{n})"
            );
        }
    }

    #[test]
    fn small_gemm_nt_matches_reference_on_degenerate_shapes() {
        for &(m, k, n) in SMALL_SHAPES {
            let a = probe(m, k, 35);
            let b = probe(n, k, 36);
            assert_eq!(
                a.matmul_nt(&b),
                reference::matmul_nt(&a, &b),
                "({m}x{k}) * ({n}x{k})^T"
            );
        }
    }

    #[test]
    fn dense_backward_kernels_match_materialized_dz() {
        // Every fused backward kernel must equal "materialize dZ = act'(y)
        // applied to g, then run the plain GEMM / column sum" bit-for-bit,
        // across shapes hitting the scalar, tiled-small, and blocked arms.
        for &(m, k, n) in ODD_SHAPES.iter().chain(SMALL_SHAPES) {
            let x = probe(m, k, 41);
            let w = probe(k, n, 42);
            let bias = probe(1, n, 43);
            let g = probe(m, n, 44);
            for &act in ALL_EPI_ACTS {
                let mut y = Matrix::full(m, n, f64::NAN);
                matmul_bias_act_rows_into(
                    x.as_slice(),
                    k,
                    &w,
                    bias.as_slice(),
                    act,
                    y.as_mut_slice(),
                );
                let dz = g.zip_map(&y, |gv, yv| act.grad_from_output(gv, yv));

                let mut db = Matrix::full(1, n, f64::NAN);
                dense_backward_bias_into(&g, &y, act, &mut db);
                let mut want_db = Matrix::zeros(1, n);
                dz.col_sums_into(&mut want_db);
                assert_eq!(db, want_db, "bias {m}x{k}x{n} {act:?}");

                let mut dx = Matrix::full(m, k, f64::NAN);
                dense_backward_data_into(&g, &y, act, &w, &mut dx);
                assert_eq!(dx, dz.matmul_nt(&w), "data {m}x{k}x{n} {act:?}");

                let mut dw = Matrix::full(k, n, f64::NAN);
                dense_backward_weights_into(&x, &g, &y, act, &mut dw);
                assert_eq!(dw, x.matmul_tn(&dz), "weights {m}x{k}x{n} {act:?}");
            }
        }
    }

    #[test]
    fn dense_backward_kernels_match_on_blocked_scale_shapes() {
        // Above BLOCK_MIN_FLOPS the fused kernels route through the packed
        // blocked driver (dact on the pack read path) — still bit-equal to
        // the materialized two-pass form.
        let (m, k, n) = (96, 80, 72);
        assert!(m * k * n >= BLOCK_MIN_FLOPS);
        let x = probe(m, k, 51);
        let w = probe(k, n, 52);
        let bias = probe(1, n, 53);
        let g = probe(m, n, 54);
        for &act in ALL_EPI_ACTS {
            let mut y = Matrix::full(m, n, f64::NAN);
            matmul_bias_act_rows_into(x.as_slice(), k, &w, bias.as_slice(), act, y.as_mut_slice());
            let dz = g.zip_map(&y, |gv, yv| act.grad_from_output(gv, yv));

            let mut dx = Matrix::full(m, k, f64::NAN);
            dense_backward_data_into(&g, &y, act, &w, &mut dx);
            assert_eq!(dx, dz.matmul_nt(&w), "data {act:?}");

            let mut dw = Matrix::full(k, n, f64::NAN);
            dense_backward_weights_into(&x, &g, &y, act, &mut dw);
            assert_eq!(dw, x.matmul_tn(&dz), "weights {act:?}");
        }
    }

    #[test]
    fn matmul_into_family_matches_allocating_kernels() {
        let a = probe(33, 17, 7);
        let b = probe(17, 29, 8);
        // Dirty output buffers must be fully overwritten.
        let mut out = Matrix::full(33, 29, f64::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let c = probe(33, 29, 9);
        let mut out_tn = Matrix::full(17, 29, f64::NAN);
        let at = probe(33, 17, 10);
        at.matmul_tn_into(&c, &mut out_tn);
        assert_eq!(out_tn, at.matmul_tn(&c));

        let d = probe(21, 17, 11);
        let mut out_nt = Matrix::full(33, 21, f64::NAN);
        a.matmul_nt_into(&d, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&d));
    }

    #[test]
    fn into_helpers_match_allocating_counterparts() {
        let a = probe(7, 5, 1);
        let b = probe(7, 5, 2);
        let mut out = Matrix::full(7, 5, f64::NAN);

        a.map_into(|v| v * 2.0 - 1.0, &mut out);
        assert_eq!(out, a.map(|v| v * 2.0 - 1.0));

        a.zip_map_into(&b, |x, y| x * y + 1.0, &mut out);
        assert_eq!(out, a.zip_map(&b, |x, y| x * y + 1.0));

        let mut c = a.clone();
        c.zip_map_inplace(&b, |x, y| x - 2.0 * y);
        assert_eq!(c, a.zip_map(&b, |x, y| x - 2.0 * y));

        let row = probe(1, 5, 3);
        a.add_row_broadcast_into(&row, &mut out);
        assert_eq!(out, a.add_row_broadcast(&row));

        let col = probe(7, 1, 4);
        a.mul_col_broadcast_into(&col, &mut out);
        assert_eq!(out, a.mul_col_broadcast(&col));
        let mut d = a.clone();
        d.mul_col_broadcast_inplace(&col);
        assert_eq!(d, a.mul_col_broadcast(&col));

        let mut tr = Matrix::full(5, 7, f64::NAN);
        a.transpose_into(&mut tr);
        assert_eq!(tr, a.transpose());

        let mut rs = Matrix::full(7, 1, f64::NAN);
        a.row_sums_into(&mut rs);
        assert_eq!(rs, a.row_sums());

        let mut cs = Matrix::full(1, 5, f64::NAN);
        a.col_sums_into(&mut cs);
        assert_eq!(cs, a.col_sums());

        let mut sm = a.clone();
        sm.softmax_rows_inplace();
        assert_eq!(sm, a.softmax_rows());
        let mut lsm = a.clone();
        lsm.log_softmax_rows_inplace();
        assert_eq!(lsm, a.log_softmax_rows());

        let mut taken = Matrix::full(3, 5, f64::NAN);
        a.take_rows_into(&[6, 0, 3], &mut taken);
        assert_eq!(taken, a.take_rows(&[6, 0, 3]));

        let mut copied = Matrix::full(7, 5, f64::NAN);
        copied.copy_from(&a);
        assert_eq!(copied, a);
        copied.fill(2.5);
        assert_eq!(copied, Matrix::full(7, 5, 2.5));
    }

    #[test]
    fn shared_storage_reads_like_owned() {
        let values: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let owned = Matrix::from_vec(3, 4, values.clone());
        let buf = SharedBuffer::from_vec(values);
        let borrowed = Matrix::from_shared(3, 4, buf.clone(), 0);
        assert!(borrowed.is_borrowed());
        assert_eq!(borrowed.owned_bytes(), 0);
        assert_eq!(borrowed, owned);
        assert_eq!(borrowed[(2, 3)], 11.0);
        assert_eq!(borrowed.row(1), owned.row(1));
        assert_eq!(borrowed.as_slice(), owned.as_slice());
        assert_eq!(borrowed.transpose(), owned.transpose());
        let rhs = Matrix::from_vec(4, 2, (0..8).map(|i| 0.5 * i as f64).collect());
        assert_eq!(borrowed.matmul(&rhs), owned.matmul(&rhs));
    }

    #[test]
    fn shared_storage_windows_are_disjoint_views() {
        let buf = SharedBuffer::from_vec((0..10).map(|i| i as f64).collect());
        let a = Matrix::from_shared(2, 2, buf.clone(), 0);
        let b = Matrix::from_shared(2, 3, buf.clone(), 4);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.as_slice(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        // Clones of borrowed matrices share the buffer, not copy it.
        let c = b.clone();
        assert!(c.is_borrowed());
        assert!(buf.handle_count() >= 4);
    }

    #[test]
    fn mutation_promotes_to_owned_without_touching_the_buffer() {
        let buf = SharedBuffer::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mut m = Matrix::from_shared(2, 2, buf.clone(), 0);
        m[(0, 0)] = 9.0;
        assert!(!m.is_borrowed());
        assert!(m.owned_bytes() >= 4 * std::mem::size_of::<f64>());
        assert_eq!(m.as_slice(), &[9.0, 2.0, 3.0, 4.0]);
        // The shared buffer is untouched; other views still see 1.0.
        assert_eq!(buf.as_f64s(), &[1.0, 2.0, 3.0, 4.0]);
        let sibling = Matrix::from_shared(2, 2, buf, 0);
        assert_eq!(sibling[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "from_shared")]
    fn from_shared_rejects_out_of_bounds_window() {
        let buf = SharedBuffer::from_vec(vec![0.0; 5]);
        let _ = Matrix::from_shared(2, 3, buf, 0);
    }

    #[test]
    #[should_panic(expected = "from_shared")]
    fn from_shared_rejects_overflowing_window() {
        let buf = SharedBuffer::from_vec(vec![0.0; 5]);
        let _ = Matrix::from_shared(1, 2, buf, usize::MAX - 1);
    }
}
