//! Row-major dense `f64` matrix with the kernels reverse-mode autodiff needs.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64` values.
///
/// Row-major storage keeps a row (one instance of a tabular dataset)
/// contiguous, which is the access pattern of every kernel in this
/// reproduction: batched forward/backward passes, per-row softmax,
/// per-row reconstruction errors, and distance computations.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// A `rows x cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {} values cannot fill a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices; all rows must share one length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: row {i} has length {} != {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A new matrix containing the listed rows (in order, duplicates allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates `self` and `other` side by side (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix::from_vec(self.rows, cols, data)
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously, letting LLVM autovectorize (perf-book guidance).
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{}) * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_rows_into(self, other, 0, &mut out.data);
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// This is the shape of the weight gradient in a linear layer
    /// (`dW = X^T * dY`), so it is a hot kernel during training.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row mismatch ({}x{})^T * ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// This is the shape of the input gradient in a linear layer
    /// (`dX = dY * W^T`) and of pairwise-dot-product distance kernels.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: column mismatch ({}x{}) * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        matmul_nt_rows_into(self, other, 0, &mut out.data);
        out
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape matrices elementwise with `f`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f64) -> Matrix {
        self.map(|v| v + s)
    }

    /// In-place `self += other * s` (axpy). Shapes must match.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f64) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_inplace: shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    /// Panics unless `row` is `1 x self.cols()`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: expected a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies row `r` of `self` by `col[r]` (an `rows x 1` column vector).
    ///
    /// This is the kernel behind per-instance loss weights `w(x)` (Eq. 6 of
    /// the paper).
    ///
    /// # Panics
    /// Panics unless `col` is `self.rows() x 1`.
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_broadcast: expected a column vector");
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let w = col.data[r];
            for o in out.row_mut(r) {
                *o *= w;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Per-row sums as an `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let sums: Vec<f64> = self.iter_rows().map(|r| r.iter().sum()).collect();
        Matrix::col_vector(&sums)
    }

    /// Per-column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut sums = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        Matrix::row_vector(&sums)
    }

    /// Per-row squared Euclidean norms, as a plain vector.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum value in row `r` (first one on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Maximum value in row `r`.
    pub fn max_row(&self, r: usize) -> f64 {
        self.row(r)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Numerically stable row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        out
    }

    /// Row-wise `log(sum(exp(.)))`, numerically stable, as an `rows x 1`
    /// column vector.
    pub fn logsumexp_rows(&self) -> Matrix {
        let vals: Vec<f64> = self
            .iter_rows()
            .map(|row| {
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
            })
            .collect();
        Matrix::col_vector(&vals)
    }

    /// Squared Euclidean distance between row `r` of `self` and `point`.
    pub fn row_sq_dist(&self, r: usize, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.cols);
        self.row(r)
            .iter()
            .zip(point)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Computes out rows `[first_row, first_row + out.len() / b.cols())` of
/// `a * b` into `out` (a row-major slice of whole out rows).
///
/// Each out row accumulates over `k` in ascending order and depends only on
/// its own global row index, so any partition of the row range produces
/// bit-identical results — this is the kernel behind both the serial
/// [`Matrix::matmul`] and the runtime-parallel [`Matrix::matmul_rt`].
pub(crate) fn matmul_rows_into(a: &Matrix, b: &Matrix, first_row: usize, out: &mut [f64]) {
    let n = b.cols;
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = a.row(first_row + r);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b.data[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Computes out rows `[first_row, ...)` of `a * b^T` into `out`.
///
/// Pure dot products — each element depends only on its own indices, so any
/// row-range partition is bit-identical.
pub(crate) fn matmul_nt_rows_into(a: &Matrix, b: &Matrix, first_row: usize, out: &mut [f64]) {
    let n = b.rows;
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = a.row(first_row + r);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Computes out rows `[first_k, ...)` of `a^T * b` into `out`.
///
/// Accumulates over data rows `r` in ascending order — the same per-element
/// operand sequence as the serial [`Matrix::matmul_tn`] (which iterates `r`
/// in its outer loop), so the two are bit-identical even though the loop
/// nests differ. The `a[r][k] == 0` skip is per-element and matches too.
pub(crate) fn matmul_tn_rows_into(a: &Matrix, b: &Matrix, first_k: usize, out: &mut [f64]) {
    let n = b.cols;
    for (kk, out_row) in out.chunks_mut(n).enumerate() {
        let k = first_k + kk;
        for r in 0..a.rows {
            let av = a.data[r * a.cols + k];
            if av == 0.0 {
                continue;
            }
            let b_row = &b.data[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|v| -v)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(Matrix::eye(3)[(1, 1)], 1.0);
        assert_eq!(Matrix::eye(3)[(0, 1)], 0.0);
        assert_eq!(Matrix::ones(1, 2).sum(), 2.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 1.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 - 5.0);
        let b = Matrix::from_fn(2, 4, |r, c| (r as f64 - c as f64) * 0.3);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for r in 0..3 {
            for c in 0..2 {
                assert!((fast[(r, c)] - slow[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
        assert_eq!(Matrix::eye(3).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_add_row() {
        let m = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = m.add_row_broadcast(&b);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_mul_col() {
        let m = Matrix::ones(3, 2);
        let w = Matrix::col_vector(&[0.0, 1.0, 2.0]);
        let out = m.mul_col_broadcast(&w);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[1.0, 1.0]);
        assert_eq!(out.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(m.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.row_sq_norms(), vec![5.0, 25.0]);
        assert_eq!(m.sq_norm(), 30.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s[(r, 0)] < s[(r, 1)] && s[(r, 1)] < s[(r, 2)]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]);
        let s = m.softmax_rows();
        let t = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]).softmax_rows();
        for c in 0..3 {
            assert!((s[(0, c)] - t[(0, c)]).abs() < 1e-12);
        }
        assert!(s.all_finite());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let m = Matrix::from_vec(1, 4, vec![0.1, -2.0, 3.0, 0.5]);
        let ls = m.log_softmax_rows();
        let s = m.softmax_rows();
        for c in 0..4 {
            assert!((ls[(0, c)].exp() - s[(0, c)]).abs() < 1e-12);
        }
    }

    #[test]
    fn logsumexp_rows_matches_naive() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, -3.0, 2.0]);
        let lse = m.logsumexp_rows();
        assert!((lse[(0, 0)] - (1.0f64.exp() + 1.0).ln()).abs() < 1e-12);
        assert!((lse[(1, 0)] - ((-3.0f64).exp() + 2.0f64.exp()).ln()).abs() < 1e-12);
    }

    #[test]
    fn stack_and_take_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let h = b.hstack(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[3.0, 4.0, 3.0, 4.0]);
        let t = v.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[5.0, 6.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_and_distances() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 5.0, 2.0, -1.0, -2.0, -3.0]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
        assert_eq!(m.max_row(0), 5.0);
        assert_eq!(m.row_sq_dist(0, &[0.0, 5.0, 2.0]), 0.0);
        assert_eq!(m.row_sq_dist(0, &[1.0, 5.0, 2.0]), 1.0);
    }

    #[test]
    fn operators() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0]);
    }
}
