//! Runtime-parallel matrix kernels.
//!
//! Each `_rt` method is the exact computation of its serial namesake,
//! partitioned over output rows (or elements) through a
//! [`targad_runtime::Runtime`]. Because workers own disjoint output ranges
//! and every element accumulates its floating-point operands in the same
//! order as the serial kernel, results are **bit-identical** to the serial
//! path at every worker count — `m.matmul(&n) == m.matmul_rt(&n, &rt)`
//! exactly, not approximately.
//!
//! Small operands stay on the serial path: below [`PAR_MIN_FLOPS`] (matmul
//! family) or [`PAR_MIN_ELEMS`] (elementwise) the cost of waking pool
//! workers and the cache interference of splitting a product that already
//! fits in cache exceed the win, so the methods fall through to the serial
//! kernels. Above the threshold, worker count is additionally capped so
//! every worker owns at least [`PAR_ROW_GRAIN`] output rows. Both cutoffs
//! are size-based only — never worker-count-based — so they cannot break
//! determinism across runtimes.

use crate::matrix::{matmul_nt_rows_into, matmul_rows_into, matmul_tn_rows_into, Matrix};
use targad_runtime::Runtime;

/// Flop count (`rows * inner * cols`) below which matmul variants run
/// serially. Tuned against the blocked serial kernel: a 192³ product
/// (~7.1 Mflops, ≈1 ms) still loses to pool wake-up plus shared-cache
/// interference on 2 workers, while 256³ and up win, so the cutoff sits
/// between them at 2²³ = 8.4 Mflops.
pub const PAR_MIN_FLOPS: usize = 1 << 23;

/// Minimum output rows per worker for the matmul family. Splitting finer
/// than this hands workers slivers that are dominated by dispatch and
/// cache-line contention at the range boundaries; the runtime is capped to
/// `ceil(rows / PAR_ROW_GRAIN)` workers instead.
pub const PAR_ROW_GRAIN: usize = 64;

/// Element count below which elementwise kernels run serially.
pub const PAR_MIN_ELEMS: usize = 1 << 14;

impl Matrix {
    /// [`Matrix::matmul`] executed on `rt`, bit-identical to the serial
    /// product at any worker count.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_rt(&self, other: &Matrix, rt: &Runtime) -> Matrix {
        let flops = self.rows() * self.cols() * other.cols();
        if rt.is_serial() || flops < PAR_MIN_FLOPS {
            return self.matmul(other);
        }
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul_rt: inner dimension mismatch ({}x{}) * ({}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Matrix::zeros(self.rows(), other.cols());
        let n = other.cols();
        let rt = rt.capped(self.rows().div_ceil(PAR_ROW_GRAIN));
        rt.par_rows(out.as_mut_slice(), n, |first_row, chunk| {
            matmul_rows_into(self, other, first_row, chunk);
        });
        out
    }

    /// [`Matrix::matmul_tn`] (`self^T * other`) executed on `rt`,
    /// bit-identical to the serial kernel at any worker count.
    ///
    /// # Panics
    /// Panics on a row-count mismatch.
    pub fn matmul_tn_rt(&self, other: &Matrix, rt: &Runtime) -> Matrix {
        let flops = self.cols() * self.rows() * other.cols();
        if rt.is_serial() || flops < PAR_MIN_FLOPS {
            return self.matmul_tn(other);
        }
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn_rt: row mismatch ({}x{})^T * ({}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Matrix::zeros(self.cols(), other.cols());
        let n = other.cols();
        let rt = rt.capped(self.cols().div_ceil(PAR_ROW_GRAIN));
        rt.par_rows(out.as_mut_slice(), n, |first_k, chunk| {
            matmul_tn_rows_into(self, other, first_k, chunk);
        });
        out
    }

    /// [`Matrix::matmul_nt`] (`self * other^T`) executed on `rt`,
    /// bit-identical to the serial kernel at any worker count.
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn matmul_nt_rt(&self, other: &Matrix, rt: &Runtime) -> Matrix {
        let flops = self.rows() * self.cols() * other.rows();
        if rt.is_serial() || flops < PAR_MIN_FLOPS {
            return self.matmul_nt(other);
        }
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt_rt: column mismatch ({}x{}) * ({}x{})^T",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let mut out = Matrix::zeros(self.rows(), other.rows());
        let n = other.rows();
        let rt = rt.capped(self.rows().div_ceil(PAR_ROW_GRAIN));
        rt.par_rows(out.as_mut_slice(), n, |first_row, chunk| {
            matmul_nt_rows_into(self, other, first_row, chunk);
        });
        out
    }

    /// [`Matrix::map`] executed on `rt`: applies `f` to every element.
    ///
    /// Elementwise maps have no cross-element data flow, so any partition
    /// is trivially bit-identical.
    pub fn map_rt(&self, f: impl Fn(f64) -> f64 + Sync, rt: &Runtime) -> Matrix {
        let mut out = self.clone();
        out.map_inplace_rt(f, rt);
        out
    }

    /// [`Matrix::map_inplace`] executed on `rt`.
    pub fn map_inplace_rt(&mut self, f: impl Fn(f64) -> f64 + Sync, rt: &Runtime) {
        if rt.is_serial() || self.as_slice().len() < PAR_MIN_ELEMS {
            self.map_inplace(f);
            return;
        }
        rt.par_chunks(self.as_mut_slice(), |_, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn pair(rows: usize, inner: usize, cols: usize) -> (Matrix, Matrix) {
        let mut r = rng::seeded(99);
        (
            rng::normal_matrix(&mut r, rows, inner, 0.0, 1.0),
            rng::normal_matrix(&mut r, inner, cols, 0.0, 1.0),
        )
    }

    #[test]
    fn matmul_rt_is_bit_identical_across_worker_counts() {
        // 231*163*231 ≈ 8.7 Mflops clears PAR_MIN_FLOPS (2^23) so the
        // parallel path runs; odd sizes exercise ragged row splits.
        let (a, b) = pair(231, 163, 231);
        let serial = a.matmul(&b);
        for workers in [1, 2, 7, 32] {
            let rt = Runtime::new(workers);
            assert_eq!(a.matmul_rt(&b, &rt), serial, "workers = {workers}");
        }
    }

    #[test]
    fn matmul_tn_rt_is_bit_identical_across_worker_counts() {
        // a^T * c where both have 403 rows: 151*403*151 ≈ 9.2 Mflops.
        let mut r = rng::seeded(5);
        let a = rng::normal_matrix(&mut r, 403, 151, 0.0, 1.0);
        let c = rng::normal_matrix(&mut r, 403, 151, 0.0, 1.0);
        let serial = a.matmul_tn(&c);
        for workers in [1, 2, 7, 32] {
            let rt = Runtime::new(workers);
            assert_eq!(a.matmul_tn_rt(&c, &rt), serial, "workers = {workers}");
        }
    }

    #[test]
    fn matmul_nt_rt_is_bit_identical_across_worker_counts() {
        // 233*163*229 ≈ 8.7 Mflops clears PAR_MIN_FLOPS.
        let mut r = rng::seeded(6);
        let a = rng::normal_matrix(&mut r, 233, 163, 0.0, 1.0);
        let b = rng::normal_matrix(&mut r, 229, 163, 0.0, 1.0);
        let serial = a.matmul_nt(&b);
        for workers in [1, 2, 7, 32] {
            let rt = Runtime::new(workers);
            assert_eq!(a.matmul_nt_rt(&b, &rt), serial, "workers = {workers}");
        }
    }

    #[test]
    fn small_products_take_the_serial_path_and_still_match() {
        let (a, b) = pair(3, 4, 5);
        let rt = Runtime::new(8);
        assert_eq!(a.matmul_rt(&b, &rt), a.matmul(&b));
        // Mid-size products below the tuned threshold (192³ ≈ 7.1 Mflops)
        // also stay serial — they used to regress on 2 workers.
        let (c, d) = pair(192, 192, 192);
        assert!(c.rows() * c.cols() * d.cols() < PAR_MIN_FLOPS);
        assert_eq!(c.matmul_rt(&d, &rt), c.matmul(&d));
    }

    #[test]
    fn map_rt_matches_serial_map() {
        let mut r = rng::seeded(7);
        // 200*100 = 20_000 elements clears PAR_MIN_ELEMS.
        let m = rng::normal_matrix(&mut r, 200, 100, 0.0, 1.0);
        let serial = m.map(|v| v.tanh());
        for workers in [1, 2, 7] {
            let rt = Runtime::new(workers);
            assert_eq!(m.map_rt(|v| v.tanh(), &rt), serial, "workers = {workers}");
        }
    }
}
