//! Seeded random initialization helpers.
//!
//! Every stochastic component in the reproduction (weight init, k-means++
//! seeding, data generation, mini-batch shuffling) draws from a seeded
//! [`rand::rngs::StdRng`] so that all experiments are bit-reproducible.
//! Gaussian sampling uses the Box–Muller transform to avoid depending on
//! `rand_distr`.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0): u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A draw from `N(mean, std^2)`.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// A `rows x cols` matrix with i.i.d. `N(mean, std^2)` entries.
pub fn normal_matrix(rng: &mut impl Rng, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
    let data = (0..rows * cols).map(|_| normal(rng, mean, std)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// A `rows x cols` matrix with i.i.d. `U[lo, hi)` entries.
pub fn uniform_matrix(rng: &mut impl Rng, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight
/// matrix — the initialization used for all MLPs and autoencoders in the
/// reproduction.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform_matrix(rng, fan_in, fan_out, -bound, bound)
}

/// Kaiming/He normal initialization (for ReLU nets).
pub fn kaiming_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    normal_matrix(rng, fan_in, fan_out, 0.0, std)
}

/// Fisher–Yates shuffle of a slice.
pub fn shuffle<T>(rng: &mut impl Rng, values: &mut [T]) {
    let n = values.len();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        values.swap(i, j);
    }
}

/// A shuffled `0..n` index permutation.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut idx);
    idx
}

/// Samples `count` distinct indices from `0..n` (reservoir style).
///
/// # Panics
/// Panics if `count > n`.
pub fn sample_indices(rng: &mut impl Rng, n: usize, count: usize) -> Vec<usize> {
    assert!(count <= n, "sample_indices: cannot draw {count} from {n}");
    // For small ratios do rejection-free reservoir sampling; otherwise take a
    // prefix of a permutation.
    if count * 4 <= n {
        let mut chosen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let i = rng.random_range(0..n);
            if chosen.insert(i) {
                out.push(i);
            }
        }
        out
    } else {
        let mut idx = permutation(rng, n);
        idx.truncate(count);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded(7);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = seeded(9);
        let m = uniform_matrix(&mut rng, 10, 10, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_bound() {
        let mut rng = seeded(1);
        let m = xavier_uniform(&mut rng, 10, 20);
        let bound = (6.0f64 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= bound));
        assert_eq!(m.shape(), (10, 20));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(3);
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded(5);
        for &(n, c) in &[(100usize, 5usize), (10, 9), (10, 10), (1000, 400)] {
            let s = sample_indices(&mut rng, n, c);
            assert_eq!(s.len(), c);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), c, "duplicates for n={n}, c={c}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded(11);
        let mut v = vec![1, 1, 2, 3, 5, 8];
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 3, 5, 8]);
    }
}
