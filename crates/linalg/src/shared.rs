//! Reference-counted `f64` buffers that matrices can borrow windows of.
//!
//! The zero-copy model-store read path (`targad-store`) maps a snapshot
//! file and hands every weight matrix a *window* into the mapping instead
//! of copying the bytes out. [`SharedBuffer`] is the linalg-side half of
//! that contract: an opaque, cheaply cloneable handle to an immutable
//! `[f64]` region whose backing storage ([`F64Buffer`]) may be a plain
//! `Vec<f64>`, an `mmap`ed file, or anything else that can promise a
//! stable, aligned slice for its lifetime.
//!
//! [`Matrix::from_shared`](crate::Matrix::from_shared) builds a borrowed
//! matrix over such a window. Borrowed matrices are read-only in spirit:
//! every mutating `Matrix` method promotes them to owned storage first
//! (copy-on-write, counted by the `matrix.cow_promotions` metric), so no
//! existing call site can observe the difference — but the scoring hot
//! path, which only ever *reads* weights, runs directly out of the file.

use std::sync::Arc;

/// Backing storage a [`SharedBuffer`] hands out windows of.
///
/// Implementations must return the *same* slice (same address, same
/// length) for as long as the value lives — matrices hold `(start, len)`
/// indices into it across calls.
pub trait F64Buffer: Send + Sync + 'static {
    /// The full buffer contents.
    fn as_f64s(&self) -> &[f64];
}

impl F64Buffer for Vec<f64> {
    fn as_f64s(&self) -> &[f64] {
        self
    }
}

/// A cheaply cloneable, immutable, reference-counted `f64` buffer.
///
/// Cloning copies an `Arc`, never the data; the backing [`F64Buffer`] is
/// dropped when the last clone (and therefore the last borrowed matrix
/// over it) goes away — which is exactly the lifetime tie that keeps an
/// `mmap`ed snapshot valid for as long as any loaded weight references it.
#[derive(Clone)]
pub struct SharedBuffer(Arc<dyn F64Buffer>);

impl SharedBuffer {
    /// Wraps `buf` in a shared handle.
    pub fn new(buf: impl F64Buffer) -> Self {
        Self(Arc::new(buf))
    }

    /// Convenience wrapper for an owned vector.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self::new(values)
    }

    /// The full buffer contents.
    #[inline]
    pub fn as_f64s(&self) -> &[f64] {
        self.0.as_f64s()
    }

    /// Number of `f64` elements in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_f64s().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_f64s().is_empty()
    }

    /// How many handles (buffers and borrowed matrices) share the backing
    /// storage.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::fmt::Debug for SharedBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBuffer")
            .field("len", &self.len())
            .field("handles", &self.handle_count())
            .finish()
    }
}
