//! Packing-free register-tiled small-GEMM kernels.
//!
//! Training shapes (128-row shards times small layer widths) sit below the
//! blocked kernel's [`crate::matrix::BLOCK_MIN_FLOPS`] threshold, where
//! panel packing costs more than it saves — but the scalar naive loops
//! leave all the instruction-level parallelism on the table: the `nn`/`tn`
//! loops re-load and re-store every out element once per `k` step, and the
//! `nt` loop is a single serial dependency chain per element. The kernels
//! here keep an `SMR x SNR` register tile of accumulators live across the
//! whole contraction instead, with **zero packing**: operands are read
//! in-place through strides.
//!
//! Determinism contract: every out element is one accumulation chain over
//! its contraction index in ascending order using plain `acc += a * b`
//! (never `mul_add` — the f64 naive and blocked kernels round each
//! multiply, so fusing would change results). Chains are therefore
//! bit-identical to both the naive loops and the blocked driver; the only
//! permitted deviation is the sign of an exact zero (the naive `nt` loop's
//! final `0.0 + acc` can normalize `-0.0` to `0.0`), which `f64::eq`
//! treats as equal — the same caveat the retained reference kernels carry.
//!
//! All kernels are generic over [`SrcRead`], the element-read abstraction
//! that lets the backward pass fuse the activation-derivative product
//! `dZ = dA ⊙ act'(Z)` into the GEMM read path ([`DactSrc`]): each `dZ`
//! element is computed on the fly from the stored gradient and layer
//! output, never materialized, and because the multiply happens *before*
//! accumulation the floating-point op sequence of the chain is unchanged.

use crate::matrix::EpiAct;

/// Register tile height (out rows held in registers per tile).
pub(crate) const SMR: usize = 4;
/// Register tile width (out columns held in registers per tile).
/// `SMR * SNR = 32` accumulators, matching the blocked micro-kernel.
pub(crate) const SNR: usize = 8;

/// Reads one operand element by flat index. Implemented by plain slices
/// and by [`DactSrc`], the fused activation-derivative read path.
pub(crate) trait SrcRead: Copy {
    fn at(&self, idx: usize) -> f64;

    /// Reads `dst.len()` contiguous elements starting at flat index
    /// `start` — the bulk form the packers use on stride-1 runs. Must
    /// produce exactly `at(start + i)` per element; implementations
    /// specialize it to branch-free vectorizable loops.
    #[inline(always)]
    fn read_run(&self, start: usize, dst: &mut [f64]) {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.at(start + i);
        }
    }
}

impl SrcRead for &[f64] {
    #[inline(always)]
    fn at(&self, idx: usize) -> f64 {
        self[idx]
    }

    #[inline(always)]
    fn read_run(&self, start: usize, dst: &mut [f64]) {
        dst.copy_from_slice(&self[start..start + dst.len()]);
    }
}

/// The fused backward read path: element `i` is
/// `act.grad_from_output(g[i], y[i])` — the activation-derivative product
/// `dZ = dA ⊙ act'(Z)` computed per read, with the derivative taken from
/// the layer *output* `y` (exact for every [`EpiAct`]; see
/// [`EpiAct::grad_from_output`]). Recomputing an element on a second read
/// yields the identical value, so tiling order cannot affect results.
#[derive(Clone, Copy)]
pub(crate) struct DactSrc<'a> {
    pub g: &'a [f64],
    pub y: &'a [f64],
    pub act: EpiAct,
}

impl SrcRead for DactSrc<'_> {
    #[inline(always)]
    fn at(&self, idx: usize) -> f64 {
        self.act.grad_from_output(self.g[idx], self.y[idx])
    }

    /// Bulk read with the activation match hoisted out of the element
    /// loop: each arm is the literal [`EpiAct::grad_from_output`] formula
    /// over pre-sliced runs (no per-element bounds checks), so values are
    /// bit-identical to the scalar path while vectorizing cleanly.
    #[inline]
    fn read_run(&self, start: usize, dst: &mut [f64]) {
        let end = start + dst.len();
        let g = &self.g[start..end];
        let y = &self.y[start..end];
        match self.act {
            EpiAct::None => dst.copy_from_slice(g),
            EpiAct::Relu => {
                for ((d, &gv), &yv) in dst.iter_mut().zip(g).zip(y) {
                    *d = if yv > 0.0 { gv } else { 0.0 };
                }
            }
            EpiAct::LeakyRelu => {
                for ((d, &gv), &yv) in dst.iter_mut().zip(g).zip(y) {
                    *d = if yv > 0.0 { gv } else { 0.01 * gv };
                }
            }
            EpiAct::Sigmoid => {
                for ((d, &gv), &yv) in dst.iter_mut().zip(g).zip(y) {
                    *d = gv * (yv * (1.0 - yv));
                }
            }
            EpiAct::Tanh => {
                for ((d, &gv), &yv) in dst.iter_mut().zip(g).zip(y) {
                    *d = gv * (1.0 - yv * yv);
                }
            }
        }
    }
}

/// Applies the fused `(bias, act)` epilogue to one finished out segment,
/// or copies the raw accumulator values when no epilogue is set.
#[inline(always)]
fn store_row(dst: &mut [f64], acc: &[f64], j0: usize, epi: Option<(&[f64], EpiAct)>) {
    match epi {
        Some((bias, act)) => {
            for ((o, &v), &bj) in dst.iter_mut().zip(acc).zip(&bias[j0..j0 + acc.len()]) {
                *o = act.apply(v + bj);
            }
        }
        None => dst.copy_from_slice(acc),
    }
}

// ---------------------------------------------------------------------------
// nn: out[r][j] += Σ_k a(r, k) · b(k, j)

/// One full `SMR x SNR` tile of the `nn` kernel. Accumulators initialize
/// from `out` (callers pre-zero it) and run the whole `k` range, so each
/// element's chain is complete when the tile stores — which is what lets
/// the `epi` epilogue fire here.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn nn_tile<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    n: usize,
    r0: usize,
    j0: usize,
    epi: Option<(&[f64], EpiAct)>,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; SNR]; SMR];
    for (m, acc_row) in acc.iter_mut().enumerate() {
        let o = (r0 + m) * n + j0;
        acc_row.copy_from_slice(&out[o..o + SNR]);
    }
    for k in 0..k_dim {
        let brow: &[f64; SNR] = b[k * n + j0..k * n + j0 + SNR]
            .try_into()
            .expect("SNR b row");
        for (m, acc_row) in acc.iter_mut().enumerate() {
            let av = a.at(a_base + (r0 + m) * a_stride + k);
            for (o, &bv) in acc_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (m, acc_row) in acc.iter().enumerate() {
        let o = (r0 + m) * n + j0;
        store_row(&mut out[o..o + SNR], acc_row, j0, epi);
    }
}

/// Edge tile of the `nn` kernel (`mb < SMR` rows and/or `jb < SNR`
/// columns): the scalar i-k-j loop restricted to the edge range — the
/// identical ascending-`k` chains, just without register blocking.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn nn_edge<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    n: usize,
    r0: usize,
    mb: usize,
    j0: usize,
    jb: usize,
    epi: Option<(&[f64], EpiAct)>,
    out: &mut [f64],
) {
    for m in 0..mb {
        let r = r0 + m;
        let a_row = a_base + r * a_stride;
        let dst = &mut out[r * n + j0..r * n + j0 + jb];
        for k in 0..k_dim {
            let av = a.at(a_row + k);
            for (o, &bv) in dst.iter_mut().zip(&b[k * n + j0..k * n + j0 + jb]) {
                *o += av * bv;
            }
        }
        if let Some((bias, act)) = epi {
            for (o, &bj) in dst.iter_mut().zip(&bias[j0..j0 + jb]) {
                *o = act.apply(*o + bj);
            }
        }
    }
}

/// The register-tiled `nn` small kernel: `out[r][j] += Σ_k a(r,k)·b(k,j)`
/// with element `(r, k)` of A at `a_base + r*a_stride + k` and a row-major
/// B. `out` holds `rows` full rows of `n`, pre-zeroed by the caller (or
/// holding partial sums to accumulate onto). `epi` fuses the dense-layer
/// bias+activation epilogue at tile write-back, exactly as the blocked
/// driver does.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nn_small<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    n: usize,
    epi: Option<(&[f64], EpiAct)>,
    out: &mut [f64],
) {
    let rows = out.len() / n;
    let mut r0 = 0;
    while r0 + SMR <= rows {
        let mut j0 = 0;
        while j0 + SNR <= n {
            nn_tile(a, a_base, a_stride, k_dim, b, n, r0, j0, epi, out);
            j0 += SNR;
        }
        if j0 < n {
            nn_edge(
                a,
                a_base,
                a_stride,
                k_dim,
                b,
                n,
                r0,
                SMR,
                j0,
                n - j0,
                epi,
                out,
            );
        }
        r0 += SMR;
    }
    if r0 < rows {
        nn_edge(
            a,
            a_base,
            a_stride,
            k_dim,
            b,
            n,
            r0,
            rows - r0,
            0,
            n,
            epi,
            out,
        );
    }
}

/// The scalar `nn` fallback for outputs smaller than one register tile:
/// the exact i-k-j loop of the original naive kernel, generic over the
/// A read path and with the optional fused epilogue applied per finished
/// out row.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nn_scalar<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    n: usize,
    epi: Option<(&[f64], EpiAct)>,
    out: &mut [f64],
) {
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = a_base + r * a_stride;
        for k in 0..k_dim {
            let av = a.at(a_row + k);
            for (o, &bv) in out_row.iter_mut().zip(&b[k * n..(k + 1) * n]) {
                *o += av * bv;
            }
        }
        if let Some((bias, act)) = epi {
            for (o, &bj) in out_row.iter_mut().zip(bias) {
                *o = act.apply(*o + bj);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nt: out[r][j] += Σ_k a(r, k) · b(j, k)

/// Contraction-chunk length of the `nt` kernel's A-row buffer: `SMR` rows
/// of `SKC` values are 8 KiB of stack, read in bulk once per
/// (row-tile, chunk) instead of once per *column* tile — without it a
/// [`DactSrc`] A would recompute every activation-derivative element
/// `n / SNR` times.
const SKC: usize = 256;

/// One `SMR x SNR` tile of the `nt` kernel over a single `kb`-long
/// contraction chunk, reading A from the pre-filled row buffer (`SKC`
/// values per row). Accumulators round-trip through `out` between chunks;
/// an f64 add is the same value whether the partial lives in a register
/// or memory, so the per-element chain is identical to one unchunked
/// ascending-`k` pass.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn nt_tile_chunk(
    abuf: &[f64; SMR * SKC],
    kb: usize,
    b: &[f64],
    b_stride: usize,
    k0: usize,
    n: usize,
    r0: usize,
    j0: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; SNR]; SMR];
    for (m, acc_row) in acc.iter_mut().enumerate() {
        let o = (r0 + m) * n + j0;
        acc_row.copy_from_slice(&out[o..o + SNR]);
    }
    for k in 0..kb {
        let mut bv = [0.0f64; SNR];
        for (c, v) in bv.iter_mut().enumerate() {
            *v = b[(j0 + c) * b_stride + k0 + k];
        }
        for (m, acc_row) in acc.iter_mut().enumerate() {
            let av = abuf[m * SKC + k];
            for (o, &bw) in acc_row.iter_mut().zip(&bv) {
                *o += av * bw;
            }
        }
    }
    for (m, acc_row) in acc.iter().enumerate() {
        let o = (r0 + m) * n + j0;
        out[o..o + SNR].copy_from_slice(acc_row);
    }
}

/// Variable-size edge counterpart of [`nt_tile_chunk`] (`mb <= SMR` rows
/// and/or `jb <= SNR` columns): the same register accumulators over one
/// contraction chunk with A from the row buffer, restricted to a prefix of
/// the tile. Every edge shares the row buffer, so a fused [`DactSrc`] A is
/// still computed exactly once per (row, chunk) no matter how narrow the
/// layer is.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn nt_block_chunk(
    abuf: &[f64; SMR * SKC],
    kb: usize,
    b: &[f64],
    b_stride: usize,
    k0: usize,
    n: usize,
    r0: usize,
    mb: usize,
    j0: usize,
    jb: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; SNR]; SMR];
    for (m, acc_row) in acc.iter_mut().take(mb).enumerate() {
        let o = (r0 + m) * n + j0;
        acc_row[..jb].copy_from_slice(&out[o..o + jb]);
    }
    for k in 0..kb {
        let mut bv = [0.0f64; SNR];
        for (c, v) in bv.iter_mut().take(jb).enumerate() {
            *v = b[(j0 + c) * b_stride + k0 + k];
        }
        for (m, acc_row) in acc.iter_mut().take(mb).enumerate() {
            let av = abuf[m * SKC + k];
            for (o, &bw) in acc_row[..jb].iter_mut().zip(&bv[..jb]) {
                *o += av * bw;
            }
        }
    }
    for (m, acc_row) in acc.iter().take(mb).enumerate() {
        let o = (r0 + m) * n + j0;
        out[o..o + jb].copy_from_slice(&acc_row[..jb]);
    }
}

/// The register-tiled `nt` small kernel: `out[r][j] += Σ_k a(r,k)·b(j,k)`
/// with element `(j, k)` of B at `j*b_stride + k` and `n` out columns (=
/// B rows). This is the backward data-gradient shape `dX = dZ · Wᵀ`; pass
/// a [`DactSrc`] as `a` to fuse the activation-derivative product into
/// the read path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nt_small<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    b_stride: usize,
    n: usize,
    out: &mut [f64],
) {
    let rows = out.len() / n;
    let mut abuf = [0.0f64; SMR * SKC];
    let mut r0 = 0;
    while r0 < rows {
        let mb = (rows - r0).min(SMR);
        // Contraction chunks: fill the A row buffer once (bulk `read_run`
        // per row — the one place a fused [`DactSrc`] A computes each
        // element), then sweep every column tile over it. Chunks advance
        // in ascending `k`, so each out element still accumulates one
        // ascending chain (partials parked in `out` between chunks).
        let mut k0 = 0;
        while k0 < k_dim {
            let kb = (k_dim - k0).min(SKC);
            for m in 0..mb {
                let src = a_base + (r0 + m) * a_stride + k0;
                a.read_run(src, &mut abuf[m * SKC..m * SKC + kb]);
            }
            let mut j0 = 0;
            if mb == SMR {
                while j0 + SNR <= n {
                    nt_tile_chunk(&abuf, kb, b, b_stride, k0, n, r0, j0, out);
                    j0 += SNR;
                }
            } else {
                while j0 + SNR <= n {
                    nt_block_chunk(&abuf, kb, b, b_stride, k0, n, r0, mb, j0, SNR, out);
                    j0 += SNR;
                }
            }
            if j0 < n {
                nt_block_chunk(&abuf, kb, b, b_stride, k0, n, r0, mb, j0, n - j0, out);
            }
            k0 += kb;
        }
        r0 += mb;
    }
}

/// The scalar `nt` fallback: the exact dot-product loop of the original
/// naive kernel (local chain from `0.0`, then one add onto `out`), generic
/// over the A read path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_nt_scalar<A: SrcRead>(
    a: A,
    a_base: usize,
    a_stride: usize,
    k_dim: usize,
    b: &[f64],
    b_stride: usize,
    n: usize,
    out: &mut [f64],
) {
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = a_base + r * a_stride;
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = j * b_stride;
            let mut acc = 0.0;
            for k in 0..k_dim {
                acc += a.at(a_row + k) * b[b_row + k];
            }
            *o += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// tn: out[kk][j] += Σ_r a(r, first_k + kk) · b(r, j)

/// Contraction-chunk length (in `r`) of the `tn` kernel's B column-block
/// buffer: `TN_RC` rows of `SNR` values are 16 KiB of stack, read in bulk
/// once per (column block, chunk) instead of once per *out-row* block —
/// without it a [`DactSrc`] B would recompute every activation-derivative
/// element `out_rows / SMR` times.
const TN_RC: usize = 256;

/// One full `SMR x SNR` tile of the `tn` kernel over a single `rb`-long
/// contraction chunk, reading B from the pre-filled column-block buffer.
/// Fixed-width arrays keep the inner loops fully unrolled; accumulators
/// round-trip through `out` between chunks (an f64 add is the same value
/// whether the partial lives in a register or memory, so the per-element
/// chain is identical to one unchunked ascending-`r` pass).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tn_tile_chunk(
    a: &[f64],
    a_stride: usize,
    first_k: usize,
    bbuf: &[f64; TN_RC * SNR],
    rb: usize,
    r0: usize,
    n: usize,
    kk0: usize,
    j0: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; SNR]; SMR];
    for (m, acc_row) in acc.iter_mut().enumerate() {
        let o = (kk0 + m) * n + j0;
        acc_row.copy_from_slice(&out[o..o + SNR]);
    }
    for r in 0..rb {
        let a_off = (r0 + r) * a_stride + first_k + kk0;
        let mut bv = [0.0f64; SNR];
        bv.copy_from_slice(&bbuf[r * SNR..(r + 1) * SNR]);
        for (m, acc_row) in acc.iter_mut().enumerate() {
            let av = a[a_off + m];
            for (o, &bw) in acc_row.iter_mut().zip(&bv) {
                *o += av * bw;
            }
        }
    }
    for (m, acc_row) in acc.iter().enumerate() {
        let o = (kk0 + m) * n + j0;
        out[o..o + SNR].copy_from_slice(acc_row);
    }
}

/// Variable-size edge counterpart of [`tn_tile_chunk`] (`mb <= SMR` out
/// rows and/or `jb <= SNR` columns): the same register accumulators over
/// one chunk, restricted to a prefix of the tile.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tn_block_chunk(
    a: &[f64],
    a_stride: usize,
    first_k: usize,
    bbuf: &[f64; TN_RC * SNR],
    rb: usize,
    r0: usize,
    n: usize,
    kk0: usize,
    mb: usize,
    j0: usize,
    jb: usize,
    out: &mut [f64],
) {
    let mut acc = [[0.0f64; SNR]; SMR];
    for (m, acc_row) in acc.iter_mut().take(mb).enumerate() {
        let o = (kk0 + m) * n + j0;
        acc_row[..jb].copy_from_slice(&out[o..o + jb]);
    }
    for r in 0..rb {
        let a_off = (r0 + r) * a_stride + first_k + kk0;
        let bv = &bbuf[r * SNR..r * SNR + jb];
        for (m, acc_row) in acc.iter_mut().take(mb).enumerate() {
            let av = a[a_off + m];
            for (o, &bw) in acc_row[..jb].iter_mut().zip(bv) {
                *o += av * bw;
            }
        }
    }
    for (m, acc_row) in acc.iter().take(mb).enumerate() {
        let o = (kk0 + m) * n + j0;
        out[o..o + jb].copy_from_slice(&acc_row[..jb]);
    }
}

/// The register-tiled `tn` small kernel: `out[kk][j] += Σ_r a(r, first_k +
/// kk)·b(r, j)` over a row-major `a_rows x a_stride` A read column-wise.
/// This is the backward weight-gradient shape `dW = Xᵀ · dZ`; pass a
/// [`DactSrc`] as `b` to fuse the activation-derivative product into the
/// read path — each element is computed exactly once (bulk `read_run`
/// into the column-block buffer), then swept across every out-row block.
/// Chunks advance in ascending `r`, so each out element still accumulates
/// one ascending chain (partials parked in `out` between chunks).
pub(crate) fn gemm_tn_small<B: SrcRead>(
    a: &[f64],
    a_stride: usize,
    a_rows: usize,
    first_k: usize,
    b: B,
    n: usize,
    out: &mut [f64],
) {
    let out_rows = out.len() / n;
    let mut bbuf = [0.0f64; TN_RC * SNR];
    let mut j0 = 0;
    while j0 < n {
        let jb = (n - j0).min(SNR);
        let full_width = jb == SNR;
        let mut r0 = 0;
        while r0 < a_rows {
            let rb = (a_rows - r0).min(TN_RC);
            for r in 0..rb {
                b.read_run((r0 + r) * n + j0, &mut bbuf[r * SNR..r * SNR + jb]);
            }
            let mut kk0 = 0;
            if full_width {
                while kk0 + SMR <= out_rows {
                    tn_tile_chunk(a, a_stride, first_k, &bbuf, rb, r0, n, kk0, j0, out);
                    kk0 += SMR;
                }
            } else {
                while kk0 + SMR <= out_rows {
                    tn_block_chunk(
                        a, a_stride, first_k, &bbuf, rb, r0, n, kk0, SMR, j0, jb, out,
                    );
                    kk0 += SMR;
                }
            }
            if kk0 < out_rows {
                let mb = out_rows - kk0;
                tn_block_chunk(a, a_stride, first_k, &bbuf, rb, r0, n, kk0, mb, j0, jb, out);
            }
            r0 += rb;
        }
        j0 += jb;
    }
}

/// The scalar `tn` fallback: the exact kk-outer, `r`-ascending loop of the
/// original naive kernel, generic over the B read path.
pub(crate) fn gemm_tn_scalar<B: SrcRead>(
    a: &[f64],
    a_stride: usize,
    a_rows: usize,
    first_k: usize,
    b: B,
    n: usize,
    out: &mut [f64],
) {
    for (kk, out_row) in out.chunks_mut(n).enumerate() {
        let k = first_k + kk;
        for r in 0..a_rows {
            let av = a[r * a_stride + k];
            let b_off = r * n;
            for (c, o) in out_row.iter_mut().enumerate() {
                *o += av * b.at(b_off + c);
            }
        }
    }
}
