//! Scalar statistics shared across the workspace.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Minimum (`+inf` for an empty slice).
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum (`-inf` for an empty slice).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics, matching NumPy's default behaviour.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction {q} out of [0,1]"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Min-max rescaling of `v` into `[0, 1]` given the range `[lo, hi]`.
/// Degenerate ranges map everything to 0.5 (a constant feature carries no
/// information; keeping it mid-range avoids synthetic extremes).
pub fn min_max_scale(v: f64, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else {
        0.5
    }
}

/// Index of the maximum element (first on ties). `None` when empty.
pub fn argmax(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element (first on ties). `None` when empty.
pub fn argmin(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v < values[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
    }

    #[test]
    fn min_max_scale_behaviour() {
        assert_eq!(min_max_scale(5.0, 0.0, 10.0), 0.5);
        assert_eq!(min_max_scale(-1.0, 0.0, 10.0), 0.0);
        assert_eq!(min_max_scale(11.0, 0.0, 10.0), 1.0);
        assert_eq!(min_max_scale(7.0, 3.0, 3.0), 0.5);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 0.5]), Some(2));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn extremes() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]), 3.0);
    }
}
