//! Exact-equality property suite for the f32 inference kernels.
//!
//! The contract under test (module docs of `targad_linalg::f32kernel`):
//! the AVX2+FMA micro-tile, the portable scalar micro-kernel, and the
//! plain-loop reference all compute *bit-identical* results on every
//! shape — including the degenerate ones (single row, single column,
//! contraction dimensions that straddle or under-fill the `KC`/`MR`/`NR`
//! tiles, empty operands) — because all three run the same
//! fused-multiply-add chain per output element in the same order.
//!
//! The CI kernel-matrix job runs this suite twice: once with auto
//! dispatch (AVX2 on the hosted runners) and once under `TARGAD_SIMD=off`,
//! so the scalar fallback stays green on non-AVX2 hosts.

use targad_linalg::f32kernel::{
    self, matmul_bias_act_f32_into, matmul_bias_act_f32_with, KC, MR, NR,
};
use targad_linalg::{cpu_features, kernel_path, rng as lrng, EpiAct, KernelPath, PackedF32};

const ALL_ACTS: &[EpiAct] = &[
    EpiAct::None,
    EpiAct::Relu,
    EpiAct::LeakyRelu,
    EpiAct::Sigmoid,
    EpiAct::Tanh,
];

/// Seeded f32 operands for one (rows, k, n) case.
fn operands(seed: u64, rows: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = lrng::seeded(seed);
    let cast = |m: &targad_linalg::Matrix| -> Vec<f32> {
        m.as_slice().iter().map(|&v| v as f32).collect()
    };
    let x = cast(&lrng::normal_matrix(&mut rng, rows, k, 0.0, 1.5));
    let w = cast(&lrng::normal_matrix(&mut rng, k, n, 0.0, 0.8));
    let bias = cast(&lrng::normal_matrix(&mut rng, 1, n, 0.0, 0.5));
    (x, w, bias)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Shapes that exercise every tiling edge: ragged row tiles (`rows % MR`),
/// ragged column panels (`n % NR`), contraction dimensions below, at, and
/// straddling the `KC` block, plus the degenerate single-row/single-column
/// cases the issue calls out.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 7, 13),               // 1 x n, ragged panel
        (9, 5, 1),                // n x 1, ragged row tile
        (1, 1, 1),                // scalar
        (MR, KC, NR),             // exactly one full tile and k-block
        (MR + 3, KC + 3, NR + 5), // every dimension ragged, two k-blocks
        (17, 2 * KC + 1, 6),      // three k-blocks, narrow output
        (2 * MR, 3, 2 * NR),      // tiny contraction, full tiles
        (5, 0, 4),                // empty contraction: epilogue of bias only
    ]
}

#[test]
fn scalar_path_matches_plain_reference_exactly() {
    for (case, &(rows, k, n)) in edge_shapes().iter().enumerate() {
        let (x, w, bias) = operands(100 + case as u64, rows, k, n);
        let packed = PackedF32::from_rows(&w, k, n);
        for &act in ALL_ACTS {
            let mut want = vec![0.0f32; rows * n];
            f32kernel::reference::matmul_bias_act_f32(&x, k, &w, n, &bias, act, &mut want);
            let mut got = vec![f32::NAN; rows * n];
            matmul_bias_act_f32_with(KernelPath::Scalar, &x, k, &packed, &bias, act, &mut got);
            assert_eq!(
                bits(&got),
                bits(&want),
                "scalar vs reference: shape ({rows},{k},{n}), act {act:?}"
            );
        }
    }
}

#[test]
fn simd_path_matches_scalar_reference_exactly() {
    let f = cpu_features();
    if !(f.avx2 && f.fma) {
        eprintln!("skipping SIMD equality: host lacks avx2+fma");
        return;
    }
    for (case, &(rows, k, n)) in edge_shapes().iter().enumerate() {
        let (x, w, bias) = operands(200 + case as u64, rows, k, n);
        let packed = PackedF32::from_rows(&w, k, n);
        for &act in ALL_ACTS {
            let mut scalar = vec![0.0f32; rows * n];
            matmul_bias_act_f32_with(KernelPath::Scalar, &x, k, &packed, &bias, act, &mut scalar);
            let mut simd = vec![f32::NAN; rows * n];
            matmul_bias_act_f32_with(KernelPath::Avx2Fma, &x, k, &packed, &bias, act, &mut simd);
            assert_eq!(
                bits(&simd),
                bits(&scalar),
                "simd vs scalar: shape ({rows},{k},{n}), act {act:?}"
            );
        }
    }
}

#[test]
fn auto_dispatch_matches_its_advertised_path() {
    let path = kernel_path();
    let f = cpu_features();
    if !(f.avx2 && f.fma) {
        assert_eq!(path, KernelPath::Scalar, "no avx2+fma must mean scalar");
    }
    let (rows, k, n) = (MR + 1, KC + 9, NR + 3);
    let (x, w, bias) = operands(300, rows, k, n);
    let packed = PackedF32::from_rows(&w, k, n);
    let mut auto = vec![0.0f32; rows * n];
    matmul_bias_act_f32_into(&x, k, &packed, &bias, EpiAct::Sigmoid, &mut auto);
    let mut explicit = vec![0.0f32; rows * n];
    matmul_bias_act_f32_with(path, &x, k, &packed, &bias, EpiAct::Sigmoid, &mut explicit);
    assert_eq!(bits(&auto), bits(&explicit));
}

#[test]
fn simd_env_override_forces_the_scalar_path() {
    // The dispatch decision is cached per process, so this can only be
    // asserted when the suite is launched with the override set — exactly
    // what the CI kernel-matrix job does.
    let forced_off = std::env::var("TARGAD_SIMD").is_ok_and(|v| {
        matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "scalar"
        )
    });
    if forced_off {
        assert_eq!(
            kernel_path(),
            KernelPath::Scalar,
            "TARGAD_SIMD=off must force the scalar fallback"
        );
    }
}

#[test]
fn packed_from_matrix_equals_packed_from_cast_rows() {
    let mut rng = lrng::seeded(400);
    let w64 = lrng::normal_matrix(&mut rng, KC + 2, NR + 1, 0.0, 1.0);
    let w32: Vec<f32> = w64.as_slice().iter().map(|&v| v as f32).collect();
    let a = PackedF32::from_matrix(&w64);
    let b = PackedF32::from_rows(&w32, w64.rows(), w64.cols());
    let x: Vec<f32> = (0..3 * (KC + 2)).map(|i| (i as f32).sin()).collect();
    let bias = vec![0.25f32; NR + 1];
    let mut out_a = vec![0.0f32; 3 * (NR + 1)];
    let mut out_b = vec![0.0f32; 3 * (NR + 1)];
    matmul_bias_act_f32_with(
        KernelPath::Scalar,
        &x,
        KC + 2,
        &a,
        &bias,
        EpiAct::Relu,
        &mut out_a,
    );
    matmul_bias_act_f32_with(
        KernelPath::Scalar,
        &x,
        KC + 2,
        &b,
        &bias,
        EpiAct::Relu,
        &mut out_b,
    );
    assert_eq!(bits(&out_a), bits(&out_b));
}

#[test]
fn row_block_partitions_are_bit_identical() {
    // The engine streams fixed row blocks through this kernel; equality of
    // any row partition with the whole-batch call is what makes the f32
    // path worker-count invariant upstream.
    let (rows, k, n) = (3 * MR + 2, KC + 7, 2 * NR + 3);
    let (x, w, bias) = operands(500, rows, k, n);
    let packed = PackedF32::from_rows(&w, k, n);
    let mut whole = vec![0.0f32; rows * n];
    matmul_bias_act_f32_with(
        KernelPath::Scalar,
        &x,
        k,
        &packed,
        &bias,
        EpiAct::Tanh,
        &mut whole,
    );
    for block in [1usize, 3, MR, MR + 1] {
        let mut pieced = vec![0.0f32; rows * n];
        let mut r0 = 0;
        while r0 < rows {
            let rb = block.min(rows - r0);
            matmul_bias_act_f32_with(
                KernelPath::Scalar,
                &x[r0 * k..(r0 + rb) * k],
                k,
                &packed,
                &bias,
                EpiAct::Tanh,
                &mut pieced[r0 * n..(r0 + rb) * n],
            );
            r0 += rb;
        }
        assert_eq!(bits(&pieced), bits(&whole), "block={block}");
    }
}
