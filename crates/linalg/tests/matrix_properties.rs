//! Property tests for the dense matrix kernels.

use proptest::prelude::*;
use targad_linalg::{rng as lrng, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)·C == A·(B·C) up to floating-point tolerance.
    #[test]
    fn matmul_associativity(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// (A·B)^T == B^T·A^T.
    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(left.shape(), right.shape());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// The fused transpose kernels agree with explicit transposition.
    #[test]
    fn fused_kernels_match_explicit(a in matrix(4, 3), b in matrix(4, 2), c in matrix(5, 3)) {
        let tn = a.matmul_tn(&b);
        let tn_explicit = a.transpose().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(tn_explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
        let nt = a.matmul_nt(&c);
        let nt_explicit = a.matmul(&c.transpose());
        for (x, y) in nt.as_slice().iter().zip(nt_explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// Softmax rows are probability distributions preserving argmax.
    #[test]
    fn softmax_rows_are_distributions(m in matrix(4, 6)) {
        let s = m.softmax_rows();
        for r in 0..4 {
            let sum: f64 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
            prop_assert_eq!(m.argmax_row(r), s.argmax_row(r));
        }
    }

    /// logsumexp never underflows/overflows for bounded inputs and
    /// dominates the row max.
    #[test]
    fn logsumexp_bounds(m in matrix(3, 5)) {
        let lse = m.logsumexp_rows();
        for r in 0..3 {
            let max = m.max_row(r);
            prop_assert!(lse[(r, 0)] >= max - 1e-12);
            prop_assert!(lse[(r, 0)] <= max + (5f64).ln() + 1e-12);
        }
    }

    /// Row/column reductions are consistent with the full sum.
    #[test]
    fn reduction_consistency(m in matrix(4, 3)) {
        let total = m.sum();
        prop_assert!((m.row_sums().sum() - total).abs() < 1e-9);
        prop_assert!((m.col_sums().sum() - total).abs() < 1e-9);
        prop_assert!((m.mean() * 12.0 - total).abs() < 1e-9);
    }

    /// hstack/vstack shapes and content are preserved.
    #[test]
    fn stacking_round_trip(a in matrix(2, 3), b in matrix(2, 3)) {
        let v = a.vstack(&b);
        prop_assert_eq!(v.shape(), (4, 3));
        prop_assert_eq!(v.row(0), a.row(0));
        prop_assert_eq!(v.row(2), b.row(0));
        let h = a.hstack(&b);
        prop_assert_eq!(h.shape(), (2, 6));
        prop_assert_eq!(&h.row(0)[..3], a.row(0));
        prop_assert_eq!(&h.row(1)[3..], b.row(1));
    }

    /// Seeded sampling helpers stay within bounds.
    #[test]
    fn sampled_indices_in_range(seed in 0u64..10_000, n in 1usize..200) {
        let mut rng = lrng::seeded(seed);
        let count = (n / 2).max(1);
        let idx = lrng::sample_indices(&mut rng, n, count);
        prop_assert_eq!(idx.len(), count);
        prop_assert!(idx.iter().all(|&i| i < n));
    }
}
