//! Multi-class confusion matrices and derived scores (Table IV metrics).

/// Per-class precision/recall/F1 plus support, as reported in Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassReport {
    /// `TP / (TP + FP)`; 0 when the class is never predicted.
    pub precision: f64,
    /// `TP / (TP + FN)`; 0 when the class has no true instances.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// Number of true instances of the class.
    pub support: usize,
}

/// A `c x c` confusion matrix; `counts[true][pred]`.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel true/predicted class-index slices.
    ///
    /// # Panics
    /// Panics on length mismatch or an index `>= num_classes`.
    pub fn from_predictions(truth: &[usize], predicted: &[usize], num_classes: usize) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "confusion matrix: length mismatch"
        );
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(
                t < num_classes && p < num_classes,
                "class index out of range"
            );
            counts[t][p] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of instances with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total instances.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.num_classes()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision/recall/F1 for class `c`.
    pub fn class_report(&self, c: usize) -> ClassReport {
        let tp = self.counts[c][c];
        let fp: usize = (0..self.num_classes())
            .filter(|&t| t != c)
            .map(|t| self.counts[t][c])
            .sum();
        let fn_: usize = (0..self.num_classes())
            .filter(|&p| p != c)
            .map(|p| self.counts[c][p])
            .sum();
        let support = tp + fn_;
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if support == 0 {
            0.0
        } else {
            tp as f64 / support as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassReport {
            precision,
            recall,
            f1,
            support,
        }
    }

    /// Unweighted mean of per-class reports ("macro avg" row of Table IV).
    pub fn macro_avg(&self) -> ClassReport {
        let n = self.num_classes() as f64;
        let mut acc = ClassReport {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            support: 0,
        };
        for c in 0..self.num_classes() {
            let r = self.class_report(c);
            acc.precision += r.precision / n;
            acc.recall += r.recall / n;
            acc.f1 += r.f1 / n;
            acc.support += r.support;
        }
        acc
    }

    /// Support-weighted mean of per-class reports ("weighted avg" row).
    pub fn weighted_avg(&self) -> ClassReport {
        let total = self.total() as f64;
        let mut acc = ClassReport {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            support: 0,
        };
        if total == 0.0 {
            return acc;
        }
        for c in 0..self.num_classes() {
            let r = self.class_report(c);
            let w = r.support as f64 / total;
            acc.precision += r.precision * w;
            acc.recall += r.recall * w;
            acc.f1 += r.f1 * w;
            acc.support += r.support;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-class fixture with hand-computed entries.
    fn fixture() -> ConfusionMatrix {
        // truth:     0 0 0 0 1 1 1 2 2 2
        // predicted: 0 0 1 2 1 1 0 2 2 1
        let truth = [0, 0, 0, 0, 1, 1, 1, 2, 2, 2];
        let pred = [0, 0, 1, 2, 1, 1, 0, 2, 2, 1];
        ConfusionMatrix::from_predictions(&truth, &pred, 3)
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = fixture();
        assert_eq!(cm.total(), 10);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.accuracy(), 0.6);
    }

    #[test]
    fn class_reports_hand_checked() {
        let cm = fixture();
        // class 0: TP=2, FP=1 (one truth-1 predicted 0), FN=2 → P=2/3, R=1/2
        let r0 = cm.class_report(0);
        assert!((r0.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r0.recall - 0.5).abs() < 1e-12);
        assert_eq!(r0.support, 4);
        // class 1: TP=2, FP=2, FN=1 → P=1/2, R=2/3, F1 = 2*(1/2)(2/3)/(7/6)
        let r1 = cm.class_report(1);
        assert!((r1.precision - 0.5).abs() < 1e-12);
        assert!((r1.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((r1.f1 - 4.0 / 7.0).abs() < 1e-12);
        // class 2: TP=2, FP=1, FN=1 → P=2/3, R=2/3.
        let r2 = cm.class_report(2);
        assert!((r2.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r2.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_and_weighted_averages() {
        let cm = fixture();
        let macro_ = cm.macro_avg();
        let expected_p = (2.0 / 3.0 + 0.5 + 2.0 / 3.0) / 3.0;
        assert!((macro_.precision - expected_p).abs() < 1e-12);
        assert_eq!(macro_.support, 10);

        let weighted = cm.weighted_avg();
        let expected_wp = (2.0 / 3.0) * 0.4 + 0.5 * 0.3 + (2.0 / 3.0) * 0.3;
        assert!((weighted.precision - expected_wp).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_yield_zero_not_nan() {
        // Class 1 never occurs and is never predicted.
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 2);
        let r = cm.class_report(1);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
        assert_eq!(r.support, 0);
        assert!(cm.accuracy() == 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[0, 1], 2);
    }
}
