//! Evaluation metrics for the TargAD reproduction.
//!
//! The paper reports AUROC and AUPRC for target-anomaly ranking (Table II,
//! Figs. 3–4, 6–7) and confusion-matrix derived Precision/Recall/F1 with
//! macro and weighted averages for three-way identification (Table IV).
//!
//! - [`ranking`]: exact tie-corrected AUROC (Mann–Whitney form), average
//!   precision (the AUPRC estimator scikit-learn uses, which the paper's
//!   Python stack reports), and full ROC / PR curves;
//! - [`classify`]: multi-class confusion matrices and per-class /
//!   macro / weighted precision, recall, and F1.

pub mod classify;
pub mod ranking;

pub use classify::{ClassReport, ConfusionMatrix};
pub use ranking::{auroc, average_precision, pr_curve, roc_curve};
