//! Threshold-free ranking metrics: AUROC and AUPRC.

/// Area under the ROC curve, computed exactly via the Mann–Whitney U
/// statistic with tie correction (ties contribute ½).
///
/// Returns 0.5 when either class is empty (no ranking information).
///
/// # Panics
/// Panics if `scores` and `labels` have different lengths.
pub fn auroc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auroc: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }

    // Rank-sum with average ranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("NaN score in auroc")
    });

    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Average rank of the tied block [i, j], 1-based ranks.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }

    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Average precision — the step-wise AUPRC estimator
/// `AP = Σ_n (R_n − R_{n−1}) · P_n`, matching
/// `sklearn.metrics.average_precision_score` (the estimator behind the
/// paper's AUPRC numbers). Instances tied on score are processed as one
/// block so the result is permutation-invariant.
///
/// Returns 0.0 when there are no positives.
///
/// # Panics
/// Panics if `scores` and `labels` have different lengths.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "average_precision: length mismatch"
    );
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score in AP"));

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut ap = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        let mut block_tp = 0usize;
        let mut block_fp = 0usize;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            if labels[order[j]] {
                block_tp += 1;
            } else {
                block_fp += 1;
            }
            j += 1;
        }
        let prev_recall = tp as f64 / n_pos as f64;
        tp += block_tp;
        fp += block_fp;
        let recall = tp as f64 / n_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        i = j;
    }
    ap
}

/// ROC curve as `(fpr, tpr)` pairs, one per distinct threshold, beginning at
/// `(0, 0)` and ending at `(1, 1)`.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "roc_curve: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));

    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            if labels[order[j]] {
                tp += 1;
            } else {
                fp += 1;
            }
            j += 1;
        }
        curve.push((
            if n_neg > 0 {
                fp as f64 / n_neg as f64
            } else {
                0.0
            },
            if n_pos > 0 {
                tp as f64 / n_pos as f64
            } else {
                0.0
            },
        ));
        i = j;
    }
    curve
}

/// Precision-recall curve as `(recall, precision)` pairs per distinct
/// threshold, starting at `(0, 1)`.
pub fn pr_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "pr_curve: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));

    let mut curve = vec![(0.0, 1.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            if labels[order[j]] {
                tp += 1;
            } else {
                fp += 1;
            }
            j += 1;
        }
        if n_pos > 0 {
            curve.push((tp as f64 / n_pos as f64, tp as f64 / (tp + fp) as f64));
        }
        i = j;
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auroc_perfect_and_inverted() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), 1.0);
        let inverted = [false, false, true, true];
        assert_eq!(auroc(&scores, &inverted), 0.0);
    }

    #[test]
    fn auroc_known_value() {
        // scores: pos {3,1}, neg {2,0}; pairs won: (3>2),(3>0),(1>0) = 3/4
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((auroc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auroc_ties_count_half() {
        let scores = [1.0, 1.0];
        let labels = [true, false];
        assert_eq!(auroc(&scores, &labels), 0.5);
        // All equal scores → 0.5 regardless of class sizes.
        let scores = [2.0; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert_eq!(auroc(&scores, &labels), 0.5);
    }

    #[test]
    fn auroc_degenerate_classes() {
        assert_eq!(auroc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auroc(&[1.0, 2.0], &[false, false]), 0.5);
        assert_eq!(auroc(&[], &[]), 0.5);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(average_precision(&scores, &labels), 1.0);
    }

    #[test]
    fn ap_known_value() {
        // Ranking: pos, neg, pos, neg.
        // AP = 0.5*1.0 (first pos, P=1/1) + 0.5*(2/3) = 5/6.
        let scores = [0.9, 0.8, 0.7, 0.6];
        let labels = [true, false, true, false];
        assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_equals_prevalence_for_constant_scores() {
        let scores = [1.0; 8];
        let labels: Vec<bool> = (0..8).map(|i| i < 2).collect();
        assert!((average_precision(&scores, &labels) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ap_no_positives_is_zero() {
        assert_eq!(average_precision(&[1.0, 2.0], &[false, false]), 0.0);
    }

    #[test]
    fn roc_curve_endpoints() {
        let scores = [0.9, 0.4, 0.6, 0.1];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        // Monotone in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn pr_curve_starts_at_full_precision() {
        let scores = [0.9, 0.4, 0.6, 0.1];
        let labels = [true, false, true, false];
        let curve = pr_curve(&scores, &labels);
        assert_eq!(curve[0], (0.0, 1.0));
        assert_eq!(curve.last().unwrap().0, 1.0);
    }

    #[test]
    fn auroc_matches_trapezoid_of_roc() {
        let scores = [0.9, 0.8, 0.75, 0.6, 0.55, 0.5, 0.4, 0.3];
        let labels = [true, false, true, true, false, false, true, false];
        let curve = roc_curve(&scores, &labels);
        let trap: f64 = curve
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0)
            .sum();
        assert!((auroc(&scores, &labels) - trap).abs() < 1e-12);
    }
}
