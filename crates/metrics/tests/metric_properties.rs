//! Property tests for ranking metrics.

use proptest::prelude::*;
use targad_metrics::{auroc, average_precision, pr_curve, roc_curve};

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    prop::collection::vec((-100.0f64..100.0, any::<bool>()), 2..64)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    /// AUROC is always within [0, 1].
    #[test]
    fn auroc_bounded((scores, labels) in scores_and_labels()) {
        let v = auroc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// AP is always within [0, 1].
    #[test]
    fn ap_bounded((scores, labels) in scores_and_labels()) {
        let v = average_precision(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// AUROC is invariant to strictly monotone score transforms.
    #[test]
    fn auroc_monotone_invariant((scores, labels) in scores_and_labels()) {
        let base = auroc(&scores, &labels);
        let warped: Vec<f64> = scores.iter().map(|&s| (s / 50.0).tanh() * 3.0 + 7.0).collect();
        prop_assert!((auroc(&warped, &labels) - base).abs() < 1e-9);
    }

    /// AP is invariant to strictly monotone score transforms.
    #[test]
    fn ap_monotone_invariant((scores, labels) in scores_and_labels()) {
        let base = average_precision(&scores, &labels);
        let warped: Vec<f64> = scores.iter().map(|&s| s.exp().min(1e300)).collect();
        prop_assert!((average_precision(&warped, &labels) - base).abs() < 1e-9);
    }

    /// Flipping all labels maps AUROC to 1 − AUROC (when both classes exist).
    #[test]
    fn auroc_label_flip_symmetry((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let a = auroc(&scores, &labels);
        let b = auroc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    /// AP is permutation-invariant (ties handled as blocks).
    #[test]
    fn ap_permutation_invariant((scores, labels) in scores_and_labels(), seed in 0u64..1000) {
        use rand_shuffle::shuffle_together;
        let base = average_precision(&scores, &labels);
        let (s2, l2) = shuffle_together(&scores, &labels, seed);
        prop_assert!((average_precision(&s2, &l2) - base).abs() < 1e-9);
    }

    /// ROC curves are monotone staircases from (0,0) to (1,1), and their
    /// trapezoid area equals the Mann–Whitney AUROC.
    #[test]
    fn roc_curve_consistency((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let curve = roc_curve(&scores, &labels);
        prop_assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        prop_assert_eq!(curve.last(), Some(&(1.0, 1.0)));
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12 && w[1].1 >= w[0].1 - 1e-12);
        }
        let trapezoid: f64 = curve
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0)
            .sum();
        prop_assert!((trapezoid - auroc(&scores, &labels)).abs() < 1e-9);
    }

    /// PR curves start at precision 1, reach recall 1, and stay in the
    /// unit square; AP never exceeds the maximum precision on the curve.
    #[test]
    fn pr_curve_consistency((scores, labels) in scores_and_labels()) {
        let n_pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(n_pos > 0);
        let curve = pr_curve(&scores, &labels);
        prop_assert_eq!(curve[0], (0.0, 1.0));
        prop_assert!((curve.last().unwrap().0 - 1.0).abs() < 1e-12);
        for &(r, p) in &curve {
            prop_assert!((0.0..=1.0).contains(&r) && (0.0..=1.0).contains(&p));
        }
        let max_precision = curve[1..].iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
        let ap = average_precision(&scores, &labels);
        prop_assert!(ap <= max_precision + 1e-9, "AP {ap} > max precision {max_precision}");
    }
}

mod rand_shuffle {
    /// Deterministic xorshift-based co-shuffle (avoids a rand dev-dependency).
    pub fn shuffle_together(scores: &[f64], labels: &[bool], seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut s: Vec<f64> = scores.to_vec();
        let mut l: Vec<bool> = labels.to_vec();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..s.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            s.swap(i, j);
            l.swap(i, j);
        }
        (s, l)
    }
}
