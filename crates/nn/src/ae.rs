//! Bottleneck autoencoders.
//!
//! The paper uses "bottleneck networks consisting of two structurally
//! symmetrical multi-layer perceptron networks" (§III-B4): an encoder
//! `D → … → d` and a mirrored decoder `d → … → D`. Candidate selection
//! trains one per k-means cluster with the modified loss of Eq. 1; DeepSAD
//! and FEAWAD reuse the same component.

use rand::Rng;
use targad_autograd::{Tape, Var, VarStore};
use targad_linalg::Matrix;
use targad_runtime::Runtime;

use crate::layers::{Activation, Mlp};

/// A symmetric bottleneck autoencoder.
#[derive(Clone, Debug)]
pub struct AutoEncoder {
    encoder: Mlp,
    decoder: Mlp,
}

impl AutoEncoder {
    /// Builds an autoencoder with encoder dims `[input, hidden…, bottleneck]`
    /// and a mirrored decoder.
    ///
    /// The decoder output activation is `Sigmoid`, matching the paper's
    /// min-max-normalized `[0, 1]` inputs.
    ///
    /// # Panics
    /// Panics if `dims` has fewer than two entries.
    pub fn new(store: &mut VarStore, rng: &mut impl Rng, dims: &[usize]) -> Self {
        Self::with_activation(store, rng, dims, Activation::Relu)
    }

    /// Like [`AutoEncoder::new`] but with an explicit hidden activation
    /// (smooth activations make gradient-checking tests exact).
    pub fn with_activation(
        store: &mut VarStore,
        rng: &mut impl Rng,
        dims: &[usize],
        hidden_act: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "AutoEncoder::new: need [input, …, bottleneck], got {dims:?}"
        );
        let mut mirrored: Vec<usize> = dims.to_vec();
        mirrored.reverse();
        let encoder = Mlp::new(store, rng, dims, hidden_act, Activation::None);
        let decoder = Mlp::new(store, rng, &mirrored, hidden_act, Activation::Sigmoid);
        Self { encoder, decoder }
    }

    /// Input dimensionality `D`.
    pub fn input_dim(&self) -> usize {
        self.encoder.in_dim()
    }

    /// Bottleneck dimensionality `d`.
    pub fn bottleneck_dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// The encoder network.
    pub fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    /// The decoder network.
    pub fn decoder(&self) -> &Mlp {
        &self.decoder
    }

    /// Training-path encoding.
    pub fn encode(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        self.encoder.forward(tape, store, x)
    }

    /// Training-path reconstruction `φ_D(φ_E(x))`.
    pub fn reconstruct(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let z = self.encode(tape, store, x);
        self.decoder.forward(tape, store, z)
    }

    /// Training-path per-row squared reconstruction errors (`n x 1`),
    /// i.e. `‖x − φ_D(φ_E(x))‖²` of Eq. 2 as a differentiable node.
    pub fn recon_error_rows(&self, tape: &mut Tape, store: &VarStore, x: Var) -> Var {
        let xhat = self.reconstruct(tape, store, x);
        let d = tape.sub(x, xhat);
        tape.row_sq_norm(d)
    }

    /// Inference-path latent codes.
    pub fn encode_eval(&self, store: &VarStore, x: &Matrix) -> Matrix {
        self.encoder.eval(store, x)
    }

    /// Inference-path reconstructions.
    pub fn reconstruct_eval(&self, store: &VarStore, x: &Matrix) -> Matrix {
        self.decoder.eval(store, &self.encoder.eval(store, x))
    }

    /// Inference-path squared reconstruction errors (Eq. 2), one per row.
    pub fn recon_errors(&self, store: &VarStore, x: &Matrix) -> Vec<f64> {
        let xhat = self.reconstruct_eval(store, x);
        (&xhat - x).row_sq_norms()
    }

    /// [`AutoEncoder::reconstruct_eval`] executed on `rt`.
    pub fn reconstruct_eval_rt(&self, store: &VarStore, x: &Matrix, rt: &Runtime) -> Matrix {
        self.decoder
            .eval_rt(store, &self.encoder.eval_rt(store, x, rt), rt)
    }

    /// [`AutoEncoder::recon_errors`] executed on `rt`; bit-identical to the
    /// serial path at any worker count.
    pub fn recon_errors_rt(&self, store: &VarStore, x: &Matrix, rt: &Runtime) -> Vec<f64> {
        let xhat = self.reconstruct_eval_rt(store, x, rt);
        (&xhat - x).row_sq_norms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use targad_autograd::check::gradient_check;
    use targad_linalg::rng as lrng;

    #[test]
    fn shapes_are_symmetric() {
        let mut rng = lrng::seeded(1);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[10, 6, 3]);
        assert_eq!(ae.input_dim(), 10);
        assert_eq!(ae.bottleneck_dim(), 3);
        let x = lrng::uniform_matrix(&mut rng, 4, 10, 0.0, 1.0);
        assert_eq!(ae.encode_eval(&vs, &x).shape(), (4, 3));
        assert_eq!(ae.reconstruct_eval(&vs, &x).shape(), (4, 10));
        assert_eq!(ae.recon_errors(&vs, &x).len(), 4);
    }

    #[test]
    fn reconstruction_errors_are_nonnegative() {
        let mut rng = lrng::seeded(2);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[5, 3]);
        let x = lrng::uniform_matrix(&mut rng, 10, 5, 0.0, 1.0);
        assert!(ae.recon_errors(&vs, &x).iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn gradient_check_modified_loss_shape() {
        // Eq. 1 shape: mean recon error on unlabeled + η · mean of inverse
        // recon error on labeled anomalies.
        let mut rng = lrng::seeded(3);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::with_activation(&mut vs, &mut rng, &[4, 3, 2], Activation::Tanh);
        let xu = lrng::uniform_matrix(&mut rng, 5, 4, 0.1, 0.9);
        let xl = lrng::uniform_matrix(&mut rng, 2, 4, 0.1, 0.9);
        let report = gradient_check(
            &mut vs,
            |t, vs| {
                let xu_v = t.input(xu.clone());
                let xl_v = t.input(xl.clone());
                let err_u = ae.recon_error_rows(t, vs, xu_v);
                let term_u = t.mean_all(err_u);
                let err_l = ae.recon_error_rows(t, vs, xl_v);
                let inv = t.recip(err_l);
                let term_l = t.mean_all(inv);
                t.add_scaled(term_u, term_l, 1.0)
            },
            1e-5,
        );
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut rng = lrng::seeded(4);
        let mut vs = VarStore::new();
        let ae = AutoEncoder::new(&mut vs, &mut rng, &[6, 4, 2]);
        // Rank-1-ish data: easy to compress through a 2-dim bottleneck.
        let base = lrng::uniform_matrix(&mut rng, 1, 6, 0.2, 0.8);
        let x = Matrix::from_fn(40, 6, |r, c| {
            (base[(0, c)] + 0.01 * (r as f64 % 5.0)).min(1.0)
        });

        let before: f64 = ae.recon_errors(&vs, &x).iter().sum();
        let mut opt = Adam::new(1e-2);
        let mut t = Tape::new();
        for _ in 0..200 {
            vs.zero_grads();
            t.reset();
            let xv = t.input_from(&x);
            let err = ae.recon_error_rows(&mut t, &vs, xv);
            let loss = t.mean_all(err);
            t.backward(loss, &mut vs);
            opt.step(&mut vs);
        }
        let after: f64 = ae.recon_errors(&vs, &x).iter().sum();
        assert!(after < before * 0.2, "before {before}, after {after}");
    }
}
