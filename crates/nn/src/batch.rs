//! Mini-batch index iteration.

use rand::Rng;
use targad_linalg::rng as lrng;

/// Splits `0..n` into shuffled mini-batches of size `batch_size` (last batch
/// may be smaller). A fresh call per epoch gives a fresh shuffle.
///
/// # Panics
/// Panics if `batch_size == 0`.
pub fn shuffled_batches(rng: &mut impl Rng, n: usize, batch_size: usize) -> Vec<Vec<usize>> {
    assert!(
        batch_size > 0,
        "shuffled_batches: batch_size must be positive"
    );
    let perm = lrng::permutation(rng, n);
    perm.chunks(batch_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let mut rng = lrng::seeded(1);
        let batches = shuffled_batches(&mut rng, 103, 10);
        assert_eq!(batches.len(), 11);
        assert_eq!(batches.last().unwrap().len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = lrng::seeded(2);
        assert!(shuffled_batches(&mut rng, 0, 8).is_empty());
    }

    #[test]
    fn batch_larger_than_n_is_one_batch() {
        let mut rng = lrng::seeded(3);
        let batches = shuffled_batches(&mut rng, 5, 100);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 5);
    }
}
