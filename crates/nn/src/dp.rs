//! Deterministic data-parallel gradient accumulation.
//!
//! [`ShardedStep`] is the training-step driver shared by the classifier,
//! the per-cluster autoencoders, and every baseline epoch loop: it splits
//! a mini-batch into fixed [`SHARD_ROWS`]-row shards (a partition that
//! depends only on the batch size, never on the worker count), runs each
//! shard's forward + backward on a per-worker pooled [`Tape`] into that
//! shard's own [`GradSet`], and reduces the shard gradients and loss
//! partials into the [`VarStore`] **in ascending shard order**. The
//! reduction order is fixed, every shard is computed in full by exactly
//! one worker, and the shard boundaries are worker-count-independent —
//! so accumulated gradients and reported losses are bit-identical at any
//! `TARGAD_THREADS`.
//!
//! The shard closure must build a loss *partial*: scale sums by global
//! batch counts (e.g. [`targad_autograd::Tape::sum_div`] with the full
//! batch size) so that adding the shard partials yields the batch loss.
//! Whole-set auxiliary terms (a labeled-anomaly penalty over all of `xl`,
//! say) belong to the shard whose range starts at 0, keeping them counted
//! exactly once.
//!
//! After one warm-up step every tape pool, gradient buffer, and loss slot
//! is reused, preserving the zero-allocation steady-state contract.

use std::ops::Range;

use targad_autograd::{GradSet, Tape, Var, VarStore};
use targad_runtime::Runtime;

/// Rows per shard. Fixed (never derived from the worker count) so the
/// shard partition — and therefore every floating-point reduction — is
/// identical at any thread count. 128 rows keeps single-batch baselines
/// (batch ≤ 128) on one shard while the large classifier batches split
/// into enough shards to feed several workers.
pub const SHARD_ROWS: usize = 128;

/// Number of shards a batch of `rows` items splits into.
pub fn shard_count(rows: usize) -> usize {
    rows.div_ceil(SHARD_ROWS)
}

/// The global row range of shard `s` in a batch of `rows` items.
pub fn shard_range(rows: usize, s: usize) -> Range<usize> {
    let lo = s * SHARD_ROWS;
    lo..(lo + SHARD_ROWS).min(rows)
}

/// Maximum number of auxiliary loss partials a sharded step can report
/// (see [`ShardedStep::accumulate_parts`]). TargAD needs three
/// (`L_CE` / `L_OE` / `L_RE`); one spare slot avoids churn.
pub const MAX_PARTS: usize = 4;

/// Per-shard auxiliary loss partials, reduced in ascending shard order
/// alongside the main loss.
pub type Parts = [f64; MAX_PARTS];

/// One shard's disjoint output buffers: its gradient accumulators, its
/// loss partial, and its auxiliary decomposition partials.
#[derive(Default)]
struct ShardSlot {
    grads: GradSet,
    loss: f64,
    parts: Parts,
}

/// Reusable state for sharded training steps: one pooled [`Tape`] per
/// worker, one [`ShardSlot`] per shard. Keep a single instance alive for
/// the whole epoch loop so the pools stay warm.
#[derive(Default)]
pub struct ShardedStep {
    tapes: Vec<Tape>,
    slots: Vec<ShardSlot>,
}

impl ShardedStep {
    /// An empty driver; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// One data-parallel forward/backward accumulation over a batch of
    /// `rows` items.
    ///
    /// `build(tape, store, range)` records the forward graph for the
    /// shard covering global rows `range` and returns its `1 x 1` loss
    /// partial (scaled so the partials sum to the batch loss). Gradients
    /// accumulate into `store` (on top of whatever is already there —
    /// call [`VarStore::zero_grads`] once per optimizer step, then
    /// `accumulate` once per loss term); the summed loss is returned.
    ///
    /// Bit-identical at any worker count, including fully serial
    /// execution, which iterates the exact same shards in the same order.
    pub fn accumulate<F>(
        &mut self,
        rt: &Runtime,
        store: &mut VarStore,
        rows: usize,
        build: F,
    ) -> f64
    where
        F: Fn(&mut Tape, &VarStore, Range<usize>) -> Var + Sync,
    {
        self.accumulate_parts(rt, store, rows, |tape, vs, range, _parts| {
            build(tape, vs, range)
        })
        .0
    }

    /// [`ShardedStep::accumulate`] plus an auxiliary loss decomposition.
    ///
    /// `build` additionally receives a `&mut Parts` scratch (zeroed per
    /// shard) into which it may record up to [`MAX_PARTS`] *partials of
    /// already-computed tape values* — e.g. the CE / OE / RE components of
    /// a composite loss, read with [`targad_autograd::Tape::value`] from
    /// nodes the forward graph materializes anyway. The per-shard arrays
    /// are reduced element-wise in ascending shard order (the same fixed
    /// order as the loss), so the decomposition is bit-identical at any
    /// worker count. Recording into `parts` never adds tape nodes, so the
    /// computation graph — and therefore every gradient and the total
    /// loss — is exactly what [`ShardedStep::accumulate`] produces.
    pub fn accumulate_parts<F>(
        &mut self,
        rt: &Runtime,
        store: &mut VarStore,
        rows: usize,
        build: F,
    ) -> (f64, Parts)
    where
        F: Fn(&mut Tape, &VarStore, Range<usize>, &mut Parts) -> Var + Sync,
    {
        if rows == 0 {
            return (0.0, Parts::default());
        }
        let _step_span = targad_obs::span(&targad_obs::profile::PHASE_STEP);
        let shards = shard_count(rows);
        if self.slots.len() < shards {
            self.slots.resize_with(shards, ShardSlot::default);
        }
        let workers = rt.threads().min(shards).max(1);
        if self.tapes.len() < workers {
            self.tapes.resize_with(workers, Tape::new);
        }
        for slot in &mut self.slots[..shards] {
            slot.grads.reset(store);
            slot.loss = 0.0;
            slot.parts = Parts::default();
        }

        {
            let store_ref: &VarStore = store;
            let build = &build;
            rt.par_shards(
                &mut self.slots[..shards],
                &mut self.tapes[..workers],
                |s, slot, tape| {
                    tape.reset();
                    let loss = {
                        let _span = targad_obs::span(&targad_obs::profile::PHASE_STEP_FORWARD);
                        build(tape, store_ref, shard_range(rows, s), &mut slot.parts)
                    };
                    slot.loss = tape.value(loss)[(0, 0)];
                    let _span = targad_obs::span(&targad_obs::profile::PHASE_STEP_BACKWARD);
                    tape.backward_into(loss, &mut slot.grads);
                },
            );
        }

        let _reduce_span = targad_obs::span(&targad_obs::profile::PHASE_STEP_REDUCE);
        targad_obs::metrics::SHARDS_REDUCED.add(shards as u64);
        let mut total = 0.0;
        let mut parts = Parts::default();
        for slot in &self.slots[..shards] {
            total += slot.loss;
            for (acc, p) in parts.iter_mut().zip(slot.parts) {
                *acc += p;
            }
            slot.grads.flush_into(store);
        }
        (total, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp};
    use targad_linalg::{rng as lrng, Matrix};

    #[test]
    fn shard_partition_is_exact_and_fixed() {
        assert_eq!(shard_count(0), 0);
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(128), 1);
        assert_eq!(shard_count(129), 2);
        assert_eq!(shard_count(391), 4);
        assert_eq!(shard_range(391, 0), 0..128);
        assert_eq!(shard_range(391, 3), 384..391);
        for rows in [1usize, 127, 128, 129, 391, 1024] {
            let mut covered = 0;
            for s in 0..shard_count(rows) {
                let r = shard_range(rows, s);
                assert_eq!(r.start, covered, "rows = {rows}, shard {s}");
                covered = r.end;
            }
            assert_eq!(covered, rows);
        }
    }

    /// Satellite: sharded accumulation is exactly equal — losses and every
    /// gradient bit — between serial execution and any worker count, on
    /// odd batch sizes that produce ragged final shards.
    #[test]
    fn sharded_step_is_bit_identical_across_worker_counts() {
        for rows in [127usize, 129, 391] {
            let mut rng = lrng::seeded(31);
            let x = lrng::normal_matrix(&mut rng, rows, 6, 0.0, 1.0);
            let y = lrng::normal_matrix(&mut rng, rows, 2, 0.0, 1.0);

            let run = |workers: usize| {
                let mut rng = lrng::seeded(77);
                let mut vs = VarStore::new();
                let mlp = Mlp::new(
                    &mut vs,
                    &mut rng,
                    &[6, 5, 2],
                    Activation::Tanh,
                    Activation::None,
                );
                let rt = Runtime::new(workers);
                let mut step = ShardedStep::new();
                let mut losses = Vec::new();
                for _ in 0..3 {
                    vs.zero_grads();
                    let loss = step.accumulate(&rt, &mut vs, rows, |tape, vs, range| {
                        let xv = tape.input_row_slice_from(&x, range.start, range.end);
                        let yv = tape.input_row_slice_from(&y, range.start, range.end);
                        let out = mlp.forward(tape, vs, xv);
                        let d = tape.sub(out, yv);
                        let sq = tape.square(d);
                        tape.sum_div(sq, (rows * 2) as f64)
                    });
                    losses.push(loss.to_bits());
                    // Apply the gradients so later steps differ.
                    vs.update_each(|v, g| v.add_scaled_inplace(g, -0.05));
                }
                let grads: Vec<Matrix> = vs.ids().map(|id| vs.grad(id).clone()).collect();
                (losses, grads)
            };

            let serial = run(1);
            for workers in [2usize, 3, 7] {
                let got = run(workers);
                assert_eq!(
                    got.0, serial.0,
                    "losses, rows = {rows}, workers = {workers}"
                );
                assert_eq!(got.1, serial.1, "grads, rows = {rows}, workers = {workers}");
            }
        }
    }

    /// A batch that fits one shard computes the very same graph a
    /// hand-rolled single-tape step would — same loss bits, same grads.
    /// (This is why converting the ≤128-row baseline loops to sharded
    /// steps leaves their training trajectories untouched.)
    #[test]
    fn single_shard_matches_a_plain_tape_step() {
        let mut rng = lrng::seeded(5);
        let x = lrng::normal_matrix(&mut rng, 48, 4, 0.0, 1.0);
        let y = lrng::normal_matrix(&mut rng, 48, 3, 0.0, 1.0);
        let build_model = |vs: &mut VarStore| {
            let mut rng = lrng::seeded(9);
            Mlp::new(vs, &mut rng, &[4, 6, 3], Activation::Relu, Activation::None)
        };

        let mut vs_plain = VarStore::new();
        let mlp_plain = build_model(&mut vs_plain);
        let mut tape = Tape::new();
        let xv = tape.input_from(&x);
        let yv = tape.input_from(&y);
        let out = mlp_plain.forward(&mut tape, &vs_plain, xv);
        let d = tape.sub(out, yv);
        let sq = tape.square(d);
        let loss = tape.mean_all(sq);
        let plain_loss = tape.value(loss)[(0, 0)];
        tape.backward(loss, &mut vs_plain);

        let mut vs_dp = VarStore::new();
        let mlp_dp = build_model(&mut vs_dp);
        let mut step = ShardedStep::new();
        let dp_loss = step.accumulate(&Runtime::new(4), &mut vs_dp, 48, |tape, vs, range| {
            let xv = tape.input_row_slice_from(&x, range.start, range.end);
            let yv = tape.input_row_slice_from(&y, range.start, range.end);
            let out = mlp_dp.forward(tape, vs, xv);
            let d = tape.sub(out, yv);
            let sq = tape.square(d);
            tape.sum_div(sq, (48 * 3) as f64)
        });

        assert_eq!(plain_loss.to_bits(), dp_loss.to_bits());
        for (a, b) in vs_plain.ids().zip(vs_dp.ids()) {
            assert_eq!(vs_plain.grad(a), vs_dp.grad(b));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut vs = VarStore::new();
        vs.add(Matrix::zeros(2, 2));
        let mut step = ShardedStep::new();
        let rt = Runtime::new(4);
        let loss = step.accumulate(&rt, &mut vs, 0, |tape, _, _| {
            tape.input(Matrix::zeros(1, 1))
        });
        assert_eq!(loss, 0.0);
        assert!(vs
            .grad(vs.ids().next().unwrap())
            .as_slice()
            .iter()
            .all(|&g| g == 0.0));
    }
}
