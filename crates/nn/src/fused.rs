//! The process-wide gate for the fused dense backward path.
//!
//! Training forwards ([`crate::Mlp::forward`] and
//! [`crate::Mlp::forward_frozen`]) emit one fused `Dense` tape node per
//! layer when the gate is open, and the unfused
//! matmul/broadcast/activation triplet when it is closed. Both paths are
//! bit-identical by construction (the fused kernels replay the exact
//! floating-point chains of the unfused sweep), so the gate is a
//! performance escape hatch and an oracle switch, never a semantics
//! switch.
//!
//! Resolution order:
//! 1. a live [`force_fused_backward`] override (tests comparing both
//!    paths in one process), otherwise
//! 2. the `TARGAD_FUSED_BACKWARD` environment variable — `off`, `0`, or
//!    `false` (case-insensitive) closes the gate, anything else (or
//!    unset) leaves it open. Read once and cached for the process
//!    lifetime, like `TARGAD_SIMD`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// `true` when `TARGAD_FUSED_BACKWARD` requests the unfused reference
/// path (`off`, `0`, or `false`, case-insensitively). Resolved on first
/// use and cached: a stable answer keeps every step of a run on one path.
fn env_forced_off() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| {
        std::env::var("TARGAD_FUSED_BACKWARD")
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
    })
}

/// In-process override: 0 = follow the environment, 1 = forced on,
/// 2 = forced off. Only [`force_fused_backward`] writes non-zero values,
/// under [`FORCE_LOCK`], so overrides never interleave.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Serializes [`force_fused_backward`] holders (the override is process
/// global — pool workers must see the same answer as the driving thread,
/// so a thread-local would not do).
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Should training forwards emit fused `Dense` nodes right now?
#[inline]
pub fn fused_backward_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !env_forced_off(),
    }
}

/// Holds the fused-path override; dropping it restores environment
/// resolution. Hold it for the whole comparison in fused-vs-reference
/// tests — it also serializes such tests against each other.
pub struct FusedBackwardGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for FusedBackwardGuard {
    fn drop(&mut self) {
        OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// Forces the fused dense backward path on or off for the whole process
/// until the returned guard drops. Concurrent callers queue on an
/// internal lock, so overrides never overlap.
pub fn force_fused_backward(on: bool) -> FusedBackwardGuard {
    let lock = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    FusedBackwardGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_restores() {
        {
            let _g = force_fused_backward(false);
            assert!(!fused_backward_enabled());
        }
        {
            let _g = force_fused_backward(true);
            assert!(fused_backward_enabled());
        }
        // Back to environment resolution (unset in the test harness →
        // enabled).
        assert_eq!(fused_backward_enabled(), !env_forced_off());
    }
}
